//! Ingest-sanitization battery: the `StreamPolicy` transforms must repair
//! corrupted streams back to the clean-stream scores (bit-exactly, where
//! repair is possible), quarantine classification must surface every
//! malformed event, and the restore-path accounting must balance.

use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use causaltad::{CausalTad, CausalTadConfig};
use tad_serve::{
    Completion, Event, FleetConfig, FleetEngine, FleetImage, GapPolicy, PolicyAction,
    PolicyOutcome, SessionRecord, StreamPolicy, TripOutcome,
};
use tad_trajsim::{generate_city, City, CityConfig, Trajectory};

fn trained() -> &'static (City, Arc<CausalTad>) {
    static SHARED: OnceLock<(City, Arc<CausalTad>)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let city = generate_city(&CityConfig::test_scale(91));
        let cfg = CausalTadConfig { epochs: 2, ..CausalTadConfig::test_scale() };
        let mut model = CausalTad::new(&city.net, cfg);
        model.fit(&city.data.train);
        (city, Arc::new(model))
    })
}

/// Runs one trip's event stream through a single-shard engine under the
/// given policy, returning its outcome and the engine for metrics asserts.
fn run_trip(
    model: Arc<CausalTad>,
    policy: StreamPolicy,
    events: Vec<Event>,
) -> (TripOutcome, FleetEngine, Arc<Mutex<Vec<PolicyOutcome>>>) {
    let outcomes: Arc<Mutex<Vec<TripOutcome>>> = Arc::default();
    let actions: Arc<Mutex<Vec<PolicyOutcome>>> = Arc::default();
    let sink = Arc::clone(&outcomes);
    let action_sink = Arc::clone(&actions);
    let engine = FleetEngine::builder(model)
        .config(FleetConfig { num_shards: 1, policy, ..FleetConfig::default() })
        .on_complete(move |outcome| sink.lock().unwrap().push(outcome))
        .on_policy(move |outcome| action_sink.lock().unwrap().push(*outcome))
        .build()
        .expect("trained model");
    for ev in events {
        engine.submit(ev).expect("engine is live");
    }
    engine.flush().expect("shards live");
    let outcome = outcomes.lock().unwrap().pop().expect("one trip completed");
    (outcome, engine, actions)
}

/// The clean-stream events of one trip under id 1.
fn trip_events(t: &Trajectory) -> Vec<Event> {
    let sd = t.sd_pair();
    let mut events = vec![Event::TripStart {
        id: 1,
        source: sd.source.0,
        dest: sd.dest.0,
        time_slot: t.time_slot,
    }];
    events.extend(t.segments.iter().map(|seg| Event::Segment { id: 1, seg: seg.0 }));
    events.push(Event::TripEnd { id: 1 });
    events
}

fn clean_score(model: &CausalTad, t: &Trajectory) -> f64 {
    let sd = t.sd_pair();
    let mut scorer = model.online(sd.source.0, sd.dest.0, t.time_slot);
    let mut last = f64::NAN;
    for &seg in &t.segments {
        last = scorer.push(seg.0);
    }
    last
}

#[test]
fn dedup_window_restores_clean_scores_under_duplication() {
    let (city, model) = trained();
    let t = &city.data.test_id[0];
    assert!(t.len() >= 3, "test trip too short");
    // Re-send every segment immediately — the classic at-least-once
    // transport failure.
    let sd = t.sd_pair();
    let mut corrupted = vec![Event::TripStart {
        id: 1,
        source: sd.source.0,
        dest: sd.dest.0,
        time_slot: t.time_slot,
    }];
    for seg in &t.segments {
        corrupted.push(Event::Segment { id: 1, seg: seg.0 });
        corrupted.push(Event::Segment { id: 1, seg: seg.0 });
    }
    corrupted.push(Event::TripEnd { id: 1 });

    let policy = StreamPolicy { dedup_window: 2, ..StreamPolicy::default() };
    let (outcome, engine, actions) = run_trip(Arc::clone(model), policy, corrupted);
    assert_eq!(outcome.segments, t.len(), "every duplicate must be dropped");
    assert_eq!(outcome.score, clean_score(model, t), "sanitized score must be bit-identical");
    let metrics = engine.metrics();
    assert_eq!(metrics.counter("serve.dedup_dropped"), Some(t.len() as u64));
    assert_eq!(metrics.counter("serve.quarantined"), Some(0));
    let actions = actions.lock().unwrap();
    assert_eq!(actions.iter().filter(|a| a.action == PolicyAction::DedupDropped).count(), t.len());
    engine.shutdown();
}

#[test]
fn reorder_window_repairs_adjacent_swaps() {
    let (city, model) = trained();
    // Find a trip and a swap position where the early-arriving segment is
    // *not* a graph successor of the preceding tail (so the swap is
    // actually repaired through the hold buffer, not admitted by luck).
    let mut found = None;
    'outer: for t in city.data.test_id.iter().chain(city.data.test_ood.iter()) {
        for i in 1..t.len().saturating_sub(1) {
            let prev = t.segments[i - 1].0;
            let a = t.segments[i].0;
            let b = t.segments[i + 1].0;
            if a != b && !model.successors_of(prev).contains(&b) {
                found = Some((t, i));
                break 'outer;
            }
        }
    }
    let (t, i) = found.expect("city suite contains a swappable trip");
    let mut segments: Vec<u32> = t.segments.iter().map(|s| s.0).collect();
    segments.swap(i, i + 1);

    let sd = t.sd_pair();
    let mut corrupted = vec![Event::TripStart {
        id: 1,
        source: sd.source.0,
        dest: sd.dest.0,
        time_slot: t.time_slot,
    }];
    corrupted.extend(segments.iter().map(|&seg| Event::Segment { id: 1, seg }));
    corrupted.push(Event::TripEnd { id: 1 });

    let policy = StreamPolicy { reorder_window: 3, ..StreamPolicy::default() };
    let (outcome, engine, actions) = run_trip(Arc::clone(model), policy, corrupted);
    assert_eq!(outcome.segments, t.len());
    assert_eq!(
        outcome.score,
        clean_score(model, t),
        "a repaired swap must reproduce the clean-stream score bit-exactly"
    );
    assert_eq!(engine.metrics().counter("serve.reordered"), Some(1));
    let actions = actions.lock().unwrap();
    assert!(actions.iter().any(|a| a.action == PolicyAction::Reordered));
    engine.shutdown();
}

#[test]
fn gap_reset_charges_the_jump_like_a_fresh_leg() {
    let (city, model) = trained();
    let t = &city.data.test_id[1];
    let tail = t.segments.last().unwrap().0;
    // A teleport target guaranteed off the tail's successor set.
    let vocab = model.vocab() as u32;
    let jump = (0..vocab)
        .find(|&s| s != tail && !model.successors_of(tail).contains(&s))
        .expect("network is sparse");

    let sd = t.sd_pair();
    let mut stream = trip_events(t);
    let end = stream.pop().unwrap(); // TripEnd
    stream.push(Event::Segment { id: 1, seg: jump });
    stream.push(end);

    // Reference: clean prefix, context reset, then the jump.
    let mut scorer = model.online(sd.source.0, sd.dest.0, t.time_slot);
    for &seg in &t.segments {
        scorer.push(seg.0);
    }
    let mut state = scorer.into_state();
    state.reset_context();
    let mut resumed = causaltad::OnlineScorer::from_state(model, state);
    let reference = resumed.push(jump);

    let policy = StreamPolicy { gap: GapPolicy::Reset, ..StreamPolicy::default() };
    let (outcome, engine, actions) = run_trip(Arc::clone(model), policy, stream.clone());
    assert_eq!(outcome.segments, t.len() + 1);
    assert_eq!(outcome.score, reference, "reset path must be bit-identical to the manual reset");
    assert_eq!(engine.metrics().counter("serve.trip_resets"), Some(1));
    assert!(actions
        .lock()
        .unwrap()
        .iter()
        .any(|a| a.action == PolicyAction::TripReset && a.seg == Some(jump)));
    engine.shutdown();

    // Score-through (the default gap policy) must instead match the
    // unpoliced engine: same stream, off-graph penalty charged.
    let through =
        StreamPolicy { gap: GapPolicy::ScoreThrough, dedup_window: 1, ..Default::default() };
    let (through_outcome, through_engine, _) = run_trip(Arc::clone(model), through, stream.clone());
    let (unpoliced_outcome, unpoliced_engine, _) =
        run_trip(Arc::clone(model), StreamPolicy::default(), stream);
    assert_eq!(through_outcome.score, unpoliced_outcome.score);
    assert_ne!(through_outcome.score, outcome.score, "reset must actually change the score");
    assert_eq!(through_engine.metrics().counter("serve.gap_score_through"), Some(1));
    let through_stats = through_engine.shutdown();
    let unpoliced_stats = unpoliced_engine.shutdown();
    assert_eq!(through_stats.off_graph_hits, 1);
    assert_eq!(unpoliced_stats.off_graph_hits, 1);
}

#[test]
fn quarantine_classifies_every_malformed_event() {
    let (_city, model) = trained();
    let vocab = model.vocab() as u32;
    let actions: Arc<Mutex<Vec<PolicyOutcome>>> = Arc::default();
    let action_sink = Arc::clone(&actions);
    // Default (all-off) policy: quarantine classification still fires.
    let engine = FleetEngine::builder(Arc::clone(model))
        .config(FleetConfig { num_shards: 1, ..FleetConfig::default() })
        .on_policy(move |outcome| action_sink.lock().unwrap().push(*outcome))
        .build()
        .expect("trained model");
    engine.submit(Event::TripStart { id: 1, source: 0, dest: 1, time_slot: 0 }).unwrap();
    engine.submit(Event::TripStart { id: 1, source: 0, dest: 1, time_slot: 0 }).unwrap();
    engine.submit(Event::Segment { id: 1, seg: vocab + 3 }).unwrap();
    engine.submit(Event::Segment { id: 77, seg: 0 }).unwrap();
    engine.submit(Event::TripEnd { id: 78 }).unwrap();
    engine.submit(Event::TripStart { id: 2, source: vocab + 1, dest: 0, time_slot: 0 }).unwrap();
    engine.flush().expect("shards live");

    let got: Vec<(u64, PolicyAction)> =
        actions.lock().unwrap().iter().map(|a| (a.id, a.action)).collect();
    assert_eq!(
        got,
        vec![
            (1, PolicyAction::QuarantinedDuplicateStart),
            (1, PolicyAction::QuarantinedOutOfVocab),
            (77, PolicyAction::QuarantinedUnknownTrip),
            (78, PolicyAction::QuarantinedUnknownTrip),
            (2, PolicyAction::QuarantinedBadStart),
        ]
    );
    assert_eq!(engine.metrics().counter("serve.quarantined"), Some(5));
    let stats = engine.shutdown();
    assert_eq!(stats.rejected, 5, "quarantine counts alongside the legacy reject counter");
}

#[test]
fn trip_end_flushes_the_hold_buffer_in_arrival_order() {
    let (city, model) = trained();
    let t = &city.data.test_id[2];
    assert!(t.len() >= 4);
    // Withhold the second segment entirely: its successors pile up in the
    // hold buffer and only TripEnd releases them (as gaps/chains).
    let sd = t.sd_pair();
    let mut stream = vec![Event::TripStart {
        id: 1,
        source: sd.source.0,
        dest: sd.dest.0,
        time_slot: t.time_slot,
    }];
    stream.push(Event::Segment { id: 1, seg: t.segments[0].0 });
    for seg in &t.segments[2..] {
        stream.push(Event::Segment { id: 1, seg: seg.0 });
    }
    stream.push(Event::TripEnd { id: 1 });

    let policy = StreamPolicy {
        reorder_window: t.len(), // wide enough to hold the whole tail
        ..StreamPolicy::default()
    };
    let (outcome, engine, _) = run_trip(Arc::clone(model), policy, stream);
    // Every segment still reaches the scorer (nothing silently lost) even
    // though the dropped segment broke the chain for good.
    assert_eq!(outcome.segments, t.len() - 1);
    assert_eq!(outcome.completion, Completion::Ended);
    let metrics = engine.metrics();
    let flushed = metrics.counter("serve.reorder_flushed").unwrap();
    assert!(flushed > 0, "TripEnd must flush the held tail");
    engine.shutdown();
}

/// Satellite regression: `restore_sessions` accounting. The
/// `active_sessions` gauge must only ever count sessions actually live in
/// a store — records retired on the ending/TTL early-out paths must not
/// pass through it (the old code bumped the gauge first and let
/// `finish()` undo it, inflating concurrent reads), and the final balance
/// after shutdown must be exactly zero.
#[test]
fn restore_accounting_balances_ending_and_expired_sessions() {
    let (city, model) = trained();
    let ttl = Duration::from_secs(300);

    let make_state = |t: &Trajectory, take: usize| {
        let sd = t.sd_pair();
        let mut state = model.start_state(sd.source.0, sd.dest.0, t.time_slot).unwrap();
        for &seg in &t.segments[..take] {
            model.push_state(&mut state, seg.0);
        }
        state
    };
    let live = &city.data.test_id[0];
    let image = FleetImage {
        num_shards: 1,
        sessions: vec![
            SessionRecord {
                id: 10,
                state: make_state(live, 1),
                pending: vec![live.segments[1].0],
                ending: false,
                idle_micros: 0,
            },
            // TripEnd arrived before the capture: delivered immediately.
            SessionRecord {
                id: 11,
                state: make_state(&city.data.test_id[1], 2),
                pending: Vec::new(),
                ending: true,
                idle_micros: 0,
            },
            // Idle beyond the TTL: evicted on arrival.
            SessionRecord {
                id: 12,
                state: make_state(&city.data.test_id[2], 2),
                pending: Vec::new(),
                ending: false,
                idle_micros: (ttl.as_micros() as u64) * 2,
            },
        ],
    };

    let completions: Arc<Mutex<Vec<(u64, Completion)>>> = Arc::default();
    let sink = Arc::clone(&completions);
    let engine = FleetEngine::restore(Arc::clone(model), image)
        .config(FleetConfig { num_shards: 1, session_ttl: ttl, ..FleetConfig::default() })
        .on_complete(move |outcome| sink.lock().unwrap().push((outcome.id, outcome.completion)))
        .build()
        .expect("records fit the model");
    engine.flush().expect("shard live");

    let mid = engine.stats();
    assert_eq!(mid.sessions_restored, 3);
    assert_eq!(mid.active_sessions, 1, "only the genuinely live session may be on the gauge");
    assert_eq!(mid.trips_completed, 1);
    assert_eq!(mid.evictions_ttl, 1);
    assert_eq!(mid.segments_scored, 1, "the live record's pending segment was scored");
    {
        let completions = completions.lock().unwrap();
        assert_eq!(completions.len(), 2);
        assert!(completions.contains(&(11, Completion::Ended)));
        assert!(completions.contains(&(12, Completion::EvictedTtl)));
    }

    let end = engine.shutdown();
    assert_eq!(end.active_sessions, 0, "gauge must balance to exactly zero (no wrap, no drift)");
    assert_eq!(end.trips_completed, 1);
    let completions = completions.lock().unwrap();
    assert!(completions.contains(&(10, Completion::Shutdown)));
}
