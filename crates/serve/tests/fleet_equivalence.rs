//! Integration tests for the fleet engine: batched fleet scoring must be
//! numerically indistinguishable from running each trip through its own
//! sequential `OnlineScorer`, and the lifecycle features (completion
//! delivery, rejects, TTL eviction) must hold under interleaving.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use causaltad::{CausalTad, CausalTadConfig};
use tad_serve::{Completion, Event, FleetConfig, FleetEngine, TripOutcome};
use tad_trajsim::{generate_city, City, CityConfig, Trajectory};

/// One trained model shared by every test in this file (training in debug
/// mode is expensive).
fn trained() -> &'static (City, Arc<CausalTad>) {
    static SHARED: OnceLock<(City, Arc<CausalTad>)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let city = generate_city(&CityConfig::test_scale(77));
        let cfg = CausalTadConfig { epochs: 2, ..CausalTadConfig::test_scale() };
        let mut model = CausalTad::new(&city.net, cfg);
        model.fit(&city.data.train);
        (city, Arc::new(model))
    })
}

fn sequential_score(model: &CausalTad, t: &Trajectory) -> f64 {
    let sd = t.sd_pair();
    let mut scorer = model.online(sd.source.0, sd.dest.0, t.time_slot);
    let mut last = f64::NAN;
    for &seg in &t.segments {
        last = scorer.push(seg.0);
    }
    last
}

/// Round-robin interleaving of complete trip streams.
fn interleave(trips: &[&Trajectory]) -> Vec<Event> {
    let mut events = Vec::new();
    for (i, t) in trips.iter().enumerate() {
        let sd = t.sd_pair();
        events.push(Event::TripStart {
            id: i as u64,
            source: sd.source.0,
            dest: sd.dest.0,
            time_slot: t.time_slot,
        });
    }
    let longest = trips.iter().map(|t| t.len()).max().unwrap_or(0);
    for step in 0..longest {
        for (i, t) in trips.iter().enumerate() {
            if let Some(seg) = t.segments.get(step) {
                events.push(Event::Segment { id: i as u64, seg: seg.0 });
            }
            if step + 1 == t.len() {
                events.push(Event::TripEnd { id: i as u64 });
            }
        }
    }
    events
}

fn collecting_engine(
    model: Arc<CausalTad>,
    cfg: FleetConfig,
) -> (FleetEngine, Arc<Mutex<HashMap<u64, TripOutcome>>>) {
    let outcomes: Arc<Mutex<HashMap<u64, TripOutcome>>> = Arc::default();
    let sink = Arc::clone(&outcomes);
    let engine = FleetEngine::builder(model)
        .config(cfg)
        .on_complete(move |outcome| {
            sink.lock().unwrap().insert(outcome.id, outcome);
        })
        .build()
        .expect("trained model");
    (engine, outcomes)
}

#[test]
fn interleaved_fleet_scores_match_sequential_scorers() {
    let (city, model) = trained();
    let model = Arc::clone(model);
    let trips: Vec<&Trajectory> =
        city.data.test_id.iter().chain(city.data.detour.iter()).take(24).collect();
    let (engine, outcomes) = collecting_engine(
        Arc::clone(&model),
        FleetConfig { num_shards: 3, max_batch: 64, ..FleetConfig::default() },
    );
    for ev in interleave(&trips) {
        engine.submit(ev).expect("engine is live");
    }
    let stats = engine.shutdown();
    assert_eq!(stats.trips_started, trips.len() as u64);
    assert_eq!(stats.trips_completed, trips.len() as u64);
    assert_eq!(stats.active_sessions, 0);
    assert_eq!(stats.rejected, 0);

    let outcomes = outcomes.lock().unwrap();
    assert_eq!(outcomes.len(), trips.len());
    for (i, t) in trips.iter().enumerate() {
        let outcome = &outcomes[&(i as u64)];
        assert_eq!(outcome.completion, Completion::Ended);
        assert_eq!(outcome.segments, t.len());
        assert_eq!(outcome.trace.len(), t.len());
        let reference = sequential_score(&model, t);
        assert!(
            (outcome.score - reference).abs() < 1e-6,
            "trip {i}: fleet {} vs sequential {reference}",
            outcome.score
        );
    }
}

#[test]
fn bad_requests_are_rejected_not_fatal() {
    let (_city, model) = trained();
    let model = Arc::clone(model);
    let vocab = model.vocab() as u32;
    let (engine, outcomes) = collecting_engine(Arc::clone(&model), FleetConfig::default());

    // Off-network SD pair, segment for an unknown trip, out-of-vocab
    // segment, duplicate start, end of unknown trip.
    engine.submit(Event::TripStart { id: 1, source: vocab + 1, dest: 0, time_slot: 0 }).unwrap();
    engine.submit(Event::Segment { id: 99, seg: 0 }).unwrap();
    engine.submit(Event::TripStart { id: 2, source: 0, dest: 1, time_slot: 0 }).unwrap();
    engine.submit(Event::Segment { id: 2, seg: vocab + 5 }).unwrap();
    engine.submit(Event::TripStart { id: 2, source: 0, dest: 1, time_slot: 0 }).unwrap();
    engine.submit(Event::TripEnd { id: 42 }).unwrap();
    engine.submit(Event::Segment { id: 2, seg: 0 }).unwrap();
    engine.submit(Event::TripEnd { id: 2 }).unwrap();

    let stats = engine.shutdown();
    assert_eq!(stats.rejected, 5);
    assert_eq!(stats.trips_started, 1);
    assert_eq!(stats.trips_completed, 1);
    let outcomes = outcomes.lock().unwrap();
    assert_eq!(outcomes.len(), 1);
    assert_eq!(outcomes[&2].segments, 1);
}

#[test]
fn silent_trips_are_ttl_evicted() {
    let (city, model) = trained();
    let model = Arc::clone(model);
    let t = &city.data.test_id[0];
    let sd = t.sd_pair();
    let cfg = FleetConfig {
        num_shards: 1,
        session_ttl: Duration::from_millis(30),
        ..FleetConfig::default()
    };
    let (engine, outcomes) = collecting_engine(Arc::clone(&model), cfg);
    engine
        .submit(Event::TripStart { id: 5, source: sd.source.0, dest: sd.dest.0, time_slot: 0 })
        .unwrap();
    engine.submit(Event::Segment { id: 5, seg: t.segments[0].0 }).unwrap();

    // Wait past the TTL plus a sweep interval; the trip never ends.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        {
            let outcomes = outcomes.lock().unwrap();
            if let Some(outcome) = outcomes.get(&5) {
                assert_eq!(outcome.completion, Completion::EvictedTtl);
                assert_eq!(outcome.segments, 1);
                break;
            }
        }
        assert!(std::time::Instant::now() < deadline, "TTL eviction never happened");
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = engine.shutdown();
    assert_eq!(stats.evictions_ttl, 1);
    assert_eq!(stats.active_sessions, 0);
}

#[test]
fn shutdown_flushes_live_sessions() {
    let (city, model) = trained();
    let model = Arc::clone(model);
    let t = &city.data.test_id[1];
    let sd = t.sd_pair();
    let (engine, outcomes) = collecting_engine(Arc::clone(&model), FleetConfig::default());
    engine
        .submit(Event::TripStart { id: 9, source: sd.source.0, dest: sd.dest.0, time_slot: 0 })
        .unwrap();
    for &seg in &t.segments {
        engine.submit(Event::Segment { id: 9, seg: seg.0 }).unwrap();
    }
    // No TripEnd: shutdown must still deliver the partial trip.
    engine.shutdown();
    let outcomes = outcomes.lock().unwrap();
    let outcome = &outcomes[&9];
    assert_eq!(outcome.completion, Completion::Shutdown);
    assert_eq!(outcome.segments, t.len());
    assert!((outcome.score - sequential_score(&model, t)).abs() < 1e-6);
}

#[test]
fn live_snapshot_is_nonintrusive_and_restores_across_shard_counts() {
    let (city, model) = trained();
    let model = Arc::clone(model);
    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(8).collect();
    let events = interleave(&trips);
    // Split after every trip has started and consumed roughly half its
    // segments.
    let split = trips.len() + (events.len() - trips.len()) / 2;

    let (engine, outcomes) = collecting_engine(
        Arc::clone(&model),
        FleetConfig { num_shards: 2, max_batch: 32, ..FleetConfig::default() },
    );
    for ev in &events[..split] {
        engine.submit(*ev).expect("engine is live");
    }
    let image = engine.snapshot().expect("all shards live");
    assert_eq!(image.num_shards, 2);
    // Trips short enough to have ended before the split are complete, not
    // captured; everything else must be in the image.
    let live_ids: std::collections::HashSet<u64> =
        image.sessions.iter().map(|rec| rec.id).collect();
    let live = image.sessions.len();
    assert!(live > 0 && live <= trips.len(), "unexpected live-session count {live}");

    // The capture must not disturb the donor engine: finish the stream on
    // it and check every score against the sequential reference.
    for ev in &events[split..] {
        engine.submit(*ev).expect("engine is live");
    }
    engine.shutdown();
    {
        let outcomes = outcomes.lock().unwrap();
        for (i, t) in trips.iter().enumerate() {
            let outcome = &outcomes[&(i as u64)];
            assert_eq!(outcome.completion, Completion::Ended);
            let reference = sequential_score(&model, t);
            assert!(
                (outcome.score - reference).abs() < 1e-6,
                "donor trip {i}: {} vs {reference}",
                outcome.score
            );
        }
    }

    // Restoring onto a different shard count replays the tail of the
    // stream to the same final scores.
    let restored_outcomes: Arc<Mutex<HashMap<u64, TripOutcome>>> = Arc::default();
    let sink = Arc::clone(&restored_outcomes);
    let restored = FleetEngine::restore(Arc::clone(&model), image)
        .config(FleetConfig { num_shards: 3, ..FleetConfig::default() })
        .on_complete(move |outcome| {
            sink.lock().unwrap().insert(outcome.id, outcome);
        })
        .build()
        .expect("snapshot fits the model");
    for ev in &events[split..] {
        restored.submit(*ev).expect("engine is live");
    }
    let stats = restored.shutdown();
    assert_eq!(stats.sessions_restored, live as u64);
    assert_eq!(stats.active_sessions, 0);
    let restored_outcomes = restored_outcomes.lock().unwrap();
    assert_eq!(restored_outcomes.len(), live);
    for (i, t) in trips.iter().enumerate() {
        if !live_ids.contains(&(i as u64)) {
            continue; // ended on the donor before the capture
        }
        let outcome = &restored_outcomes[&(i as u64)];
        assert_eq!(outcome.completion, Completion::Ended, "trip {i}");
        assert_eq!(outcome.segments, t.len());
        let reference = sequential_score(&model, t);
        assert!(
            (outcome.score - reference).abs() < 1e-6,
            "restored trip {i}: {} vs {reference}",
            outcome.score
        );
    }
}

#[test]
fn snapshot_that_does_not_fit_the_model_is_refused() {
    let (_city, model) = trained();
    let model = Arc::clone(model);
    use causaltad::ScorerState;
    use tad_serve::{FleetImage, ServeError, SessionRecord};
    let alien = SessionRecord {
        id: 7,
        // Three hidden units can never match a real model's hidden_dim.
        state: ScorerState::from_parts(vec![0.0, 1.0, 2.0], 0.0, 0.0, 0.0, None, 0, Vec::new()),
        pending: Vec::new(),
        ending: false,
        idle_micros: 0,
    };
    let image = FleetImage { num_shards: 1, sessions: vec![alien] };
    let err = FleetEngine::restore(model, image).build().err();
    assert_eq!(err, Some(ServeError::SnapshotMismatch { trip: 7, what: "hidden width" }));
}

#[test]
fn untrained_model_is_refused_at_build_time() {
    let city = generate_city(&CityConfig::test_scale(78));
    let model = Arc::new(CausalTad::new(&city.net, CausalTadConfig::test_scale()));
    let err = FleetEngine::builder(model).build().err();
    assert_eq!(err, Some(tad_serve::ServeError::ModelNotReady));
}
