//! # tad-serve
//!
//! A concurrent fleet-scoring engine for the CausalTAD detector: the
//! serving layer that turns the paper's O(1) per-segment online scorer
//! into a system that handles **thousands of in-flight trips at once**.
//!
//! Ride-hailing telemetry arrives as one interleaved stream of events —
//! trip starts (the SD pair is the order), GPS-matched road segments, and
//! trip ends. [`FleetEngine`] ingests that stream through a bounded,
//! sharded queue:
//!
//! * **Sharding** — trips are routed by id hash to one of N shard workers;
//!   per-trip event order is preserved, shards run in parallel.
//! * **Micro-batched stepping** — each worker drains its queue in waves
//!   and advances every live session in the wave through
//!   [`causaltad::CausalTad::push_batch`]: the GRU step and the
//!   successor-set projection become matrix-matrix products over the whole
//!   cohort instead of per-session matrix-vector products, and the
//!   precomputed [`causaltad::StepCache`] eliminates the input-gate matmul
//!   entirely. Scores are numerically identical to running each trip
//!   through its own [`causaltad::OnlineScorer`].
//! * **Session lifecycle** — live [`causaltad::ScorerState`]s are kept in
//!   a per-shard store with TTL sweeps for trips that went silent and an
//!   O(1) LRU cap bounding memory; completed and evicted trips are
//!   delivered to a completion callback with their final score and full
//!   [`causaltad::SegmentTrace`].
//! * **Online delivery** — an optional `on_score` callback receives a
//!   [`ScoreUpdate`] for every scored segment, in per-trip order, right
//!   after the micro-batched step that consumed it — the per-segment
//!   streaming surface behind the paper's online-detection claim (and the
//!   `tad-net` front-end's `Score` frames). [`FleetEngine::flush`] is the
//!   matching quiesce barrier: when it returns, every event submitted
//!   before it has been scored and its callbacks have run.
//! * **Session persistence** — [`FleetEngine::snapshot`] captures every
//!   live session into a versioned, checksummed [`FleetImage`] while the
//!   engine keeps serving; [`FleetEngine::restore`] seeds a fresh engine
//!   from one, and scoring resumes bit-identically to an uninterrupted
//!   run (warm restart).
//! * **Delta snapshots & live handoff** — [`FleetEngine::checkpoint`]
//!   arms per-session dirty tracking and [`FleetEngine::delta`] then
//!   captures only the churn since the last capture (log-structured
//!   [`FleetDelta`]s replayed by [`DeltaBase`]), so tight checkpoint
//!   intervals cost O(churn), not O(fleet);
//!   [`FleetEngine::drain_sessions`] / [`FleetEngine::restore_sessions`]
//!   move live sessions between *running* engines without firing
//!   completions — the primitives under `tad-router`'s failover and
//!   drain/handoff tier.
//! * **Ingest sanitization** — an optional per-session [`StreamPolicy`]
//!   (dedup window, bounded reorder repair, gap policy, malformed-event
//!   quarantine) sits strictly in front of the scoring path; with the
//!   default all-off policy the pipeline is byte-identical to an
//!   unpoliced engine. See the [`policy`](crate::StreamPolicy) types.
//! * **Observability** — [`FleetStats`] counts events, scored segments,
//!   active sessions, evictions, rejects, off-graph hits, batch sizes,
//!   and restored sessions; every policy action is counted under the
//!   `serve.*` metrics names and surfaced through an `on_policy`
//!   callback.
//!
//! ```no_run
//! use std::sync::Arc;
//! use tad_serve::{Event, FleetConfig, FleetEngine};
//! # let model: causaltad::CausalTad = unimplemented!();
//!
//! let engine = FleetEngine::builder(Arc::new(model))
//!     .config(FleetConfig::default())
//!     .on_complete(|outcome| println!("trip {} scored {:.2}", outcome.id, outcome.score))
//!     .build()
//!     .expect("model is trained");
//! engine.submit(Event::TripStart { id: 1, source: 0, dest: 9, time_slot: 3 }).unwrap();
//! engine.submit(Event::Segment { id: 1, seg: 0 }).unwrap();
//! engine.submit(Event::TripEnd { id: 1 }).unwrap();
//! let stats = engine.shutdown();
//! assert_eq!(stats.trips_completed, 1);
//! ```

#![deny(missing_docs)]

mod delta;
mod engine;
mod event;
mod policy;
#[doc(hidden)]
pub mod session; // exposed for the workspace micro-benches; not a stable API
mod shard;
mod snapshot;
mod stats;

pub use delta::{delta_from_bytes, delta_to_bytes, DeltaBase, FleetDelta};
pub use engine::{
    CohortOutcome, CompletionCallback, FleetConfig, FleetEngine, FleetEngineBuilder, ScoreCallback,
    ServeError, SubmitError,
};
pub use event::{Completion, Event, ScoreUpdate, TripId, TripOutcome};
pub use policy::{GapPolicy, PolicyAction, PolicyCallback, PolicyOutcome, StreamPolicy};
pub use snapshot::{
    image_from_bytes, image_to_bytes, FleetImage, SessionRecord, SnapshotCodecError, SnapshotError,
};
pub use stats::{FleetSnapshot, FleetStats};
