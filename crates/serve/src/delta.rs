//! Incremental fleet snapshots: a log-structured delta layer over the
//! full-image [`crate::FleetImage`] codec, so checkpoint cost scales with
//! **churn** (sessions touched since the last capture) rather than fleet
//! size.
//!
//! A chain starts from a **checkpoint** — a full [`FleetImage`] stamped
//! with an epoch by [`crate::FleetEngine::checkpoint`] — and grows by
//! [`FleetDelta`]s captured with [`crate::FleetEngine::delta`]: the
//! sessions dirtied since the previous capture (per-session dirty bits in
//! the session store) plus the ids removed since then (tombstones).
//! [`DeltaBase`] replays a chain back into the equivalent full image;
//! admission order is validated by the shared [`causaltad::DeltaChain`]
//! cursor, so a skipped, repeated, or cross-epoch delta is a typed
//! [`DeltaChainError`], never a silently wrong reconstruction.
//!
//! The binary format is the workspace's standard checksummed envelope:
//! magic `TADD`, version u16, then base epoch, sequence number, shard
//! count, the tombstoned trip ids, and the dirty sessions in the same
//! record layout as the `TADF` image codec. Decoding hostile bytes
//! returns a typed [`SnapshotCodecError`]; no input can panic the
//! decoder.
//!
//! A restore from a reconstructed image is **score-bit-identical** to a
//! restore from a full image taken at the same quiesce point: dirty
//! tracking over-approximates (a touched-but-unchanged session is
//! re-recorded, never skipped), and tombstones are replayed before
//! upserts so a remove-then-restart of the same trip id lands in the
//! rebuilt image exactly once, with its newest state.

use std::collections::HashMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use causaltad::{open_envelope, seal_envelope, DeltaChain, DeltaChainError, DeltaId};

use crate::event::TripId;
use crate::snapshot::{
    decode_record, encode_record, FleetImage, SessionRecord, SnapshotCodecError, MIN_RECORD_LEN,
};

const MAGIC: &[u8; 4] = b"TADD";
const VERSION: u16 = 1;

/// One increment of a delta-snapshot chain: everything that changed in a
/// fleet engine since the previous capture of the same chain.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetDelta {
    /// Epoch of the checkpoint image this delta extends.
    pub base_epoch: u64,
    /// 1-based position in the epoch's delta log.
    pub seq: u64,
    /// Shard count of the engine that captured the delta (informational,
    /// like [`FleetImage::num_shards`]).
    pub num_shards: u32,
    /// Trips whose sessions left the store since the previous capture
    /// (completed, evicted, or drained). Replayed before `sessions`, so a
    /// trip that ended and restarted within one interval survives as its
    /// new session.
    pub removed: Vec<TripId>,
    /// Sessions dirtied since the previous capture, oldest first. An id
    /// already present in the base is replaced; a new id is appended.
    pub sessions: Vec<SessionRecord>,
}

impl FleetDelta {
    /// This delta's chain identity (epoch + sequence number).
    pub fn id(&self) -> DeltaId {
        DeltaId { base_epoch: self.base_epoch, seq: self.seq }
    }
}

/// Serialises a fleet delta (the incremental artifact of a checkpoint
/// chain).
pub fn delta_to_bytes(delta: &FleetDelta) -> Bytes {
    let mut payload =
        BytesMut::with_capacity(64 + delta.removed.len() * 8 + delta.sessions.len() * 256);
    payload.put_u64_le(delta.base_epoch);
    payload.put_u64_le(delta.seq);
    payload.put_u32_le(delta.num_shards);
    payload.put_u32_le(delta.removed.len() as u32);
    for &id in &delta.removed {
        payload.put_u64_le(id);
    }
    payload.put_u32_le(delta.sessions.len() as u32);
    for rec in &delta.sessions {
        encode_record(rec, &mut payload);
    }
    seal_envelope(MAGIC, VERSION, payload.freeze())
}

/// Restores a fleet delta serialized by [`delta_to_bytes`]. The whole
/// input must be one delta (trailing bytes are rejected); decoding never
/// panics, whatever the input.
pub fn delta_from_bytes(bytes: Bytes) -> Result<FleetDelta, SnapshotCodecError> {
    let mut payload = open_envelope(MAGIC, VERSION, bytes)?;
    if payload.remaining() < 8 + 8 + 4 + 4 {
        return Err(SnapshotCodecError::Truncated("delta header"));
    }
    let base_epoch = payload.get_u64_le();
    let seq = payload.get_u64_le();
    let num_shards = payload.get_u32_le();
    let removed_len = payload.get_u32_le() as usize;
    if removed_len.checked_mul(8).is_none_or(|need| payload.remaining() < need) {
        return Err(SnapshotCodecError::Truncated("tombstones"));
    }
    let mut removed = Vec::with_capacity(removed_len);
    for _ in 0..removed_len {
        removed.push(payload.get_u64_le());
    }
    if payload.remaining() < 4 {
        return Err(SnapshotCodecError::Truncated("session count"));
    }
    let count = payload.get_u32_le() as usize;
    if count.checked_mul(MIN_RECORD_LEN).is_none_or(|need| payload.remaining() < need) {
        return Err(SnapshotCodecError::Truncated("session records"));
    }
    let mut sessions = Vec::with_capacity(count);
    for index in 0..count {
        sessions.push(decode_record(&mut payload, index)?);
    }
    if payload.remaining() != 0 {
        return Err(SnapshotCodecError::Malformed("trailing payload bytes"));
    }
    Ok(FleetDelta { base_epoch, seq, num_shards, removed, sessions })
}

/// A checkpoint image plus the deltas applied onto it so far — the
/// restore side of a delta-snapshot chain. Feed it the chain in capture
/// order and [`DeltaBase::into_image`] yields the image a full snapshot
/// taken at the last delta's quiesce point would have produced (modulo
/// the idle clocks of untouched sessions, which a full capture would have
/// re-aged).
#[derive(Clone, Debug)]
pub struct DeltaBase {
    image: FleetImage,
    chain: DeltaChain,
}

impl DeltaBase {
    /// Starts a chain from the checkpoint `image` stamped with `epoch`
    /// (both come from [`crate::FleetEngine::checkpoint`]).
    pub fn new(image: FleetImage, epoch: u64) -> Self {
        DeltaBase { image, chain: DeltaChain::new(epoch) }
    }

    /// Epoch of the checkpoint this chain extends.
    pub fn epoch(&self) -> u64 {
        self.chain.epoch()
    }

    /// How many deltas have been applied so far.
    pub fn applied(&self) -> u64 {
        self.chain.applied()
    }

    /// The current reconstruction.
    pub fn image(&self) -> &FleetImage {
        &self.image
    }

    /// Consumes the chain, returning the reconstructed image.
    pub fn into_image(self) -> FleetImage {
        self.image
    }

    /// Applies the next delta of the chain: tombstones first, then
    /// upserts (replace an existing id in place, append a new one).
    ///
    /// # Errors
    /// [`DeltaChainError`] when `delta` is not exactly the next delta of
    /// this chain (wrong epoch, or a skipped/repeated/reordered sequence
    /// number); the reconstruction is unchanged on error.
    pub fn apply(&mut self, delta: &FleetDelta) -> Result<(), DeltaChainError> {
        self.chain.admit(delta.id())?;
        if !delta.removed.is_empty() {
            let gone: std::collections::HashSet<TripId> = delta.removed.iter().copied().collect();
            self.image.sessions.retain(|rec| !gone.contains(&rec.id));
        }
        let mut index: HashMap<TripId, usize> =
            self.image.sessions.iter().enumerate().map(|(i, rec)| (rec.id, i)).collect();
        for rec in &delta.sessions {
            match index.get(&rec.id) {
                Some(&i) => self.image.sessions[i] = rec.clone(),
                None => {
                    index.insert(rec.id, self.image.sessions.len());
                    self.image.sessions.push(rec.clone());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causaltad::ScorerState;

    fn record(id: TripId, tag: f32) -> SessionRecord {
        SessionRecord {
            id,
            state: ScorerState::from_parts(vec![tag], 0.0, 0.0, 0.0, None, 0, Vec::new()),
            pending: Vec::new(),
            ending: false,
            idle_micros: 0,
        }
    }

    fn ids(base: &DeltaBase) -> Vec<TripId> {
        base.image().sessions.iter().map(|rec| rec.id).collect()
    }

    #[test]
    fn delta_roundtrips_exactly() {
        for (removed, n) in [(vec![], 0usize), (vec![3, 9], 2), (vec![1], 0)] {
            let delta = FleetDelta {
                base_epoch: 4,
                seq: 2,
                num_shards: 3,
                removed,
                sessions: (0..n).map(|i| record(i as TripId, i as f32)).collect(),
            };
            let blob = delta_to_bytes(&delta);
            let decoded = delta_from_bytes(blob.clone()).expect("decode");
            assert_eq!(decoded, delta);
            // Canonical encoding: re-encoding is byte-for-byte identical.
            assert_eq!(delta_to_bytes(&decoded).to_vec(), blob.to_vec());
        }
    }

    #[test]
    fn apply_replays_tombstones_then_upserts_in_order() {
        let base_image = FleetImage {
            num_shards: 2,
            sessions: vec![record(1, 1.0), record(2, 2.0), record(3, 3.0)],
        };
        let mut base = DeltaBase::new(base_image, 5);
        // Delta 1: trip 2 left, trip 3 changed, trip 4 is new.
        base.apply(&FleetDelta {
            base_epoch: 5,
            seq: 1,
            num_shards: 2,
            removed: vec![2],
            sessions: vec![record(3, 3.5), record(4, 4.0)],
        })
        .unwrap();
        assert_eq!(ids(&base), vec![1, 3, 4]);
        assert_eq!(base.image().sessions[1], record(3, 3.5));
        // Delta 2: trip 3 ended and restarted within the interval — the
        // tombstone lands first, so the reborn session survives.
        base.apply(&FleetDelta {
            base_epoch: 5,
            seq: 2,
            num_shards: 2,
            removed: vec![3],
            sessions: vec![record(3, 3.9)],
        })
        .unwrap();
        assert_eq!(base.applied(), 2);
        assert_eq!(ids(&base), vec![1, 4, 3]);
        assert_eq!(base.image().sessions[2], record(3, 3.9));
    }

    #[test]
    fn out_of_order_and_cross_epoch_deltas_are_rejected_typed() {
        let mut base = DeltaBase::new(FleetImage::default(), 9);
        let d1 = FleetDelta { base_epoch: 9, seq: 1, ..FleetDelta::default() };
        let d2 = FleetDelta { base_epoch: 9, seq: 2, ..FleetDelta::default() };
        // Skipping ahead, wrong epoch, then replaying an already-applied
        // delta: all typed, none mutate the reconstruction.
        assert_eq!(
            base.apply(&d2),
            Err(DeltaChainError::OutOfOrder { expected_seq: 1, found_seq: 2 })
        );
        assert_eq!(
            base.apply(&FleetDelta { base_epoch: 8, seq: 1, ..FleetDelta::default() }),
            Err(DeltaChainError::BaseMismatch { expected_epoch: 9, found_epoch: 8 })
        );
        base.apply(&d1).unwrap();
        assert_eq!(
            base.apply(&d1),
            Err(DeltaChainError::OutOfOrder { expected_seq: 2, found_seq: 1 })
        );
        base.apply(&d2).unwrap();
        assert_eq!(base.applied(), 2);
    }
}
