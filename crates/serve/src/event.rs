//! The ingest event model: what the outside world sends the engine and
//! what the engine reports back when a trip leaves it.

use causaltad::SegmentTrace;

/// Unique identifier of an in-flight trip (e.g. the ride-hailing order id).
pub type TripId = u64;

/// One element of the interleaved fleet telemetry stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A new trip: the SD pair and departure slot are known at order time.
    TripStart {
        /// The new trip's id (the shard-routing key).
        id: TripId,
        /// Source road segment.
        source: u32,
        /// Destination road segment.
        dest: u32,
        /// Departure time slot.
        time_slot: u8,
    },
    /// The trip traversed one more road segment.
    Segment {
        /// The trip that moved.
        id: TripId,
        /// The road segment it traversed.
        seg: u32,
    },
    /// The trip finished; its final score should be delivered.
    TripEnd {
        /// The trip that finished.
        id: TripId,
    },
}

impl Event {
    /// The trip this event belongs to (the shard-routing key).
    pub fn trip_id(&self) -> TripId {
        match *self {
            Event::TripStart { id, .. } | Event::Segment { id, .. } | Event::TripEnd { id } => id,
        }
    }
}

/// Why a trip left the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Completion {
    /// A `TripEnd` event arrived — either on this engine, or before a
    /// fleet snapshot whose restore into this engine finalised the trip.
    Ended,
    /// The trip went silent for longer than the session TTL. Idle ages
    /// persist through snapshot/restore, so a restored trip's TTL clock
    /// continues where the captured engine left off.
    EvictedTtl,
    /// The shard hit its session cap and this was the least recently
    /// active trip.
    EvictedLru,
    /// The engine shut down while the trip was still live. On a planned
    /// restart, capture a [`crate::FleetImage`] first — sessions flushed
    /// here are gone, restored ones resume score-exactly.
    Shutdown,
}

/// One per-segment score delivery, handed to the engine's `on_score`
/// callback right after the micro-batched model step that consumed the
/// segment. This is the paper's *online* detection surface: the debiased
/// anomaly score (Eq. 10) updated per observed road segment, pushed to the
/// outside world (e.g. `tad-net` streams these to the connection that owns
/// the trip) instead of waiting for the trip to end.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoreUpdate {
    /// The trip this score belongs to.
    pub id: TripId,
    /// 0-based index of the scored segment within the trip (how many
    /// segments the session has consumed, minus one).
    pub seq: u32,
    /// The road segment that was just consumed.
    pub segment: u32,
    /// Debiased anomaly score (Eq. 10) after this segment; higher = more
    /// anomalous.
    pub score: f64,
    /// This segment's likelihood contribution `-log P(t_i | c, t_<i)`.
    pub nll: f64,
    /// This segment's debiasing contribution `log E[1/P(t_i|e_i)]`.
    pub log_scale: f64,
}

/// Final scoring result for a trip, delivered to the completion callback.
#[derive(Clone, Debug)]
pub struct TripOutcome {
    /// The finished trip.
    pub id: TripId,
    /// Why the trip left the engine.
    pub completion: Completion,
    /// Debiased anomaly score (Eq. 10) after the last consumed segment.
    pub score: f64,
    /// The un-debiased likelihood part of the score.
    pub likelihood_nll: f64,
    /// Accumulated scaling sum `Σ_i log E[1/P(t_i|e_i)]`.
    pub scale_log_sum: f64,
    /// Number of segments consumed.
    pub segments: usize,
    /// Per-segment score decomposition.
    pub trace: Vec<SegmentTrace>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_id_extracts_routing_key() {
        assert_eq!(Event::TripStart { id: 7, source: 0, dest: 1, time_slot: 0 }.trip_id(), 7);
        assert_eq!(Event::Segment { id: 8, seg: 3 }.trip_id(), 8);
        assert_eq!(Event::TripEnd { id: 9 }.trip_id(), 9);
    }
}
