//! The public fleet-engine API: configuration, builder, bounded sharded
//! ingest, stats access, and drain-on-shutdown.

use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use causaltad::{CausalTad, StepCache};
use tad_metrics::{MetricsSnapshot, Registry};

use crate::delta::{delta_to_bytes, FleetDelta};
use crate::event::{Event, ScoreUpdate, TripId, TripOutcome};
use crate::policy::{PolicyCallback, PolicyOutcome, StreamPolicy};
use crate::shard::{run_shard, Ingest, ShardCtx};
use crate::snapshot::{image_to_bytes, FleetImage, SessionRecord, SnapshotError};
use crate::stats::{FleetSnapshot, FleetStats, ServeMetrics};

/// Completion callback invoked by shard workers with each finished trip.
pub type CompletionCallback = Arc<dyn Fn(TripOutcome) + Send + Sync>;

/// Score callback invoked by shard workers with every scored segment (the
/// per-segment online delivery path).
pub type ScoreCallback = Arc<dyn Fn(&ScoreUpdate) + Send + Sync>;

/// Tunables of the fleet engine.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Shard worker threads; trips are hash-routed so one trip's events
    /// always land on the same shard.
    pub num_shards: usize,
    /// Bounded queue capacity per shard. When full, `submit` blocks and
    /// `try_submit` returns [`SubmitError::Full`] (backpressure).
    pub queue_capacity: usize,
    /// Maximum events drained into one micro-batch.
    pub max_batch: usize,
    /// Idle time after which a live session is evicted and reported as
    /// [`crate::Completion::EvictedTtl`].
    pub session_ttl: Duration,
    /// Hard cap on live sessions per shard; beyond it the least recently
    /// active trip is evicted ([`crate::Completion::EvictedLru`]). The
    /// session store keeps an intrusive recency list, so the eviction is
    /// O(1) — the cap can sit at the working-set size without throughput
    /// falling off a cliff when it is hit.
    pub max_sessions_per_shard: usize,
    /// Precompute the decoder's per-token input projections
    /// ([`CausalTad::build_step_cache`]) so each batched step skips the
    /// input-gate matmul. Costs `vocab x 3·hidden` floats of memory.
    pub use_step_cache: bool,
    /// Per-session ingest sanitization (dedup window, reorder repair, gap
    /// policy). The default is all-off, which leaves the scoring path
    /// byte-identical to an unpoliced engine.
    pub policy: StreamPolicy,
    /// Fleet-wide admission watermark on live sessions: while the
    /// `active_sessions` count is at or above it, **new** `TripStart`s
    /// are shed ([`SubmitError::Shed`] / [`CohortOutcome::shed`]) while
    /// events of already-admitted trips keep scoring — graceful
    /// degradation instead of queue-thrash under a session flood. `0`
    /// (the default) disables the watermark.
    pub admission_session_watermark: usize,
    /// Fleet-wide admission watermark on queued-but-unscored events (the
    /// `serve.ingest_inflight` gauge): while the in-flight depth is at or
    /// above it, new `TripStart`s are shed. `0` (the default) disables
    /// the watermark.
    pub admission_queue_watermark: usize,
    /// Pacing hint a front-end should attach to shed replies
    /// (`retry_after_ms` on the wire); exposed through
    /// [`FleetEngine::admission_retry_after`].
    pub admission_retry_after: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        let shards = std::thread::available_parallelism().map_or(4, |n| n.get()).min(8);
        FleetConfig {
            num_shards: shards,
            queue_capacity: 4096,
            max_batch: 2048,
            session_ttl: Duration::from_secs(300),
            max_sessions_per_shard: 8192,
            use_step_cache: true,
            policy: StreamPolicy::default(),
            admission_session_watermark: 0,
            admission_queue_watermark: 0,
            admission_retry_after: Duration::from_millis(200),
        }
    }
}

/// Why the engine could not be built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The model has no scaling table — call `fit()` or
    /// `precompute_scaling()` before serving.
    ModelNotReady,
    /// A config field is out of range.
    InvalidConfig(&'static str),
    /// A session in the resume snapshot does not fit the model (it was
    /// captured against a different vocabulary or hidden width).
    SnapshotMismatch {
        /// The offending session's trip id.
        trip: TripId,
        /// Which invariant it violated.
        what: &'static str,
    },
    /// A live-restore target shard's worker is gone (it panicked or the
    /// engine is shutting down).
    ShardUnavailable {
        /// Index of the unresponsive shard.
        shard: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ModelNotReady => {
                write!(f, "model has no scaling table; call fit() or precompute_scaling() first")
            }
            ServeError::InvalidConfig(what) => write!(f, "invalid fleet config: {what}"),
            ServeError::SnapshotMismatch { trip, what } => {
                write!(f, "snapshot session for trip {trip} does not fit the model: {what}")
            }
            ServeError::ShardUnavailable { shard } => {
                write!(f, "shard {shard} is unavailable; cannot deliver restored sessions")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Why an event was not accepted.
#[derive(Debug)]
pub enum SubmitError {
    /// The target shard's queue is full; the event is handed back so the
    /// caller can retry or shed load.
    Full(Event),
    /// The engine has shut down; the event is handed back.
    Closed(Event),
    /// The engine shut down during [`FleetEngine::submit_all`]; carries
    /// every event of the call that was not accepted.
    ClosedChunk(Vec<Event>),
    /// The fleet is above an admission watermark
    /// ([`FleetConfig::admission_session_watermark`] /
    /// [`FleetConfig::admission_queue_watermark`]) and the event was a
    /// **new** `TripStart` — shed, handed back. Events of already-admitted
    /// trips are never shed.
    Shed(Event),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full(ev) => write!(f, "shard queue full for trip {}", ev.trip_id()),
            SubmitError::Closed(ev) => {
                write!(f, "engine closed; returned event for trip {}", ev.trip_id())
            }
            SubmitError::ClosedChunk(evs) => {
                write!(f, "engine closed; returned {} unaccepted events", evs.len())
            }
            SubmitError::Shed(ev) => {
                write!(f, "admission watermark reached; shed new trip {}", ev.trip_id())
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// What [`FleetEngine::try_submit_cohort`] did with a cohort: how many
/// events entered shard queues, and the indexes (into the submitted
/// vector) of events that did not. Bounces are whole shard groups, so
/// the indexes of one trip's events are either all accepted or all in
/// [`CohortOutcome::full`] — the per-trip ordering contract of
/// [`crate::SubmitError::Full`] backpressure, cohort-sized.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CohortOutcome {
    /// Events accepted into shard queues (stats already bumped).
    pub accepted: u64,
    /// Indexes bounced by a full shard queue — explicit backpressure;
    /// these events never entered the engine and must be re-sent by their
    /// producers before any later event of the same trips.
    pub full: Vec<usize>,
    /// Indexes refused because the engine has shut down.
    pub closed: Vec<usize>,
    /// Indexes shed by the admission controller: `TripStart`s of **new**
    /// trips offered while the fleet was above a watermark, plus any
    /// later events of those same trips inside this cohort (their start
    /// never entered the engine). Counted under `serve.admission_shed`.
    pub shed: Vec<usize>,
}

/// Builder for [`FleetEngine`].
pub struct FleetEngineBuilder {
    model: Arc<CausalTad>,
    cfg: FleetConfig,
    on_complete: Option<CompletionCallback>,
    on_score: Option<ScoreCallback>,
    on_policy: Option<PolicyCallback>,
    resume: Option<FleetImage>,
    registry: Option<Arc<Registry>>,
}

impl FleetEngineBuilder {
    /// Overrides the default [`FleetConfig`].
    pub fn config(mut self, cfg: FleetConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Called by shard workers with every finished trip (ended, evicted,
    /// or flushed at shutdown). Must be cheap or hand off to a channel —
    /// it runs on the scoring threads.
    pub fn on_complete(mut self, cb: impl Fn(TripOutcome) + Send + Sync + 'static) -> Self {
        self.on_complete = Some(Arc::new(cb));
        self
    }

    /// Called by shard workers with every scored segment — the per-segment
    /// online score delivery behind the paper's streaming-detection claim
    /// (and `tad-net`'s `Score` response frames). Fires right after the
    /// micro-batched step that consumed the segment, in per-trip order.
    /// Must be cheap or hand off to a channel — it runs on the scoring
    /// threads.
    pub fn on_score(mut self, cb: impl Fn(&ScoreUpdate) + Send + Sync + 'static) -> Self {
        self.on_score = Some(Arc::new(cb));
        self
    }

    /// Called by shard workers with every ingest-sanitization outcome —
    /// policy transforms (dedup drops, reorder repairs, gap handling)
    /// when the corresponding [`StreamPolicy`] knob is enabled, and
    /// quarantine classifications of malformed events unconditionally.
    /// This is how a network front-end turns a silent reject into a typed
    /// per-trip reply. Must be cheap or hand off to a channel — it runs
    /// on the scoring threads.
    pub fn on_policy(mut self, cb: impl Fn(&PolicyOutcome) + Send + Sync + 'static) -> Self {
        self.on_policy = Some(Arc::new(cb));
        self
    }

    /// Seeds the engine with the sessions of a [`FleetImage`] (warm
    /// restart). The image may come from an engine with a different shard
    /// count — sessions are re-partitioned for this engine's
    /// `num_shards`. `build()` validates every session against the model
    /// and delivers the seeds to the shards before any traffic, so scoring
    /// resumes bit-identically to the captured engine.
    pub fn resume(mut self, image: FleetImage) -> Self {
        self.resume = Some(image);
        self
    }

    /// Records this engine's latency/depth metrics (the `serve.*` names)
    /// into a shared [`Registry`] instead of a fresh private one — how a
    /// process-level front-end (e.g. `tad-net`'s server) gets the engine
    /// and its own `net.*` metrics into one snapshot answering a single
    /// wire `MetricsRequest`.
    pub fn metrics_registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Validates the config, spawns the shard workers, seeds any resume
    /// sessions, and starts serving.
    ///
    /// # Errors
    /// [`ServeError::ModelNotReady`] when the model has no scaling table,
    /// [`ServeError::InvalidConfig`] when a config field is out of range,
    /// and [`ServeError::SnapshotMismatch`] when a resume session does not
    /// fit the model.
    pub fn build(self) -> Result<FleetEngine, ServeError> {
        let FleetEngineBuilder { model, cfg, on_complete, on_score, on_policy, resume, registry } =
            self;
        if model.scaling().is_none() {
            return Err(ServeError::ModelNotReady);
        }
        if cfg.num_shards == 0 {
            return Err(ServeError::InvalidConfig("num_shards must be >= 1"));
        }
        if cfg.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig("queue_capacity must be >= 1"));
        }
        if cfg.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be >= 1"));
        }
        let seeds = match resume {
            Some(image) => Some(partition_image(&model, image, cfg.num_shards)?),
            None => None,
        };
        let cache: Option<Arc<StepCache>> =
            cfg.use_step_cache.then(|| Arc::new(model.build_step_cache()));
        let stats = Arc::new(FleetStats::new());
        let registry = registry.unwrap_or_default();
        let metrics = ServeMetrics::register(&registry);
        let mut senders = Vec::with_capacity(cfg.num_shards);
        let mut workers = Vec::with_capacity(cfg.num_shards);
        for shard in 0..cfg.num_shards {
            let (tx, rx) = sync_channel::<Ingest>(cfg.queue_capacity);
            let ctx = ShardCtx {
                model: Arc::clone(&model),
                cache: cache.clone(),
                cfg: cfg.clone(),
                stats: Arc::clone(&stats),
                metrics: metrics.clone(),
                on_complete: on_complete.clone(),
                on_score: on_score.clone(),
                on_policy: on_policy.clone(),
            };
            let handle = std::thread::Builder::new()
                .name(format!("tad-serve-shard-{shard}"))
                .spawn(move || run_shard(ctx, rx))
                .expect("spawn shard worker");
            senders.push(tx);
            workers.push(handle);
        }
        if let Some(groups) = seeds {
            for (shard, group) in groups.into_iter().enumerate() {
                if !group.is_empty() {
                    senders[shard].send(Ingest::Restore(group)).expect("worker just spawned");
                }
            }
        }
        let admission = Admission {
            session_watermark: cfg.admission_session_watermark as u64,
            queue_watermark: cfg.admission_queue_watermark as i64,
            retry_after: cfg.admission_retry_after,
        };
        Ok(FleetEngine {
            model,
            senders,
            workers,
            stats,
            registry,
            metrics,
            admission,
            delta_clock: Mutex::new(DeltaClock { epoch: 0, seq: 0, armed: false }),
        })
    }
}

/// The engine's resolved admission watermarks (see [`FleetConfig`]);
/// zero means the corresponding watermark is off.
#[derive(Clone, Copy)]
struct Admission {
    session_watermark: u64,
    queue_watermark: i64,
    retry_after: Duration,
}

/// The engine's delta-chain position: the epoch of the last checkpoint
/// and the sequence number of the last delta captured against it.
/// Guarded by one mutex so concurrent checkpoint/delta callers serialize
/// and every shard sees the captures in the same order.
struct DeltaClock {
    epoch: u64,
    seq: u64,
    armed: bool,
}

/// Validates every snapshot session against `model` and groups them by
/// target shard, oldest first within each group (the order the shard's
/// recency list is rebuilt in).
fn partition_image(
    model: &CausalTad,
    image: FleetImage,
    num_shards: usize,
) -> Result<Vec<Vec<SessionRecord>>, ServeError> {
    let hidden = model.config().hidden_dim;
    let vocab = model.vocab() as u32;
    let mut groups: Vec<Vec<SessionRecord>> = vec![Vec::new(); num_shards];
    for rec in image.sessions {
        let trip = rec.id;
        if rec.state.hidden_width() != hidden {
            return Err(ServeError::SnapshotMismatch { trip, what: "hidden width" });
        }
        if rec.state.last_segment().is_some_and(|seg| seg >= vocab) {
            return Err(ServeError::SnapshotMismatch { trip, what: "last segment out of vocab" });
        }
        if rec.pending.iter().any(|&seg| seg >= vocab) {
            return Err(ServeError::SnapshotMismatch {
                trip,
                what: "pending segment out of vocab",
            });
        }
        groups[shard_index(trip, num_shards)].push(rec);
    }
    for group in &mut groups {
        // Oldest (largest idle) first; a stable sort keeps capture order
        // between equal ages.
        group.sort_by_key(|rec| std::cmp::Reverse(rec.idle_micros));
    }
    Ok(groups)
}

/// Fibonacci hashing of the trip id onto a shard.
fn shard_index(id: TripId, num_shards: usize) -> usize {
    let h = id.wrapping_mul(0x9E3779B97F4A7C15);
    (h % num_shards as u64) as usize
}

/// The concurrent fleet-scoring engine. See the crate docs for the data
/// flow; construct through [`FleetEngine::builder`].
pub struct FleetEngine {
    model: Arc<CausalTad>,
    senders: Vec<SyncSender<Ingest>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<FleetStats>,
    registry: Arc<Registry>,
    metrics: ServeMetrics,
    admission: Admission,
    delta_clock: Mutex<DeltaClock>,
}

impl FleetEngine {
    /// Starts building an engine over a trained model.
    pub fn builder(model: Arc<CausalTad>) -> FleetEngineBuilder {
        FleetEngineBuilder {
            model,
            cfg: FleetConfig::default(),
            on_complete: None,
            on_score: None,
            on_policy: None,
            resume: None,
            registry: None,
        }
    }

    /// Starts building an engine that resumes the sessions of a previously
    /// captured [`FleetImage`] — shorthand for
    /// `FleetEngine::builder(model).resume(image)`. Attach a config and
    /// completion callback as usual, then `build()`.
    pub fn restore(model: Arc<CausalTad>, image: FleetImage) -> FleetEngineBuilder {
        FleetEngine::builder(model).resume(image)
    }

    fn shard_of(&self, ev: &Event) -> usize {
        shard_index(ev.trip_id(), self.senders.len())
    }

    /// Whether the fleet is currently above an admission watermark — the
    /// state in which the submit paths shed **new** `TripStart`s
    /// ([`SubmitError::Shed`] / [`CohortOutcome::shed`]) while events of
    /// already-admitted trips keep flowing. Always `false` with both
    /// watermarks at their default `0`.
    pub fn admission_overloaded(&self) -> bool {
        let adm = &self.admission;
        (adm.session_watermark > 0
            && self.stats.active_sessions.load(std::sync::atomic::Ordering::Relaxed)
                >= adm.session_watermark)
            || (adm.queue_watermark > 0 && self.metrics.inflight.get() >= adm.queue_watermark)
    }

    /// The pacing hint shed replies should carry back to producers
    /// ([`FleetConfig::admission_retry_after`]).
    pub fn admission_retry_after(&self) -> Duration {
        self.admission.retry_after
    }

    /// One admission-shed event: counted, handed back.
    fn shed(&self, ev: Event) -> SubmitError {
        self.metrics.admission_shed.add(1);
        SubmitError::Shed(ev)
    }

    /// Enqueues an event, blocking while the target shard's queue is full.
    ///
    /// # Errors
    /// [`SubmitError::Closed`] when the engine has shut down,
    /// [`SubmitError::Shed`] when the event is a new `TripStart` and the
    /// fleet is above an admission watermark. Both hand the event back.
    pub fn submit(&self, ev: Event) -> Result<(), SubmitError> {
        if matches!(ev, Event::TripStart { .. }) && self.admission_overloaded() {
            return Err(self.shed(ev));
        }
        let shard = self.shard_of(&ev);
        match self.senders[shard].send(Ingest::One(ev)) {
            Ok(()) => {
                FleetStats::bump(&self.stats.events_ingested);
                self.metrics.inflight.add(1);
                Ok(())
            }
            Err(e) => Err(SubmitError::Closed(e.0.into_single())),
        }
    }

    /// Non-blocking enqueue; hands the event back when the shard is full.
    ///
    /// # Errors
    /// [`SubmitError::Full`] when the target shard's queue is at capacity
    /// (backpressure — retry or shed load), [`SubmitError::Closed`] when
    /// the engine has shut down, [`SubmitError::Shed`] when the event is a
    /// new `TripStart` and the fleet is above an admission watermark. All
    /// hand the event back.
    pub fn try_submit(&self, ev: Event) -> Result<(), SubmitError> {
        if matches!(ev, Event::TripStart { .. }) && self.admission_overloaded() {
            return Err(self.shed(ev));
        }
        let shard = self.shard_of(&ev);
        match self.senders[shard].try_send(Ingest::One(ev)) {
            Ok(()) => {
                FleetStats::bump(&self.stats.events_ingested);
                self.metrics.inflight.add(1);
                Ok(())
            }
            Err(TrySendError::Full(msg)) => Err(SubmitError::Full(msg.into_single())),
            Err(TrySendError::Disconnected(msg)) => Err(SubmitError::Closed(msg.into_single())),
        }
    }

    /// Bulk enqueue: groups `events` by shard (preserving per-trip order)
    /// and hands each shard its group as one queue message. High-volume
    /// producers should prefer this — it amortises the per-message channel
    /// synchronisation across the whole chunk. Blocks while queues are
    /// full.
    /// On engine shutdown mid-call, every not-yet-accepted event (the
    /// failing shard's group plus all unsent groups) is handed back in
    /// [`SubmitError::ClosedChunk`]; groups already delivered to other
    /// shards stay delivered.
    ///
    /// # Errors
    /// [`SubmitError::ClosedChunk`] when the engine shut down mid-call,
    /// carrying every event that was not accepted.
    pub fn submit_all(&self, events: impl IntoIterator<Item = Event>) -> Result<(), SubmitError> {
        let mut per_shard: Vec<Vec<Event>> = vec![Vec::new(); self.senders.len()];
        for ev in events {
            per_shard[self.shard_of(&ev)].push(ev);
        }
        let mut groups = per_shard.into_iter().enumerate();
        for (shard, group) in &mut groups {
            if group.is_empty() {
                continue;
            }
            let len = group.len() as u64;
            if let Err(e) = self.senders[shard].send(Ingest::Many(group)) {
                let mut unaccepted = e.0.into_events();
                unaccepted.extend(groups.flat_map(|(_, g)| g));
                return Err(SubmitError::ClosedChunk(unaccepted));
            }
            FleetStats::add(&self.stats.events_ingested, len);
            self.metrics.inflight.add(len as i64);
        }
        Ok(())
    }

    /// Non-blocking bulk enqueue for the network tier's cross-connection
    /// micro-batches: groups `events` by shard (preserving submission
    /// order within each shard, and therefore per-trip order) and
    /// `try_send`s each group as **one** queue message, so a whole poll
    /// tick's worth of segments reaches a shard as a single cohort and
    /// scores in wide [`CausalTad::push_batch`] waves.
    ///
    /// A full shard bounces its **entire group** — never a prefix — so
    /// the per-trip ordering contract survives backpressure: either every
    /// queued event of a trip's cohort slice is accepted in order, or the
    /// caller gets all of them back (by index) to bounce to their
    /// producers. Accepted groups on other shards stay accepted;
    /// per-shard admission is independent, which is safe because trips
    /// never span shards.
    ///
    /// The returned [`CohortOutcome`] carries indexes into the submitted
    /// slice, so a caller that tracked per-event metadata (owning
    /// connection, trip id) in a parallel vector can route one typed
    /// reply per bounced event.
    ///
    /// Admission control is evaluated **once per cohort**: when the fleet
    /// is above a watermark on entry, every `TripStart` in the cohort is
    /// shed — along with any later events of those same trips (their
    /// start never entered the engine) — into [`CohortOutcome::shed`],
    /// while events of already-admitted trips pass through untouched.
    pub fn try_submit_cohort(&self, events: Vec<Event>) -> CohortOutcome {
        let shards = self.senders.len();
        let mut outcome = CohortOutcome::default();
        let overloaded = self.admission_overloaded();
        let mut shed_trips: Vec<TripId> = Vec::new();
        let mut groups: Vec<(Vec<Event>, Vec<usize>)> = vec![Default::default(); shards];
        for (idx, ev) in events.into_iter().enumerate() {
            if overloaded {
                let id = ev.trip_id();
                if matches!(ev, Event::TripStart { .. }) {
                    if !shed_trips.contains(&id) {
                        shed_trips.push(id);
                    }
                    outcome.shed.push(idx);
                    continue;
                }
                if shed_trips.contains(&id) {
                    outcome.shed.push(idx);
                    continue;
                }
            }
            let shard = self.shard_of(&ev);
            groups[shard].0.push(ev);
            groups[shard].1.push(idx);
        }
        if !outcome.shed.is_empty() {
            self.metrics.admission_shed.add(outcome.shed.len() as u64);
        }
        for (shard, (group, indexes)) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let len = group.len() as u64;
            match self.senders[shard].try_send(Ingest::Many(group)) {
                Ok(()) => {
                    FleetStats::add(&self.stats.events_ingested, len);
                    self.metrics.inflight.add(len as i64);
                    outcome.accepted += len;
                }
                Err(TrySendError::Full(_)) => outcome.full.extend(indexes),
                Err(TrySendError::Disconnected(_)) => outcome.closed.extend(indexes),
            }
        }
        outcome
    }

    /// Number of shard workers.
    pub fn num_shards(&self) -> usize {
        self.senders.len()
    }

    /// Captures every live session into a [`FleetImage`] while the engine
    /// keeps serving.
    ///
    /// Each shard quiesces independently: it finishes every event that was
    /// queued ahead of the capture request, replies with clones of its
    /// live sessions, and goes straight back to serving. Events submitted
    /// after this call returns are never part of the image; events racing
    /// with the call land on one side or the other of each shard's quiesce
    /// point, with per-trip ordering preserved either way.
    ///
    /// Blocks until every shard has replied (bounded by the time it takes
    /// the shards to drain what is already queued).
    ///
    /// # Errors
    /// [`SnapshotError::ShardUnavailable`] when a shard worker is gone
    /// (it panicked or the engine is shutting down).
    pub fn snapshot(&self) -> Result<FleetImage, SnapshotError> {
        let parts = self.fan(Ingest::Snapshot)?;
        Ok(FleetImage {
            num_shards: self.senders.len() as u32,
            sessions: parts.into_iter().flatten().collect(),
        })
    }

    /// Fans one quiesce-point control message out to every shard (so they
    /// quiesce in parallel) and collects the replies in shard order.
    fn fan<T>(&self, make: impl Fn(SyncSender<T>) -> Ingest) -> Result<Vec<T>, SnapshotError> {
        let mut replies = Vec::with_capacity(self.senders.len());
        for (shard, tx) in self.senders.iter().enumerate() {
            let (reply_tx, reply_rx) = sync_channel(1);
            tx.send(make(reply_tx)).map_err(|_| SnapshotError::ShardUnavailable { shard })?;
            replies.push(reply_rx);
        }
        let mut out = Vec::with_capacity(replies.len());
        for (shard, reply_rx) in replies.into_iter().enumerate() {
            out.push(reply_rx.recv().map_err(|_| SnapshotError::ShardUnavailable { shard })?);
        }
        Ok(out)
    }

    /// Full capture that also starts (or restarts) a delta-snapshot
    /// chain: every live session is captured like [`FleetEngine::snapshot`]
    /// and every shard clears its dirty bits and tombstones, so the next
    /// [`FleetEngine::delta`] covers exactly the churn after this quiesce
    /// point. Returns the image and the **epoch** stamped on the new
    /// chain; feed both to [`crate::DeltaBase::new`] on the restore side.
    ///
    /// # Errors
    /// [`SnapshotError::ShardUnavailable`] when a shard worker is gone.
    pub fn checkpoint(&self) -> Result<(FleetImage, u64), SnapshotError> {
        let mut clock = self.delta_clock.lock().expect("delta clock poisoned");
        let parts = self.fan(Ingest::Checkpoint)?;
        clock.epoch += 1;
        clock.seq = 0;
        clock.armed = true;
        let image = FleetImage {
            num_shards: self.senders.len() as u32,
            sessions: parts.into_iter().flatten().collect(),
        };
        Ok((image, clock.epoch))
    }

    /// Incremental capture: the sessions dirtied and the trips removed
    /// since the previous [`FleetEngine::checkpoint`] or
    /// [`FleetEngine::delta`], as the next delta of the current chain —
    /// cost scales with churn, not fleet size. Apply in order with
    /// [`crate::DeltaBase::apply`].
    ///
    /// # Errors
    /// [`SnapshotError::NoCheckpoint`] before the first checkpoint,
    /// [`SnapshotError::ShardUnavailable`] when a shard worker is gone.
    pub fn delta(&self) -> Result<FleetDelta, SnapshotError> {
        let mut clock = self.delta_clock.lock().expect("delta clock poisoned");
        if !clock.armed {
            return Err(SnapshotError::NoCheckpoint);
        }
        let parts = self.fan(Ingest::Delta)?;
        clock.seq += 1;
        let mut removed = Vec::new();
        let mut sessions = Vec::new();
        for (records, tombs) in parts {
            sessions.extend(records);
            removed.extend(tombs);
        }
        self.metrics.dirty_sessions.add(sessions.len() as u64);
        Ok(FleetDelta {
            base_epoch: clock.epoch,
            seq: clock.seq,
            num_shards: self.senders.len() as u32,
            removed,
            sessions,
        })
    }

    /// [`FleetEngine::delta`] serialized with [`crate::delta_to_bytes`] —
    /// the incremental blob to append to durable storage.
    ///
    /// # Errors
    /// See [`FleetEngine::delta`].
    pub fn delta_bytes(&self) -> Result<Bytes, SnapshotError> {
        let delta = self.delta()?;
        let blob = delta_to_bytes(&delta);
        self.metrics.delta_bytes.add(blob.len() as u64);
        Ok(blob)
    }

    /// Captures **and removes** every live session — the source half of a
    /// live handoff. The sessions leave the engine without firing
    /// completion callbacks (they are not finished, they are moving), so
    /// restoring the returned image elsewhere and replaying the remaining
    /// traffic there continues every trip bit-identically.
    ///
    /// # Errors
    /// [`SnapshotError::ShardUnavailable`] when a shard worker is gone.
    pub fn drain_sessions(&self) -> Result<FleetImage, SnapshotError> {
        let parts = self.fan(Ingest::Drain)?;
        Ok(FleetImage {
            num_shards: self.senders.len() as u32,
            sessions: parts.into_iter().flatten().collect(),
        })
    }

    /// Seeds a **running** engine with the sessions of a [`FleetImage`] —
    /// the target half of a live handoff (the build-time equivalent is
    /// [`FleetEngineBuilder::resume`]). Sessions are validated against
    /// the model, re-partitioned for this engine's shard count, and
    /// enqueued ahead of any traffic submitted after this call returns;
    /// scoring of the moved trips resumes bit-identically. Returns the
    /// number of sessions delivered.
    ///
    /// # Errors
    /// [`ServeError::SnapshotMismatch`] when a session does not fit the
    /// model, [`ServeError::ShardUnavailable`] when a target shard's
    /// worker is gone.
    pub fn restore_sessions(&self, image: FleetImage) -> Result<u64, ServeError> {
        let groups = partition_image(&self.model, image, self.senders.len())?;
        let mut delivered = 0u64;
        for (shard, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            delivered += group.len() as u64;
            self.senders[shard]
                .send(Ingest::Restore(group))
                .map_err(|_| ServeError::ShardUnavailable { shard })?;
        }
        Ok(delivered)
    }

    /// [`FleetEngine::snapshot`] serialized with
    /// [`crate::image_to_bytes`] — the blob to write to durable storage.
    ///
    /// # Errors
    /// See [`FleetEngine::snapshot`].
    pub fn snapshot_bytes(&self) -> Result<Bytes, SnapshotError> {
        self.snapshot().map(|image| image_to_bytes(&image))
    }

    /// Quiesce barrier: blocks until every shard has processed every event
    /// that was queued ahead of this call. When `flush` returns, all
    /// `on_score` / `on_complete` callbacks for those events have already
    /// run — the hook a network front-end uses to answer "everything you
    /// sent so far has been scored" (`tad-net`'s `Flush` frame). Same
    /// quiesce mechanism as [`FleetEngine::snapshot`], without cloning any
    /// sessions.
    ///
    /// # Errors
    /// [`SnapshotError::ShardUnavailable`] when a shard worker is gone
    /// (it panicked or the engine is shutting down).
    pub fn flush(&self) -> Result<(), SnapshotError> {
        self.fan(Ingest::Flush).map(|_| ())
    }

    /// Point-in-time fleet counters.
    pub fn stats(&self) -> FleetSnapshot {
        self.stats.snapshot()
    }

    /// Shared handle to the live counters (e.g. for a metrics exporter).
    pub fn stats_handle(&self) -> Arc<FleetStats> {
        Arc::clone(&self.stats)
    }

    /// Point-in-time copy of the engine's latency/depth metrics (the
    /// `serve.*` names — score latency, batch width, queue depth). When
    /// the engine was built with [`FleetEngineBuilder::metrics_registry`],
    /// the snapshot covers everything else registered there too.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Shared handle to the metrics registry this engine records into.
    pub fn metrics_registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Stops ingest, drains every queue, flushes still-live sessions to the
    /// completion callback (as [`crate::Completion::Shutdown`]), joins the
    /// workers, and returns the final counters.
    pub fn shutdown(mut self) -> FleetSnapshot {
        self.senders.clear();
        for handle in self.workers.drain(..) {
            handle.join().expect("shard worker panicked");
        }
        self.stats.snapshot()
    }
}

impl Drop for FleetEngine {
    fn drop(&mut self) {
        self.senders.clear();
        for handle in self.workers.drain(..) {
            // Propagating a panic out of drop would abort; losing the
            // worker's panic message here is acceptable.
            let _ = handle.join();
        }
    }
}
