//! The shard worker: drains its bounded queue in micro-batches, advances
//! every touched session through one batched model step per wave, and
//! drives the session lifecycle (start, end, TTL/LRU eviction, shutdown
//! flush).

use std::sync::mpsc::{Receiver, RecvTimeoutError, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use causaltad::{CausalTad, ScorerState, StepCache, OFF_GRAPH_NLL};

use crate::engine::{CompletionCallback, FleetConfig};
use crate::event::{Completion, Event, TripId, TripOutcome};
use crate::session::{Session, SessionStore};
use crate::stats::FleetStats;

/// A queue message: one event, or a producer-side chunk that amortises the
/// channel synchronisation.
pub(crate) enum Ingest {
    One(Event),
    Many(Vec<Event>),
}

impl Ingest {
    /// A representative event for error reporting.
    pub(crate) fn into_single(self) -> Event {
        match self {
            Ingest::One(ev) => ev,
            Ingest::Many(mut evs) => evs.pop().expect("submit_all never sends empty chunks"),
        }
    }

    /// All carried events (for handing a failed chunk back to the caller).
    pub(crate) fn into_events(self) -> Vec<Event> {
        match self {
            Ingest::One(ev) => vec![ev],
            Ingest::Many(evs) => evs,
        }
    }

    fn append_to(self, batch: &mut Vec<Event>) {
        match self {
            Ingest::One(ev) => batch.push(ev),
            Ingest::Many(mut evs) => batch.append(&mut evs),
        }
    }
}

/// Everything a shard worker needs, cloned per shard.
pub(crate) struct ShardCtx {
    pub model: Arc<CausalTad>,
    pub cache: Option<Arc<StepCache>>,
    pub cfg: FleetConfig,
    pub stats: Arc<FleetStats>,
    pub on_complete: Option<CompletionCallback>,
}

impl ShardCtx {
    fn finish(&self, id: TripId, session: Session, completion: Completion) {
        if completion == Completion::Ended {
            FleetStats::bump(&self.stats.trips_completed);
        }
        self.stats.active_sessions.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
        if let Some(cb) = &self.on_complete {
            let state = session.state;
            cb(TripOutcome {
                id,
                completion,
                score: state.score(self.model.config().lambda),
                likelihood_nll: state.likelihood_nll(),
                scale_log_sum: state.scale_log_sum(),
                segments: state.len(),
                trace: state.into_trace(),
            });
        }
    }
}

/// Worker entry point; returns when every sender is dropped and the queue
/// has been fully drained.
pub(crate) fn run_shard(ctx: ShardCtx, rx: Receiver<Ingest>) {
    let mut store = SessionStore::new(ctx.cfg.max_sessions_per_shard);
    let mut batch: Vec<Event> = Vec::with_capacity(ctx.cfg.max_batch);
    let sweep_every = sweep_interval(ctx.cfg.session_ttl);
    let mut last_sweep = Instant::now();

    loop {
        match rx.recv_timeout(sweep_every) {
            Ok(msg) => msg.append_to(&mut batch),
            Err(RecvTimeoutError::Timeout) => {
                sweep(&ctx, &mut store, &mut last_sweep, sweep_every);
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
        while batch.len() < ctx.cfg.max_batch {
            match rx.try_recv() {
                Ok(msg) => msg.append_to(&mut batch),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        process_batch(&ctx, &mut store, &mut batch);
        sweep(&ctx, &mut store, &mut last_sweep, sweep_every);
    }

    // Engine dropped: flush whatever is still live.
    for (id, session) in store.drain() {
        ctx.finish(id, session, Completion::Shutdown);
    }
}

fn sweep_interval(ttl: Duration) -> Duration {
    (ttl / 4).clamp(Duration::from_millis(10), Duration::from_secs(1))
}

fn sweep(ctx: &ShardCtx, store: &mut SessionStore, last_sweep: &mut Instant, every: Duration) {
    if last_sweep.elapsed() < every {
        return;
    }
    *last_sweep = Instant::now();
    for (id, session) in store.sweep_ttl(ctx.cfg.session_ttl, *last_sweep) {
        FleetStats::bump(&ctx.stats.evictions_ttl);
        ctx.finish(id, session, Completion::EvictedTtl);
    }
}

/// Applies one drained micro-batch of events: lifecycle bookkeeping first,
/// then the pending segments of every touched session in batched waves
/// (wave `k` scores the `k`-th queued segment of each touched trip, so
/// per-trip order is preserved while the model work is matrix-matrix).
fn process_batch(ctx: &ShardCtx, store: &mut SessionStore, batch: &mut Vec<Event>) {
    let now = Instant::now();
    let vocab = ctx.model.vocab() as u32;
    let mut touched: Vec<TripId> = Vec::new();
    let mut ended: Vec<TripId> = Vec::new();

    for ev in batch.drain(..) {
        match ev {
            Event::TripStart { id, source, dest, time_slot } => {
                if store.contains(id) {
                    FleetStats::bump(&ctx.stats.rejected);
                    continue;
                }
                match ctx.model.start_state(source, dest, time_slot) {
                    Ok(state) => {
                        FleetStats::bump(&ctx.stats.trips_started);
                        FleetStats::bump(&ctx.stats.active_sessions);
                        if let Some((victim, session)) = store.insert(id, Session::new(state, now))
                        {
                            FleetStats::bump(&ctx.stats.evictions_lru);
                            ctx.finish(victim, session, Completion::EvictedLru);
                        }
                    }
                    Err(_) => FleetStats::bump(&ctx.stats.rejected),
                }
            }
            Event::Segment { id, seg } => {
                if seg >= vocab {
                    FleetStats::bump(&ctx.stats.rejected);
                    continue;
                }
                match store.get_mut(id) {
                    Some(session) if !session.ending => {
                        if session.pending.is_empty() {
                            touched.push(id);
                        }
                        session.pending.push_back(seg);
                        session.last_touch = now;
                    }
                    _ => FleetStats::bump(&ctx.stats.rejected),
                }
            }
            Event::TripEnd { id } => match store.get_mut(id) {
                Some(session) if !session.ending => {
                    session.ending = true;
                    session.last_touch = now;
                    ended.push(id);
                }
                _ => FleetStats::bump(&ctx.stats.rejected),
            },
        }
    }

    // Batched waves over the pending segments: take each touched
    // session's state and queue out of the store once, run every wave on
    // the local list (wave `k` = the `k`-th queued segment of each trip),
    // then write back — the per-event cost is one queue pop, not repeated
    // map lookups.
    //
    // A touched session can have disappeared only through LRU eviction
    // above; its queued segments die with it.
    let mut work: Vec<(TripId, ScorerState, std::collections::VecDeque<u32>)> = touched
        .iter()
        .filter_map(|&id| {
            let session = store.get_mut(id)?;
            Some((id, std::mem::take(&mut session.state), std::mem::take(&mut session.pending)))
        })
        .collect();
    let mut wave_segs: Vec<u32> = Vec::with_capacity(work.len());
    loop {
        let mut wave: Vec<&mut ScorerState> = Vec::with_capacity(work.len());
        wave_segs.clear();
        for (_, state, pending) in work.iter_mut() {
            if let Some(seg) = pending.pop_front() {
                wave_segs.push(seg);
                wave.push(state);
            }
        }
        if wave.is_empty() {
            break;
        }
        ctx.model.push_batch(ctx.cache.as_deref(), &mut wave, &wave_segs);
        FleetStats::bump(&ctx.stats.batches);
        FleetStats::add(&ctx.stats.segments_scored, wave.len() as u64);
        for state in &wave {
            if state.trace().last().is_some_and(|t| t.nll == OFF_GRAPH_NLL) {
                FleetStats::bump(&ctx.stats.off_graph_hits);
            }
        }
    }
    for (id, state, pending) in work {
        if let Some(session) = store.get_mut(id) {
            session.state = state;
            session.pending = pending;
        }
    }

    for id in ended {
        if let Some(session) = store.remove(id) {
            ctx.finish(id, session, Completion::Ended);
        }
    }
}
