//! The shard worker: drains its bounded queue in micro-batches, advances
//! every touched session through one batched model step per wave, and
//! drives the session lifecycle (start, end, TTL/LRU eviction, shutdown
//! flush).

use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use causaltad::{CausalTad, ScorerState, StepCache, OFF_GRAPH_NLL};

use crate::engine::{CompletionCallback, FleetConfig, ScoreCallback};
use crate::event::{Completion, Event, ScoreUpdate, TripId, TripOutcome};
use crate::policy::{GapPolicy, PolicyAction, PolicyCallback, PolicyOutcome};
use crate::session::{Session, SessionStore};
use crate::snapshot::SessionRecord;
use crate::stats::{FleetStats, ServeMetrics};

/// A queue message: one event, a producer-side chunk that amortises the
/// channel synchronisation, or a persistence control message.
pub(crate) enum Ingest {
    One(Event),
    Many(Vec<Event>),
    /// Quiesce: finish every event already queued ahead of this message,
    /// then reply with clones of all live sessions, oldest first.
    Snapshot(SyncSender<Vec<SessionRecord>>),
    /// Seed the store with restored sessions (sent at build time, ahead of
    /// any traffic; records arrive oldest first).
    Restore(Vec<SessionRecord>),
    /// Quiesce barrier: finish every event already queued ahead of this
    /// message (callbacks included), then reply. Like `Snapshot` without
    /// the session clones.
    Flush(SyncSender<()>),
    /// Full capture that also (re)starts delta tracking: clears every
    /// dirty bit and tombstone, so the next `Delta` covers exactly the
    /// churn since this quiesce point.
    Checkpoint(SyncSender<Vec<SessionRecord>>),
    /// Incremental capture: clones of the sessions dirtied since the last
    /// `Checkpoint`/`Delta` (clearing their dirty bits) plus the ids
    /// removed since then (taking the tombstone list).
    Delta(SyncSender<(Vec<SessionRecord>, Vec<TripId>)>),
    /// Capture-and-remove of every live session for a handoff: like
    /// `Snapshot`, but the sessions leave the store without firing
    /// completion callbacks — they are not finished, they are moving to
    /// another engine.
    Drain(SyncSender<Vec<SessionRecord>>),
}

impl Ingest {
    /// A representative event for error reporting.
    pub(crate) fn into_single(self) -> Event {
        match self {
            Ingest::One(ev) => ev,
            Ingest::Many(mut evs) => evs.pop().expect("submit_all never sends empty chunks"),
            _ => unreachable!("control messages never travel submit paths"),
        }
    }

    /// All carried events (for handing a failed chunk back to the caller).
    pub(crate) fn into_events(self) -> Vec<Event> {
        match self {
            Ingest::One(ev) => vec![ev],
            Ingest::Many(evs) => evs,
            _ => unreachable!("control messages never travel submit paths"),
        }
    }
}

/// Everything a shard worker needs, cloned per shard.
pub(crate) struct ShardCtx {
    pub model: Arc<CausalTad>,
    pub cache: Option<Arc<StepCache>>,
    pub cfg: FleetConfig,
    pub stats: Arc<FleetStats>,
    pub metrics: ServeMetrics,
    pub on_complete: Option<CompletionCallback>,
    pub on_score: Option<ScoreCallback>,
    pub on_policy: Option<PolicyCallback>,
}

impl ShardCtx {
    /// Per-segment bookkeeping after a model step scored `state`'s newest
    /// segment: the off-graph counter, then the `on_score` delivery.
    fn deliver_score(&self, id: TripId, state: &ScorerState, score: f64) {
        let step = *state.trace().last().expect("a segment was just scored");
        if step.nll == OFF_GRAPH_NLL {
            FleetStats::bump(&self.stats.off_graph_hits);
        }
        if let Some(cb) = &self.on_score {
            cb(&ScoreUpdate {
                id,
                seq: (state.len() - 1) as u32,
                segment: step.segment,
                score,
                nll: step.nll,
                log_scale: step.log_scale,
            });
        }
    }

    /// Delivers a sanitization outcome to the engine's `on_policy`
    /// callback (a no-op without one).
    fn notify_policy(&self, id: TripId, seg: Option<u32>, action: PolicyAction) {
        if let Some(cb) = &self.on_policy {
            cb(&PolicyOutcome { id, seg, action });
        }
    }

    /// A malformed event was rejected: counts it under both the legacy
    /// `rejected` stat and the `serve.quarantined` metric, and surfaces
    /// the classification so a front-end can answer the producer with a
    /// typed reply instead of a silent drop.
    fn quarantine(&self, id: TripId, seg: Option<u32>, action: PolicyAction) {
        FleetStats::bump(&self.stats.rejected);
        self.metrics.quarantined.add(1);
        self.notify_policy(id, seg, action);
    }

    fn finish(&self, id: TripId, session: Session, completion: Completion) {
        self.stats.active_sessions.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
        self.deliver_outcome(id, session, completion);
    }

    /// Like [`ShardCtx::finish`] for a session that was never admitted to
    /// the `active_sessions` gauge — the restore early-out paths, which
    /// retire a record without it ever becoming live. Keeping the gauge
    /// untouched here means it never transiently overshoots the number of
    /// sessions actually in a store.
    fn finish_detached(&self, id: TripId, session: Session, completion: Completion) {
        self.deliver_outcome(id, session, completion);
    }

    fn deliver_outcome(&self, id: TripId, session: Session, completion: Completion) {
        if completion == Completion::Ended {
            FleetStats::bump(&self.stats.trips_completed);
        }
        if let Some(cb) = &self.on_complete {
            let state = session.state;
            cb(TripOutcome {
                id,
                completion,
                score: state.score(self.model.config().lambda),
                likelihood_nll: state.likelihood_nll(),
                scale_log_sum: state.scale_log_sum(),
                segments: state.len(),
                trace: state.into_trace(),
            });
        }
    }
}

/// Per-shard tombstone log for the delta layer: `None` until the first
/// `Checkpoint` arms tracking, then the trip ids removed from the store
/// since the last capture. Removals of sessions born after the previous
/// capture are recorded too — replaying such a tombstone against a base
/// that never held the id is a no-op, so the over-approximation is safe.
pub(crate) type Tombstones = Option<Vec<TripId>>;

/// Records one removed session id when delta tracking is armed.
fn tombstone(removed: &mut Tombstones, id: TripId) {
    if let Some(log) = removed {
        log.push(id);
    }
}

/// Worker entry point; returns when every sender is dropped and the queue
/// has been fully drained.
pub(crate) fn run_shard(ctx: ShardCtx, rx: Receiver<Ingest>) {
    let mut store = SessionStore::new(ctx.cfg.max_sessions_per_shard);
    let mut batch: Vec<Event> = Vec::with_capacity(ctx.cfg.max_batch);
    let sweep_every = sweep_interval(ctx.cfg.session_ttl);
    let mut last_sweep = Instant::now();
    let mut removed: Tombstones = None;

    loop {
        // A control message (snapshot/restore) breaks batching: everything
        // received ahead of it is processed first, then it is handled at
        // the resulting quiesce point.
        let mut control: Option<Ingest> = None;
        match rx.recv_timeout(sweep_every) {
            Ok(Ingest::One(ev)) => batch.push(ev),
            Ok(Ingest::Many(mut evs)) => batch.append(&mut evs),
            Ok(ctrl) => control = Some(ctrl),
            Err(RecvTimeoutError::Timeout) => {
                sweep(&ctx, &mut store, &mut removed, &mut last_sweep, sweep_every);
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
        while control.is_none() && batch.len() < ctx.cfg.max_batch {
            match rx.try_recv() {
                Ok(Ingest::One(ev)) => batch.push(ev),
                Ok(Ingest::Many(mut evs)) => batch.append(&mut evs),
                Ok(ctrl) => control = Some(ctrl),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        process_batch(&ctx, &mut store, &mut removed, &mut batch);
        // Replies go to the engine side, which may have given up waiting;
        // a dead reply channel is not the shard's problem.
        match control {
            Some(Ingest::Snapshot(reply)) => {
                let _ = reply.send(capture_sessions(&store));
            }
            Some(Ingest::Restore(records)) => {
                restore_sessions(&ctx, &mut store, &mut removed, records)
            }
            Some(Ingest::Flush(reply)) => {
                let _ = reply.send(());
            }
            Some(Ingest::Checkpoint(reply)) => {
                let records = capture_sessions(&store);
                store.for_each_lru_mut(|_, session| session.dirty = false);
                removed = Some(Vec::new());
                let _ = reply.send(records);
            }
            Some(Ingest::Delta(reply)) => {
                let _ = reply.send(capture_delta(&mut store, &mut removed));
            }
            Some(Ingest::Drain(reply)) => {
                let now = Instant::now();
                let drained = store.drain();
                ctx.stats
                    .active_sessions
                    .fetch_sub(drained.len() as u64, std::sync::atomic::Ordering::Relaxed);
                let mut records = Vec::with_capacity(drained.len());
                for (id, session) in drained {
                    tombstone(&mut removed, id);
                    records.push(record_of(id, &session, now));
                }
                let _ = reply.send(records);
            }
            _ => {}
        }
        sweep(&ctx, &mut store, &mut removed, &mut last_sweep, sweep_every);
    }

    // Engine dropped: flush whatever is still live.
    for (id, session) in store.drain() {
        ctx.finish(id, session, Completion::Shutdown);
    }
}

/// Clones every live session into snapshot records, oldest first (so a
/// restore that re-inserts in order reproduces the recency list).
///
/// A session's reorder hold buffer is appended to its `pending` queue:
/// the snapshot format has no policy state, so held segments are
/// conservatively flushed in arrival order and scored at restore time
/// (the same flush `TripEnd` would perform). The dedup ring is likewise
/// not captured — it rebuilds empty on the restored engine.
fn capture_sessions(store: &SessionStore) -> Vec<SessionRecord> {
    let now = Instant::now();
    store.iter_lru().map(|(id, session)| record_of(id, session, now)).collect()
}

/// Clones one live session into its snapshot record (the shared capture
/// shape of `Snapshot`, `Checkpoint`, `Delta`, and `Drain`).
fn record_of(id: TripId, session: &Session, now: Instant) -> SessionRecord {
    SessionRecord {
        id,
        state: session.state.clone(),
        pending: session.pending.iter().chain(session.held.iter()).copied().collect(),
        ending: session.ending,
        idle_micros: now.saturating_duration_since(session.last_touch).as_micros() as u64,
    }
}

/// Incremental capture: clones every dirty session (clearing its dirty
/// bit) and takes the tombstone log. With tracking unarmed (no
/// `Checkpoint` yet) this degenerates to a full capture with no
/// tombstones — every session still carries its initial dirty bit — so
/// the reply is conservative, never wrong.
fn capture_delta(
    store: &mut SessionStore,
    removed: &mut Tombstones,
) -> (Vec<SessionRecord>, Vec<TripId>) {
    let now = Instant::now();
    let tombs = removed.as_mut().map(std::mem::take).unwrap_or_default();
    let mut records = Vec::new();
    store.for_each_lru_mut(|id, session| {
        if session.dirty {
            records.push(record_of(id, session, now));
            session.dirty = false;
        }
    });
    (records, tombs)
}

/// Seeds the store from snapshot records (validated against the model by
/// the engine builder). Records arrive oldest first; each is inserted at
/// the recency head, so the restored LRU order matches the captured one.
/// Sessions already idle past the TTL are evicted on arrival (the
/// captured engine would have swept them had it lived), and the remaining
/// `last_touch` values are kept monotonic even when an idle age is not
/// representable on this host's monotonic clock (e.g. restoring soon
/// after boot) — `sweep_ttl`'s stop-at-first-fresh walk depends on it.
fn restore_sessions(
    ctx: &ShardCtx,
    store: &mut SessionStore,
    removed: &mut Tombstones,
    records: Vec<SessionRecord>,
) {
    let now = Instant::now();
    let ttl = ctx.cfg.session_ttl;
    let mut newest: Option<Instant> = None;
    for rec in records {
        let SessionRecord { id, mut state, pending, ending, idle_micros } = rec;
        if store.contains(id) {
            ctx.quarantine(id, None, PolicyAction::QuarantinedDuplicateStart);
            continue;
        }
        // Segments that were pending at capture time would stall in the
        // store (only freshly touched trips drain their queues), so score
        // them now — push_state is bit-identical to the batched path,
        // including the off-graph accounting.
        for &seg in &pending {
            let score = ctx.model.push_state(&mut state, seg);
            FleetStats::bump(&ctx.stats.segments_scored);
            ctx.deliver_score(id, &state, score);
        }
        FleetStats::bump(&ctx.stats.sessions_restored);
        let idle = Duration::from_micros(idle_micros);
        // The early-out paths below retire the record without it ever
        // entering the store, so they must not touch the
        // `active_sessions` gauge: bumping it first and letting
        // `finish()` undo the bump (the previous arrangement) left a
        // window in which a concurrent `stats()` read an inflated gauge —
        // and the restored-engine gauge drifted from "sessions actually
        // live" by exactly the in-flight early-outs.
        if ending {
            // Its TripEnd arrived before the capture; deliver immediately.
            ctx.finish_detached(id, Session::new(state, now), Completion::Ended);
            continue;
        }
        if idle > ttl {
            FleetStats::bump(&ctx.stats.evictions_ttl);
            ctx.finish_detached(id, Session::new(state, now), Completion::EvictedTtl);
            continue;
        }
        FleetStats::bump(&ctx.stats.active_sessions);
        // Oldest-first arrival means ages descend; `max(newest)` repairs
        // the order when a clamped (unrepresentable) age would otherwise
        // land a fresh-looking session at the tail.
        let mut last_touch = now.checked_sub(idle).unwrap_or(now);
        if let Some(prev) = newest {
            last_touch = last_touch.max(prev);
        }
        newest = Some(last_touch);
        if let Some((victim, evicted)) = store.insert(id, Session::new(state, last_touch)) {
            FleetStats::bump(&ctx.stats.evictions_lru);
            tombstone(removed, victim);
            ctx.finish(victim, evicted, Completion::EvictedLru);
        }
    }
}

fn sweep_interval(ttl: Duration) -> Duration {
    (ttl / 4).clamp(Duration::from_millis(10), Duration::from_secs(1))
}

fn sweep(
    ctx: &ShardCtx,
    store: &mut SessionStore,
    removed: &mut Tombstones,
    last_sweep: &mut Instant,
    every: Duration,
) {
    if last_sweep.elapsed() < every {
        return;
    }
    *last_sweep = Instant::now();
    for (id, session) in store.sweep_ttl(ctx.cfg.session_ttl, *last_sweep) {
        FleetStats::bump(&ctx.stats.evictions_ttl);
        tombstone(removed, id);
        ctx.finish(id, session, Completion::EvictedTtl);
    }
}

/// Applies one drained micro-batch of events: lifecycle bookkeeping first,
/// then the pending segments of every touched session in batched waves
/// (wave `k` scores the `k`-th queued segment of each touched trip, so
/// per-trip order is preserved while the model work is matrix-matrix).
fn process_batch(
    ctx: &ShardCtx,
    store: &mut SessionStore,
    removed: &mut Tombstones,
    batch: &mut Vec<Event>,
) {
    let now = Instant::now();
    // Queue-depth accounting: observe the fleet-wide in-flight level with
    // this drain still counted, then retire the drained events from it.
    if !batch.is_empty() {
        ctx.metrics.queue_depth.record(ctx.metrics.inflight.get().max(0) as u64);
        ctx.metrics.inflight.add(-(batch.len() as i64));
    }
    let vocab = ctx.model.vocab() as u32;
    let policy_on = !ctx.cfg.policy.is_off();
    let mut touched: Vec<TripId> = Vec::new();
    let mut ended: Vec<TripId> = Vec::new();

    for ev in batch.drain(..) {
        match ev {
            Event::TripStart { id, source, dest, time_slot } => {
                if store.contains(id) {
                    ctx.quarantine(id, None, PolicyAction::QuarantinedDuplicateStart);
                    continue;
                }
                match ctx.model.start_state(source, dest, time_slot) {
                    Ok(state) => {
                        FleetStats::bump(&ctx.stats.trips_started);
                        FleetStats::bump(&ctx.stats.active_sessions);
                        if let Some((victim, session)) = store.insert(id, Session::new(state, now))
                        {
                            FleetStats::bump(&ctx.stats.evictions_lru);
                            tombstone(removed, victim);
                            ctx.finish(victim, session, Completion::EvictedLru);
                        }
                    }
                    Err(_) => ctx.quarantine(id, None, PolicyAction::QuarantinedBadStart),
                }
            }
            Event::Segment { id, seg } => {
                if seg >= vocab {
                    ctx.quarantine(id, Some(seg), PolicyAction::QuarantinedOutOfVocab);
                    continue;
                }
                // `touch` refreshes the TTL clock and recency in O(1); a
                // session marked `ending` is removed at the end of this
                // very batch, so the spurious reorder on the reject path
                // is unobservable.
                match store.touch(id, now) {
                    Some(session) if !session.ending => {
                        if policy_on {
                            policy_admit(ctx, id, session, seg, &mut touched);
                        } else {
                            // The pre-policy fast path, byte-identical to
                            // an unpoliced engine.
                            if session.pending.is_empty() {
                                touched.push(id);
                            }
                            session.pending.push_back(seg);
                        }
                    }
                    _ => ctx.quarantine(id, Some(seg), PolicyAction::QuarantinedUnknownTrip),
                }
            }
            Event::TripEnd { id } => match store.touch(id, now) {
                Some(session) if !session.ending => {
                    if policy_on {
                        flush_held(ctx, id, session, &mut touched);
                    }
                    session.ending = true;
                    ended.push(id);
                }
                _ => ctx.quarantine(id, None, PolicyAction::QuarantinedUnknownTrip),
            },
        }
    }

    // Batched waves over the pending segments: take each touched
    // session's state and queue out of the store once, run every wave on
    // the local list (wave `k` = the `k`-th queued segment of each trip),
    // then write back — the per-event cost is one queue pop, not repeated
    // map lookups.
    //
    // A touched session can have disappeared only through LRU eviction
    // above; its queued segments die with it.
    let mut work: Vec<(TripId, ScorerState, std::collections::VecDeque<u32>)> = touched
        .iter()
        .filter_map(|&id| {
            let session = store.get_mut(id)?;
            Some((id, std::mem::take(&mut session.state), std::mem::take(&mut session.pending)))
        })
        .collect();
    let mut wave_segs: Vec<u32> = Vec::with_capacity(work.len());
    let mut wave_ids: Vec<TripId> = Vec::with_capacity(work.len());
    loop {
        let mut wave: Vec<&mut ScorerState> = Vec::with_capacity(work.len());
        wave_segs.clear();
        wave_ids.clear();
        for (id, state, pending) in work.iter_mut() {
            if let Some(seg) = pending.pop_front() {
                wave_segs.push(seg);
                wave_ids.push(*id);
                wave.push(state);
            }
        }
        if wave.is_empty() {
            break;
        }
        let wave_started = Instant::now();
        let scores = ctx.model.push_batch(ctx.cache.as_deref(), &mut wave, &wave_segs);
        // One relaxed record per wave, attributed to every segment it
        // scored: the per-segment cost of the latency histogram stays a
        // fraction of an atomic op at realistic widths.
        let wave_ns = wave_started.elapsed().as_nanos() as u64;
        ctx.metrics.score_latency_ns.record_n(wave_ns, wave.len() as u64);
        ctx.metrics.batch_width.record(wave.len() as u64);
        FleetStats::bump(&ctx.stats.batches);
        FleetStats::add(&ctx.stats.segments_scored, wave.len() as u64);
        for ((state, &id), score) in wave.iter().zip(&wave_ids).zip(scores) {
            ctx.deliver_score(id, state, score);
        }
    }
    for (id, state, pending) in work {
        if let Some(session) = store.get_mut(id) {
            session.state = state;
            session.pending = pending;
        }
    }

    for id in ended {
        if let Some(session) = store.remove(id) {
            tombstone(removed, id);
            ctx.finish(id, session, Completion::Ended);
        }
    }
}

// ---- Ingest sanitization (`StreamPolicy`) -------------------------------
//
// These helpers run only when a policy knob is enabled (`policy_on` above);
// the default all-off configuration takes the fast path, byte-identical to
// an unpoliced engine. They operate strictly on the *admission* side —
// deciding which segments enter `pending` and in what order — so the
// scoring waves below them stay bit-exact, and because every ingest path
// (in-process, `tad-net`, `tad-router`) preserves per-trip arrival order,
// the same corrupted stream sanitizes identically everywhere.

/// True when `seg` chains onto the trip's admission tail: the segment most
/// recently admitted (queued or already scored), or vacuously for a trip
/// that has no tail yet (the first segment is fixed by the SD condition
/// and always admissible).
fn chains(ctx: &ShardCtx, session: &Session, seg: u32) -> bool {
    match session.pending.back().copied().or(session.state.last_segment()) {
        None => true,
        Some(prev) => ctx.model.successors_of(prev).contains(&seg),
    }
}

/// Unconditional admission of one in-vocab segment into the scoring queue,
/// maintaining the micro-batch work list and the dedup ring.
fn admit(ctx: &ShardCtx, id: TripId, session: &mut Session, seg: u32, touched: &mut Vec<TripId>) {
    // The policy layer can drain `pending` mid-batch (a trip reset scores
    // it inline), so unlike the fast path, "queue was empty" no longer
    // implies "not on the work list yet" — the `contains` check keeps the
    // work list duplicate-free (a duplicate would clobber the session
    // state with the taken-out placeholder).
    if session.pending.is_empty() && !touched.contains(&id) {
        touched.push(id);
    }
    session.pending.push_back(seg);
    let window = ctx.cfg.policy.dedup_window;
    if window > 0 {
        session.dedup.push_back(seg);
        while session.dedup.len() > window {
            session.dedup.pop_front();
        }
    }
}

/// Admits a segment that does not chain onto the tail — an off-network
/// jump — under the configured [`GapPolicy`].
fn admit_gap(
    ctx: &ShardCtx,
    id: TripId,
    session: &mut Session,
    seg: u32,
    touched: &mut Vec<TripId>,
) {
    match ctx.cfg.policy.gap {
        GapPolicy::ScoreThrough => {
            ctx.metrics.gap_score_through.add(1);
            ctx.notify_policy(id, Some(seg), PolicyAction::GapScoredThrough);
            admit(ctx, id, session, seg, touched);
        }
        GapPolicy::Reset => {
            // Everything queued ahead must score against the pre-jump
            // context first — push_state is bit-identical to the batched
            // path, including the off-graph accounting — then the Markov
            // predecessor is forgotten so the jump target opens a fresh
            // leg (charged like a first segment).
            while let Some(queued) = session.pending.pop_front() {
                let score = ctx.model.push_state(&mut session.state, queued);
                FleetStats::bump(&ctx.stats.segments_scored);
                ctx.deliver_score(id, &session.state, score);
            }
            session.state.reset_context();
            ctx.metrics.trip_resets.add(1);
            ctx.notify_policy(id, Some(seg), PolicyAction::TripReset);
            admit(ctx, id, session, seg, touched);
        }
    }
}

/// Re-admits every held segment that now chains onto the (moving) tail;
/// each admission may unlock the next.
fn drain_held(ctx: &ShardCtx, id: TripId, session: &mut Session, touched: &mut Vec<TripId>) {
    while let Some(pos) = (0..session.held.len()).find(|&i| chains(ctx, session, session.held[i])) {
        let seg = session.held.remove(pos).expect("index in range");
        admit(ctx, id, session, seg, touched);
        ctx.metrics.reordered.add(1);
        ctx.notify_policy(id, Some(seg), PolicyAction::Reordered);
    }
}

/// `TripEnd` flushes the hold buffer in arrival order: chaining segments
/// are admitted plainly, the rest go through the gap policy. Each
/// admission moves the tail, so later held segments may chain after all.
fn flush_held(ctx: &ShardCtx, id: TripId, session: &mut Session, touched: &mut Vec<TripId>) {
    while let Some(seg) = session.held.pop_front() {
        ctx.metrics.reorder_flushed.add(1);
        ctx.notify_policy(id, Some(seg), PolicyAction::ReorderFlushed);
        if chains(ctx, session, seg) {
            admit(ctx, id, session, seg, touched);
        } else {
            admit_gap(ctx, id, session, seg, touched);
        }
    }
}

/// The policy-aware admission pipeline for one in-vocab segment event:
/// dedup window first, then the order check against the admission tail,
/// with non-chaining segments held for reorder repair and true gaps
/// handled by the configured [`GapPolicy`].
fn policy_admit(
    ctx: &ShardCtx,
    id: TripId,
    session: &mut Session,
    seg: u32,
    touched: &mut Vec<TripId>,
) {
    let pol = &ctx.cfg.policy;
    if pol.dedup_window > 0 && session.dedup.contains(&seg) {
        ctx.metrics.dedup_dropped.add(1);
        ctx.notify_policy(id, Some(seg), PolicyAction::DedupDropped);
        return;
    }
    if chains(ctx, session, seg) {
        admit(ctx, id, session, seg, touched);
        drain_held(ctx, id, session, touched);
        return;
    }
    if pol.reorder_window == 0 {
        admit_gap(ctx, id, session, seg, touched);
        return;
    }
    if session.held.len() < pol.reorder_window {
        session.held.push_back(seg);
        return;
    }
    // Hold buffer full: the oldest held segment has outlived a whole
    // window without chaining — treat it as a genuine gap (which may
    // unlock the rest of the buffer), then retry the incoming segment
    // against the moved tail.
    let oldest = session.held.pop_front().expect("window > 0 and buffer full");
    admit_gap(ctx, id, session, oldest, touched);
    drain_held(ctx, id, session, touched);
    if chains(ctx, session, seg) {
        admit(ctx, id, session, seg, touched);
        drain_held(ctx, id, session, touched);
    } else {
        session.held.push_back(seg);
    }
}
