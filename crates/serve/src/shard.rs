//! The shard worker: drains its bounded queue in micro-batches, advances
//! every touched session through one batched model step per wave, and
//! drives the session lifecycle (start, end, TTL/LRU eviction, shutdown
//! flush).

use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use causaltad::{CausalTad, ScorerState, StepCache, OFF_GRAPH_NLL};

use crate::engine::{CompletionCallback, FleetConfig, ScoreCallback};
use crate::event::{Completion, Event, ScoreUpdate, TripId, TripOutcome};
use crate::session::{Session, SessionStore};
use crate::snapshot::SessionRecord;
use crate::stats::{FleetStats, ServeMetrics};

/// A queue message: one event, a producer-side chunk that amortises the
/// channel synchronisation, or a persistence control message.
pub(crate) enum Ingest {
    One(Event),
    Many(Vec<Event>),
    /// Quiesce: finish every event already queued ahead of this message,
    /// then reply with clones of all live sessions, oldest first.
    Snapshot(SyncSender<Vec<SessionRecord>>),
    /// Seed the store with restored sessions (sent at build time, ahead of
    /// any traffic; records arrive oldest first).
    Restore(Vec<SessionRecord>),
    /// Quiesce barrier: finish every event already queued ahead of this
    /// message (callbacks included), then reply. Like `Snapshot` without
    /// the session clones.
    Flush(SyncSender<()>),
}

impl Ingest {
    /// A representative event for error reporting.
    pub(crate) fn into_single(self) -> Event {
        match self {
            Ingest::One(ev) => ev,
            Ingest::Many(mut evs) => evs.pop().expect("submit_all never sends empty chunks"),
            _ => unreachable!("control messages never travel submit paths"),
        }
    }

    /// All carried events (for handing a failed chunk back to the caller).
    pub(crate) fn into_events(self) -> Vec<Event> {
        match self {
            Ingest::One(ev) => vec![ev],
            Ingest::Many(evs) => evs,
            _ => unreachable!("control messages never travel submit paths"),
        }
    }
}

/// Everything a shard worker needs, cloned per shard.
pub(crate) struct ShardCtx {
    pub model: Arc<CausalTad>,
    pub cache: Option<Arc<StepCache>>,
    pub cfg: FleetConfig,
    pub stats: Arc<FleetStats>,
    pub metrics: ServeMetrics,
    pub on_complete: Option<CompletionCallback>,
    pub on_score: Option<ScoreCallback>,
}

impl ShardCtx {
    /// Per-segment bookkeeping after a model step scored `state`'s newest
    /// segment: the off-graph counter, then the `on_score` delivery.
    fn deliver_score(&self, id: TripId, state: &ScorerState, score: f64) {
        let step = *state.trace().last().expect("a segment was just scored");
        if step.nll == OFF_GRAPH_NLL {
            FleetStats::bump(&self.stats.off_graph_hits);
        }
        if let Some(cb) = &self.on_score {
            cb(&ScoreUpdate {
                id,
                seq: (state.len() - 1) as u32,
                segment: step.segment,
                score,
                nll: step.nll,
                log_scale: step.log_scale,
            });
        }
    }

    fn finish(&self, id: TripId, session: Session, completion: Completion) {
        if completion == Completion::Ended {
            FleetStats::bump(&self.stats.trips_completed);
        }
        self.stats.active_sessions.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
        if let Some(cb) = &self.on_complete {
            let state = session.state;
            cb(TripOutcome {
                id,
                completion,
                score: state.score(self.model.config().lambda),
                likelihood_nll: state.likelihood_nll(),
                scale_log_sum: state.scale_log_sum(),
                segments: state.len(),
                trace: state.into_trace(),
            });
        }
    }
}

/// Worker entry point; returns when every sender is dropped and the queue
/// has been fully drained.
pub(crate) fn run_shard(ctx: ShardCtx, rx: Receiver<Ingest>) {
    let mut store = SessionStore::new(ctx.cfg.max_sessions_per_shard);
    let mut batch: Vec<Event> = Vec::with_capacity(ctx.cfg.max_batch);
    let sweep_every = sweep_interval(ctx.cfg.session_ttl);
    let mut last_sweep = Instant::now();

    loop {
        // A control message (snapshot/restore) breaks batching: everything
        // received ahead of it is processed first, then it is handled at
        // the resulting quiesce point.
        let mut control: Option<Ingest> = None;
        match rx.recv_timeout(sweep_every) {
            Ok(Ingest::One(ev)) => batch.push(ev),
            Ok(Ingest::Many(mut evs)) => batch.append(&mut evs),
            Ok(ctrl) => control = Some(ctrl),
            Err(RecvTimeoutError::Timeout) => {
                sweep(&ctx, &mut store, &mut last_sweep, sweep_every);
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
        while control.is_none() && batch.len() < ctx.cfg.max_batch {
            match rx.try_recv() {
                Ok(Ingest::One(ev)) => batch.push(ev),
                Ok(Ingest::Many(mut evs)) => batch.append(&mut evs),
                Ok(ctrl) => control = Some(ctrl),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        process_batch(&ctx, &mut store, &mut batch);
        match control {
            Some(Ingest::Snapshot(reply)) => {
                // The engine side may have given up waiting; a dead reply
                // channel is not the shard's problem.
                let _ = reply.send(capture_sessions(&store));
            }
            Some(Ingest::Restore(records)) => restore_sessions(&ctx, &mut store, records),
            Some(Ingest::Flush(reply)) => {
                // The engine side may have given up waiting; a dead reply
                // channel is not the shard's problem.
                let _ = reply.send(());
            }
            _ => {}
        }
        sweep(&ctx, &mut store, &mut last_sweep, sweep_every);
    }

    // Engine dropped: flush whatever is still live.
    for (id, session) in store.drain() {
        ctx.finish(id, session, Completion::Shutdown);
    }
}

/// Clones every live session into snapshot records, oldest first (so a
/// restore that re-inserts in order reproduces the recency list).
fn capture_sessions(store: &SessionStore) -> Vec<SessionRecord> {
    let now = Instant::now();
    store
        .iter_lru()
        .map(|(id, session)| SessionRecord {
            id,
            state: session.state.clone(),
            pending: session.pending.iter().copied().collect(),
            ending: session.ending,
            idle_micros: now.saturating_duration_since(session.last_touch).as_micros() as u64,
        })
        .collect()
}

/// Seeds the store from snapshot records (validated against the model by
/// the engine builder). Records arrive oldest first; each is inserted at
/// the recency head, so the restored LRU order matches the captured one.
/// Sessions already idle past the TTL are evicted on arrival (the
/// captured engine would have swept them had it lived), and the remaining
/// `last_touch` values are kept monotonic even when an idle age is not
/// representable on this host's monotonic clock (e.g. restoring soon
/// after boot) — `sweep_ttl`'s stop-at-first-fresh walk depends on it.
fn restore_sessions(ctx: &ShardCtx, store: &mut SessionStore, records: Vec<SessionRecord>) {
    let now = Instant::now();
    let ttl = ctx.cfg.session_ttl;
    let mut newest: Option<Instant> = None;
    for rec in records {
        let SessionRecord { id, mut state, pending, ending, idle_micros } = rec;
        if store.contains(id) {
            FleetStats::bump(&ctx.stats.rejected);
            continue;
        }
        // Segments that were pending at capture time would stall in the
        // store (only freshly touched trips drain their queues), so score
        // them now — push_state is bit-identical to the batched path,
        // including the off-graph accounting.
        for &seg in &pending {
            let score = ctx.model.push_state(&mut state, seg);
            FleetStats::bump(&ctx.stats.segments_scored);
            ctx.deliver_score(id, &state, score);
        }
        FleetStats::bump(&ctx.stats.sessions_restored);
        FleetStats::bump(&ctx.stats.active_sessions);
        let idle = Duration::from_micros(idle_micros);
        if ending {
            // Its TripEnd arrived before the capture; deliver immediately.
            ctx.finish(id, Session::new(state, now), Completion::Ended);
            continue;
        }
        if idle > ttl {
            FleetStats::bump(&ctx.stats.evictions_ttl);
            ctx.finish(id, Session::new(state, now), Completion::EvictedTtl);
            continue;
        }
        // Oldest-first arrival means ages descend; `max(newest)` repairs
        // the order when a clamped (unrepresentable) age would otherwise
        // land a fresh-looking session at the tail.
        let mut last_touch = now.checked_sub(idle).unwrap_or(now);
        if let Some(prev) = newest {
            last_touch = last_touch.max(prev);
        }
        newest = Some(last_touch);
        if let Some((victim, evicted)) = store.insert(id, Session::new(state, last_touch)) {
            FleetStats::bump(&ctx.stats.evictions_lru);
            ctx.finish(victim, evicted, Completion::EvictedLru);
        }
    }
}

fn sweep_interval(ttl: Duration) -> Duration {
    (ttl / 4).clamp(Duration::from_millis(10), Duration::from_secs(1))
}

fn sweep(ctx: &ShardCtx, store: &mut SessionStore, last_sweep: &mut Instant, every: Duration) {
    if last_sweep.elapsed() < every {
        return;
    }
    *last_sweep = Instant::now();
    for (id, session) in store.sweep_ttl(ctx.cfg.session_ttl, *last_sweep) {
        FleetStats::bump(&ctx.stats.evictions_ttl);
        ctx.finish(id, session, Completion::EvictedTtl);
    }
}

/// Applies one drained micro-batch of events: lifecycle bookkeeping first,
/// then the pending segments of every touched session in batched waves
/// (wave `k` scores the `k`-th queued segment of each touched trip, so
/// per-trip order is preserved while the model work is matrix-matrix).
fn process_batch(ctx: &ShardCtx, store: &mut SessionStore, batch: &mut Vec<Event>) {
    let now = Instant::now();
    // Queue-depth accounting: observe the fleet-wide in-flight level with
    // this drain still counted, then retire the drained events from it.
    if !batch.is_empty() {
        ctx.metrics.queue_depth.record(ctx.metrics.inflight.get().max(0) as u64);
        ctx.metrics.inflight.add(-(batch.len() as i64));
    }
    let vocab = ctx.model.vocab() as u32;
    let mut touched: Vec<TripId> = Vec::new();
    let mut ended: Vec<TripId> = Vec::new();

    for ev in batch.drain(..) {
        match ev {
            Event::TripStart { id, source, dest, time_slot } => {
                if store.contains(id) {
                    FleetStats::bump(&ctx.stats.rejected);
                    continue;
                }
                match ctx.model.start_state(source, dest, time_slot) {
                    Ok(state) => {
                        FleetStats::bump(&ctx.stats.trips_started);
                        FleetStats::bump(&ctx.stats.active_sessions);
                        if let Some((victim, session)) = store.insert(id, Session::new(state, now))
                        {
                            FleetStats::bump(&ctx.stats.evictions_lru);
                            ctx.finish(victim, session, Completion::EvictedLru);
                        }
                    }
                    Err(_) => FleetStats::bump(&ctx.stats.rejected),
                }
            }
            Event::Segment { id, seg } => {
                if seg >= vocab {
                    FleetStats::bump(&ctx.stats.rejected);
                    continue;
                }
                // `touch` refreshes the TTL clock and recency in O(1); a
                // session marked `ending` is removed at the end of this
                // very batch, so the spurious reorder on the reject path
                // is unobservable.
                match store.touch(id, now) {
                    Some(session) if !session.ending => {
                        if session.pending.is_empty() {
                            touched.push(id);
                        }
                        session.pending.push_back(seg);
                    }
                    _ => FleetStats::bump(&ctx.stats.rejected),
                }
            }
            Event::TripEnd { id } => match store.touch(id, now) {
                Some(session) if !session.ending => {
                    session.ending = true;
                    ended.push(id);
                }
                _ => FleetStats::bump(&ctx.stats.rejected),
            },
        }
    }

    // Batched waves over the pending segments: take each touched
    // session's state and queue out of the store once, run every wave on
    // the local list (wave `k` = the `k`-th queued segment of each trip),
    // then write back — the per-event cost is one queue pop, not repeated
    // map lookups.
    //
    // A touched session can have disappeared only through LRU eviction
    // above; its queued segments die with it.
    let mut work: Vec<(TripId, ScorerState, std::collections::VecDeque<u32>)> = touched
        .iter()
        .filter_map(|&id| {
            let session = store.get_mut(id)?;
            Some((id, std::mem::take(&mut session.state), std::mem::take(&mut session.pending)))
        })
        .collect();
    let mut wave_segs: Vec<u32> = Vec::with_capacity(work.len());
    let mut wave_ids: Vec<TripId> = Vec::with_capacity(work.len());
    loop {
        let mut wave: Vec<&mut ScorerState> = Vec::with_capacity(work.len());
        wave_segs.clear();
        wave_ids.clear();
        for (id, state, pending) in work.iter_mut() {
            if let Some(seg) = pending.pop_front() {
                wave_segs.push(seg);
                wave_ids.push(*id);
                wave.push(state);
            }
        }
        if wave.is_empty() {
            break;
        }
        let wave_started = Instant::now();
        let scores = ctx.model.push_batch(ctx.cache.as_deref(), &mut wave, &wave_segs);
        // One relaxed record per wave, attributed to every segment it
        // scored: the per-segment cost of the latency histogram stays a
        // fraction of an atomic op at realistic widths.
        let wave_ns = wave_started.elapsed().as_nanos() as u64;
        ctx.metrics.score_latency_ns.record_n(wave_ns, wave.len() as u64);
        ctx.metrics.batch_width.record(wave.len() as u64);
        FleetStats::bump(&ctx.stats.batches);
        FleetStats::add(&ctx.stats.segments_scored, wave.len() as u64);
        for ((state, &id), score) in wave.iter().zip(&wave_ids).zip(scores) {
            ctx.deliver_score(id, state, score);
        }
    }
    for (id, state, pending) in work {
        if let Some(session) = store.get_mut(id) {
            session.state = state;
            session.pending = pending;
        }
    }

    for id in ended {
        if let Some(session) = store.remove(id) {
            ctx.finish(id, session, Completion::Ended);
        }
    }
}
