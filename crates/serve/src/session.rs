//! Per-shard session store: the live [`ScorerState`]s keyed by trip id,
//! with TTL sweeps and an **O(1) LRU** cap.
//!
//! Sessions live in a slab (`Vec` of slots with a free list) threaded by an
//! intrusive doubly-linked recency list: the head is the most recently
//! touched session, the tail the least. `insert`, `touch`, `remove`, and a
//! cap eviction are all O(1); a TTL sweep walks from the tail and stops at
//! the first fresh session, so it is O(evicted + 1). Because `last_touch`
//! only changes through [`SessionStore::touch`] (which moves the session to
//! the head), list order always equals recency order.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use causaltad::ScorerState;

use crate::event::TripId;

/// One live trip inside a shard.
pub struct Session {
    /// The owned scorer state; temporarily `mem::take`n out during a
    /// micro-batch and written back after.
    pub state: ScorerState,
    /// Segments received but not yet scored (same-trip events inside one
    /// drained micro-batch queue up here and are consumed wave by wave).
    pub pending: VecDeque<u32>,
    /// A `TripEnd` arrived; finalize once `pending` drains. Later segment
    /// events are rejected.
    pub ending: bool,
    /// Last time an event touched this trip (TTL/LRU clock). Updated
    /// through [`SessionStore::touch`] so the recency list stays ordered.
    pub last_touch: Instant,
    /// Dedup ring: the last `StreamPolicy::dedup_window` *admitted*
    /// segment ids, newest last. Empty (and never touched) when the dedup
    /// policy is off.
    pub dedup: VecDeque<u32>,
    /// Reorder hold buffer: segments that did not chain onto the
    /// admission tail, in arrival order, at most
    /// `StreamPolicy::reorder_window` of them. Empty (and never touched)
    /// when the reorder policy is off.
    pub held: VecDeque<u32>,
    /// Delta-snapshot dirty bit: set whenever the session is handed out
    /// mutably (insert, [`SessionStore::touch`], [`SessionStore::get_mut`])
    /// and cleared only by a delta capture. A conservative
    /// over-approximation — a session marked dirty but unchanged costs one
    /// redundant record in the next delta, never a lost update.
    pub dirty: bool,
}

impl Session {
    pub fn new(state: ScorerState, now: Instant) -> Self {
        Session {
            state,
            pending: VecDeque::new(),
            ending: false,
            last_touch: now,
            dedup: VecDeque::new(),
            held: VecDeque::new(),
            dirty: true,
        }
    }
}

/// Sentinel for "no neighbour" in the intrusive list.
const NIL: usize = usize::MAX;

struct Slot {
    id: TripId,
    session: Session,
    /// Towards the head (more recently touched).
    prev: usize,
    /// Towards the tail (less recently touched).
    next: usize,
}

/// Trip-id keyed session map with bounded size and O(1) LRU maintenance.
pub struct SessionStore {
    map: HashMap<TripId, usize>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    /// Most recently touched slot index (NIL when empty).
    head: usize,
    /// Least recently touched slot index (NIL when empty).
    tail: usize,
    max_sessions: usize,
}

impl SessionStore {
    pub fn new(max_sessions: usize) -> Self {
        SessionStore {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            max_sessions: max_sessions.max(1),
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn contains(&self, id: TripId) -> bool {
        self.map.contains_key(&id)
    }

    /// Accesses a session without touching its recency (micro-batch state
    /// write-backs must not reorder the LRU list). Marks it dirty for the
    /// delta layer — every `get_mut` caller is about to mutate.
    pub fn get_mut(&mut self, id: TripId) -> Option<&mut Session> {
        let &slot = self.map.get(&id)?;
        let session = &mut self.slots[slot].as_mut().expect("mapped slot is live").session;
        session.dirty = true;
        Some(session)
    }

    /// Marks a session as just-used: updates its TTL clock and moves it to
    /// the head of the recency list, then hands it out. O(1).
    pub fn touch(&mut self, id: TripId, now: Instant) -> Option<&mut Session> {
        let &slot = self.map.get(&id)?;
        self.unlink(slot);
        self.link_front(slot);
        let session = &mut self.slots[slot].as_mut().expect("mapped slot is live").session;
        session.last_touch = now;
        session.dirty = true;
        Some(session)
    }

    pub fn remove(&mut self, id: TripId) -> Option<Session> {
        let slot = self.map.remove(&id)?;
        self.unlink(slot);
        self.free.push(slot);
        Some(self.slots[slot].take().expect("mapped slot is live").session)
    }

    /// Inserts a new session as the most recently touched. When the store
    /// is at capacity, the least recently touched session is evicted and
    /// returned. O(1).
    ///
    /// # Panics
    /// Panics if `id` is already present (callers check `contains` first).
    pub fn insert(&mut self, id: TripId, session: Session) -> Option<(TripId, Session)> {
        assert!(!self.map.contains_key(&id), "duplicate session insert for trip {id}");
        let evicted = if self.map.len() >= self.max_sessions {
            let victim_slot = self.tail;
            debug_assert_ne!(victim_slot, NIL, "cap >= 1 and store full, so a tail exists");
            let victim_id = self.slots[victim_slot].as_ref().expect("tail slot is live").id;
            self.remove(victim_id).map(|s| (victim_id, s))
        } else {
            None
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some(Slot { id, session, prev: NIL, next: NIL });
                slot
            }
            None => {
                self.slots.push(Some(Slot { id, session, prev: NIL, next: NIL }));
                self.slots.len() - 1
            }
        };
        self.map.insert(id, slot);
        self.link_front(slot);
        evicted
    }

    /// Removes and returns every session idle for longer than `ttl`,
    /// oldest first. Walks from the tail of the recency list and stops at
    /// the first fresh session — O(evicted + 1), not O(sessions).
    pub fn sweep_ttl(&mut self, ttl: Duration, now: Instant) -> Vec<(TripId, Session)> {
        let mut swept = Vec::new();
        while self.tail != NIL {
            let slot = self.slots[self.tail].as_ref().expect("tail slot is live");
            if now.saturating_duration_since(slot.session.last_touch) <= ttl {
                break;
            }
            let id = slot.id;
            let session = self.remove(id).expect("tail id is mapped");
            swept.push((id, session));
        }
        swept
    }

    /// Visits every live session from least to most recently touched (the
    /// order a fleet snapshot records, so a restore that re-inserts in
    /// iteration order reproduces the recency list).
    pub fn iter_lru(&self) -> impl Iterator<Item = (TripId, &Session)> {
        let mut cursor = self.tail;
        std::iter::from_fn(move || {
            if cursor == NIL {
                return None;
            }
            let slot = self.slots[cursor].as_ref().expect("linked slot is live");
            cursor = slot.prev;
            Some((slot.id, &slot.session))
        })
    }

    /// Visits every live session mutably, least to most recently touched,
    /// without going through [`SessionStore::get_mut`] — the delta-capture
    /// walk, which must clear dirty bits rather than set them.
    pub fn for_each_lru_mut(&mut self, mut f: impl FnMut(TripId, &mut Session)) {
        let mut cursor = self.tail;
        while cursor != NIL {
            let slot = self.slots[cursor].as_mut().expect("linked slot is live");
            cursor = slot.prev;
            f(slot.id, &mut slot.session);
        }
    }

    /// Drains every session (shutdown flush), least recently touched first.
    pub fn drain(&mut self) -> Vec<(TripId, Session)> {
        let mut out = Vec::with_capacity(self.map.len());
        while self.tail != NIL {
            let id = self.slots[self.tail].as_ref().expect("tail slot is live").id;
            let session = self.remove(id).expect("tail id is mapped");
            out.push((id, session));
        }
        out
    }

    /// Detaches `slot` from the recency list (no-op bookkeeping if it is
    /// not linked).
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = {
            let s = self.slots[slot].as_ref().expect("unlink of a live slot");
            (s.prev, s.next)
        };
        match prev {
            NIL => {
                if self.head == slot {
                    self.head = next;
                }
            }
            p => self.slots[p].as_mut().expect("linked slot is live").next = next,
        }
        match next {
            NIL => {
                if self.tail == slot {
                    self.tail = prev;
                }
            }
            n => self.slots[n].as_mut().expect("linked slot is live").prev = prev,
        }
        let s = self.slots[slot].as_mut().expect("unlink of a live slot");
        s.prev = NIL;
        s.next = NIL;
    }

    /// Links `slot` in as the new head (most recently touched).
    fn link_front(&mut self, slot: usize) {
        let old_head = self.head;
        {
            let s = self.slots[slot].as_mut().expect("link of a live slot");
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head].as_mut().expect("linked slot is live").prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(now: Instant) -> Session {
        Session::new(ScorerState::default(), now)
    }

    /// The store's recency list, least recent first (test oracle).
    fn lru_order(store: &SessionStore) -> Vec<TripId> {
        store.iter_lru().map(|(id, _)| id).collect()
    }

    #[test]
    fn lru_cap_evicts_least_recently_touched() {
        let t0 = Instant::now();
        let mut store = SessionStore::new(2);
        store.insert(1, session(t0));
        store.insert(2, session(t0 + Duration::from_secs(1)));
        // Touch trip 1 so trip 2 becomes the LRU victim.
        store.touch(1, t0 + Duration::from_secs(5)).unwrap();
        let evicted = store.insert(3, session(t0 + Duration::from_secs(6)));
        assert_eq!(evicted.map(|(id, _)| id), Some(2));
        assert_eq!(store.len(), 2);
        assert!(store.contains(1) && store.contains(3));
    }

    #[test]
    fn touch_reorders_and_evict_pops_true_oldest() {
        let t0 = Instant::now();
        let mut store = SessionStore::new(4);
        for id in 1..=4 {
            store.insert(id, session(t0 + Duration::from_secs(id)));
        }
        assert_eq!(lru_order(&store), vec![1, 2, 3, 4]);
        // Touching the current tail and a middle element reorders them.
        store.touch(1, t0 + Duration::from_secs(10)).unwrap();
        store.touch(3, t0 + Duration::from_secs(11)).unwrap();
        assert_eq!(lru_order(&store), vec![2, 4, 1, 3]);
        // At cap, successive inserts evict in exactly that recency order.
        let mut victims = Vec::new();
        for id in 5..=7 {
            let (victim, _) = store.insert(id, session(t0 + Duration::from_secs(20 + id))).unwrap();
            victims.push(victim);
        }
        assert_eq!(victims, vec![2, 4, 1]);
        assert_eq!(lru_order(&store), vec![3, 5, 6, 7]);
    }

    #[test]
    fn get_mut_does_not_reorder() {
        let t0 = Instant::now();
        let mut store = SessionStore::new(4);
        store.insert(1, session(t0));
        store.insert(2, session(t0 + Duration::from_secs(1)));
        store.get_mut(1).unwrap().ending = true;
        assert_eq!(lru_order(&store), vec![1, 2]);
        assert!(store.get_mut(99).is_none());
    }

    #[test]
    fn remove_relinks_neighbours_and_frees_slots() {
        let t0 = Instant::now();
        let mut store = SessionStore::new(8);
        for id in 1..=5 {
            store.insert(id, session(t0 + Duration::from_secs(id)));
        }
        assert!(store.remove(3).is_some()); // middle
        assert!(store.remove(1).is_some()); // tail
        assert!(store.remove(5).is_some()); // head
        assert!(store.remove(3).is_none()); // already gone
        assert_eq!(lru_order(&store), vec![2, 4]);
        // Freed slots are reused; recency is insertion order again.
        store.insert(6, session(t0 + Duration::from_secs(30)));
        store.insert(7, session(t0 + Duration::from_secs(31)));
        assert_eq!(lru_order(&store), vec![2, 4, 6, 7]);
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn ttl_sweep_removes_only_stale_sessions() {
        let t0 = Instant::now();
        let mut store = SessionStore::new(8);
        store.insert(1, session(t0));
        store.insert(2, session(t0 + Duration::from_secs(50)));
        let swept = store.sweep_ttl(Duration::from_secs(30), t0 + Duration::from_secs(60));
        assert_eq!(swept.len(), 1);
        assert_eq!(swept[0].0, 1);
        assert!(store.contains(2));
    }

    #[test]
    fn ttl_sweep_interops_with_touch() {
        let t0 = Instant::now();
        let mut store = SessionStore::new(8);
        for id in 1..=3 {
            store.insert(id, session(t0));
        }
        // A touch rescues trip 2 from the sweep below.
        store.touch(2, t0 + Duration::from_secs(55)).unwrap();
        let swept = store.sweep_ttl(Duration::from_secs(30), t0 + Duration::from_secs(60));
        let swept_ids: Vec<TripId> = swept.iter().map(|&(id, _)| id).collect();
        assert_eq!(swept_ids, vec![1, 3]);
        assert_eq!(lru_order(&store), vec![2]);
        // Nothing further to sweep.
        assert!(store.sweep_ttl(Duration::from_secs(30), t0 + Duration::from_secs(61)).is_empty());
    }

    #[test]
    fn dirty_bits_track_mutable_access_and_clear_without_remarking() {
        let t0 = Instant::now();
        let mut store = SessionStore::new(4);
        store.insert(1, session(t0));
        store.insert(2, session(t0));
        // Fresh sessions are dirty; a delta-capture walk clears them.
        store.for_each_lru_mut(|_, s| s.dirty = false);
        assert!(store.iter_lru().all(|(_, s)| !s.dirty));
        // touch and get_mut both re-mark; iter_lru does not.
        store.touch(1, t0 + Duration::from_secs(1)).unwrap();
        assert!(store.iter_lru().any(|(id, s)| id == 1 && s.dirty));
        assert!(store.iter_lru().any(|(id, s)| id == 2 && !s.dirty));
        store.for_each_lru_mut(|_, s| s.dirty = false);
        store.get_mut(2).unwrap();
        assert!(store.iter_lru().any(|(id, s)| id == 2 && s.dirty));
        assert!(store.iter_lru().any(|(id, s)| id == 1 && !s.dirty));
    }

    #[test]
    fn drain_empties_the_store_oldest_first() {
        let now = Instant::now();
        let mut store = SessionStore::new(4);
        store.insert(1, session(now));
        store.insert(2, session(now));
        let drained: Vec<TripId> = store.drain().into_iter().map(|(id, _)| id).collect();
        assert_eq!(drained, vec![1, 2]);
        assert_eq!(store.len(), 0);
        assert_eq!(lru_order(&store), Vec::<TripId>::new());
    }
}
