//! Per-shard session store: the live [`ScorerState`]s keyed by trip id,
//! with TTL sweeps and an LRU cap.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use causaltad::ScorerState;

use crate::event::TripId;

/// One live trip inside a shard.
pub(crate) struct Session {
    /// The owned scorer state; temporarily `mem::take`n out during a
    /// micro-batch and written back after.
    pub state: ScorerState,
    /// Segments received but not yet scored (same-trip events inside one
    /// drained micro-batch queue up here and are consumed wave by wave).
    pub pending: VecDeque<u32>,
    /// A `TripEnd` arrived; finalize once `pending` drains. Later segment
    /// events are rejected.
    pub ending: bool,
    /// Last time an event touched this trip (TTL/LRU clock).
    pub last_touch: Instant,
}

impl Session {
    pub fn new(state: ScorerState, now: Instant) -> Self {
        Session { state, pending: VecDeque::new(), ending: false, last_touch: now }
    }
}

/// Trip-id keyed session map with bounded size.
pub(crate) struct SessionStore {
    sessions: HashMap<TripId, Session>,
    max_sessions: usize,
}

impl SessionStore {
    pub fn new(max_sessions: usize) -> Self {
        SessionStore { sessions: HashMap::new(), max_sessions: max_sessions.max(1) }
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    pub fn contains(&self, id: TripId) -> bool {
        self.sessions.contains_key(&id)
    }

    pub fn get_mut(&mut self, id: TripId) -> Option<&mut Session> {
        self.sessions.get_mut(&id)
    }

    pub fn remove(&mut self, id: TripId) -> Option<Session> {
        self.sessions.remove(&id)
    }

    /// Inserts a new session. When the store is at capacity, the least
    /// recently touched session is evicted and returned.
    pub fn insert(&mut self, id: TripId, session: Session) -> Option<(TripId, Session)> {
        let evicted = if self.sessions.len() >= self.max_sessions {
            self.oldest().and_then(|victim| self.sessions.remove(&victim).map(|s| (victim, s)))
        } else {
            None
        };
        self.sessions.insert(id, session);
        evicted
    }

    fn oldest(&self) -> Option<TripId> {
        self.sessions.iter().min_by_key(|(_, s)| s.last_touch).map(|(&id, _)| id)
    }

    /// Removes and returns every session idle for longer than `ttl`.
    pub fn sweep_ttl(&mut self, ttl: Duration, now: Instant) -> Vec<(TripId, Session)> {
        let stale: Vec<TripId> = self
            .sessions
            .iter()
            .filter(|(_, s)| now.duration_since(s.last_touch) > ttl)
            .map(|(&id, _)| id)
            .collect();
        stale.into_iter().filter_map(|id| self.sessions.remove(&id).map(|s| (id, s))).collect()
    }

    /// Drains every session (shutdown flush).
    pub fn drain(&mut self) -> Vec<(TripId, Session)> {
        self.sessions.drain().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(now: Instant) -> Session {
        Session::new(ScorerState::default(), now)
    }

    #[test]
    fn lru_cap_evicts_least_recently_touched() {
        let t0 = Instant::now();
        let mut store = SessionStore::new(2);
        store.insert(1, session(t0));
        store.insert(2, session(t0 + Duration::from_secs(1)));
        // Touch trip 1 so trip 2 becomes the LRU victim.
        store.get_mut(1).unwrap().last_touch = t0 + Duration::from_secs(5);
        let evicted = store.insert(3, session(t0 + Duration::from_secs(6)));
        assert_eq!(evicted.map(|(id, _)| id), Some(2));
        assert_eq!(store.len(), 2);
        assert!(store.contains(1) && store.contains(3));
    }

    #[test]
    fn ttl_sweep_removes_only_stale_sessions() {
        let t0 = Instant::now();
        let mut store = SessionStore::new(8);
        store.insert(1, session(t0));
        store.insert(2, session(t0 + Duration::from_secs(50)));
        let swept = store.sweep_ttl(Duration::from_secs(30), t0 + Duration::from_secs(60));
        assert_eq!(swept.len(), 1);
        assert_eq!(swept[0].0, 1);
        assert!(store.contains(2));
    }

    #[test]
    fn drain_empties_the_store() {
        let now = Instant::now();
        let mut store = SessionStore::new(4);
        store.insert(1, session(now));
        store.insert(2, session(now));
        assert_eq!(store.drain().len(), 2);
        assert_eq!(store.len(), 0);
    }
}
