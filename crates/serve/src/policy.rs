//! Ingest sanitization policies: per-session stream hygiene applied
//! strictly **in front of** the bit-exact scoring path.
//!
//! Real telemetry is hostile — GPS noise duplicates segments, transport
//! retries reorder them, dead zones open mid-trip gaps, and map-matching
//! glitches teleport a trip across the network. [`StreamPolicy`] decides
//! what of that reaches the scorer:
//!
//! 1. **Dedup window** — an incoming segment equal to one of the last
//!    `dedup_window` *admitted* segments of its trip is dropped
//!    (`serve.dedup_dropped`).
//! 2. **Reorder buffer** — a segment that does not chain onto the trip's
//!    admission tail (it is not a road-graph successor) is held in a
//!    bounded per-session buffer; every admission re-checks the held
//!    segments and admits any that now chain (`serve.reordered`). The
//!    buffer is flushed in arrival order at `TripEnd`
//!    (`serve.reorder_flushed`).
//! 3. **Gap policy** — a segment that can be neither admitted nor held is
//!    an off-network jump: [`GapPolicy::ScoreThrough`] admits it anyway
//!    (the scorer charges the off-graph penalty, exactly today's
//!    behaviour; `serve.gap_score_through`), while [`GapPolicy::Reset`]
//!    first scores everything queued ahead, then forgets the Markov
//!    predecessor ([`causaltad::ScorerState::reset_context`]) so the jump
//!    target opens a fresh leg (`serve.trip_resets`).
//! 4. **Quarantine** — malformed events (duplicate `TripStart`, events for
//!    unknown trips, out-of-vocabulary segments, invalid SD pairs) were
//!    always rejected; they are now also *classified* and surfaced through
//!    the [`PolicyCallback`] and `serve.quarantined` so front-ends can
//!    answer the producer with a typed reply instead of a silent drop.
//!
//! The policies run inside the shard worker at the admission point shared
//! by every ingest path (in-process, `tad-net`, `tad-router`), and every
//! path preserves per-trip arrival order — so the same corrupted stream
//! sanitizes identically everywhere, and routed ingest stays bit-identical
//! to direct ingest under any policy configuration. With the default
//! (all-off) policy the admission code path is byte-identical to the
//! pre-policy engine.

use std::sync::Arc;

use crate::event::TripId;

/// How to score a segment that is not a road-graph successor of the
/// trip's admission tail and cannot be repaired by the reorder buffer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GapPolicy {
    /// Admit the jump as-is; the scorer charges the off-graph penalty
    /// ([`causaltad::OFF_GRAPH_NLL`]) exactly as an unpoliced engine
    /// would. The default.
    #[default]
    ScoreThrough,
    /// Score everything queued ahead, then forget the Markov predecessor
    /// ([`causaltad::ScorerState::reset_context`]) so the jump target is
    /// charged like a trip-opening segment and the trip continues as a
    /// fresh leg. Accumulated scores and the decoder hidden state are
    /// kept.
    Reset,
}

/// Per-session stream sanitization configuration. The default is
/// **everything off**: the engine's scoring path is then byte-identical
/// to an engine without a policy layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamPolicy {
    /// Drop a segment equal to one of the last `dedup_window` admitted
    /// segments of its trip. `0` disables deduplication.
    pub dedup_window: usize,
    /// Hold up to `reorder_window` non-chaining segments per session and
    /// re-admit them once the stream catches up. `0` disables reordering
    /// repair (every non-successor is handled by the gap policy
    /// immediately).
    pub reorder_window: usize,
    /// What to do with an off-network jump that cannot be held.
    pub gap: GapPolicy,
}

impl Default for StreamPolicy {
    fn default() -> Self {
        StreamPolicy { dedup_window: 0, reorder_window: 0, gap: GapPolicy::ScoreThrough }
    }
}

impl StreamPolicy {
    /// True when every transform is disabled — the engine then takes the
    /// exact pre-policy admission path.
    pub fn is_off(&self) -> bool {
        self.dedup_window == 0 && self.reorder_window == 0 && self.gap == GapPolicy::ScoreThrough
    }
}

/// What the sanitization layer did to one event of one trip.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PolicyAction {
    /// A segment equal to a recently admitted one was dropped.
    DedupDropped,
    /// A held segment was re-admitted once the stream caught up.
    Reordered,
    /// A held segment was flushed (in arrival order) by `TripEnd`.
    ReorderFlushed,
    /// An off-network jump was admitted and charged the off-graph penalty.
    GapScoredThrough,
    /// An off-network jump reset the trip's Markov context; the jump
    /// target opened a fresh leg.
    TripReset,
    /// A `TripStart` arrived for a trip that is already live.
    QuarantinedDuplicateStart,
    /// A segment or `TripEnd` arrived for a trip with no live session.
    QuarantinedUnknownTrip,
    /// A segment id outside the model's vocabulary.
    QuarantinedOutOfVocab,
    /// A `TripStart` whose SD pair the model rejected.
    QuarantinedBadStart,
}

impl PolicyAction {
    /// Stable single-byte encoding for wire protocols (`tad-net`'s
    /// `PolicyNotice` frame). The inverse is
    /// [`PolicyAction::from_wire_byte`].
    pub fn wire_byte(self) -> u8 {
        match self {
            PolicyAction::DedupDropped => 0,
            PolicyAction::Reordered => 1,
            PolicyAction::ReorderFlushed => 2,
            PolicyAction::GapScoredThrough => 3,
            PolicyAction::TripReset => 4,
            PolicyAction::QuarantinedDuplicateStart => 5,
            PolicyAction::QuarantinedUnknownTrip => 6,
            PolicyAction::QuarantinedOutOfVocab => 7,
            PolicyAction::QuarantinedBadStart => 8,
        }
    }

    /// Decodes [`PolicyAction::wire_byte`]; `None` for unknown bytes.
    pub fn from_wire_byte(b: u8) -> Option<Self> {
        Some(match b {
            0 => PolicyAction::DedupDropped,
            1 => PolicyAction::Reordered,
            2 => PolicyAction::ReorderFlushed,
            3 => PolicyAction::GapScoredThrough,
            4 => PolicyAction::TripReset,
            5 => PolicyAction::QuarantinedDuplicateStart,
            6 => PolicyAction::QuarantinedUnknownTrip,
            7 => PolicyAction::QuarantinedOutOfVocab,
            8 => PolicyAction::QuarantinedBadStart,
            _ => return None,
        })
    }

    /// True for the quarantine classifications (malformed input that was
    /// rejected), false for the sanitizing transforms.
    pub fn is_quarantine(self) -> bool {
        matches!(
            self,
            PolicyAction::QuarantinedDuplicateStart
                | PolicyAction::QuarantinedUnknownTrip
                | PolicyAction::QuarantinedOutOfVocab
                | PolicyAction::QuarantinedBadStart
        )
    }
}

/// One sanitization outcome, delivered to the engine's
/// [`PolicyCallback`] from the shard worker that applied it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PolicyOutcome {
    /// The trip the event belonged to.
    pub id: TripId,
    /// The segment involved, when the action concerns one.
    pub seg: Option<u32>,
    /// What the layer did.
    pub action: PolicyAction,
}

/// Callback invoked by shard workers with every sanitization outcome —
/// transforms fire only when the corresponding policy is enabled;
/// quarantine classifications fire whenever a malformed event is
/// rejected. Must be cheap or hand off to a channel — it runs on the
/// scoring threads.
pub type PolicyCallback = Arc<dyn Fn(&PolicyOutcome) + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_off() {
        assert!(StreamPolicy::default().is_off());
        assert!(!StreamPolicy { dedup_window: 4, ..StreamPolicy::default() }.is_off());
        assert!(!StreamPolicy { reorder_window: 2, ..StreamPolicy::default() }.is_off());
        assert!(!StreamPolicy { gap: GapPolicy::Reset, ..StreamPolicy::default() }.is_off());
    }

    #[test]
    fn wire_bytes_round_trip() {
        let all = [
            PolicyAction::DedupDropped,
            PolicyAction::Reordered,
            PolicyAction::ReorderFlushed,
            PolicyAction::GapScoredThrough,
            PolicyAction::TripReset,
            PolicyAction::QuarantinedDuplicateStart,
            PolicyAction::QuarantinedUnknownTrip,
            PolicyAction::QuarantinedOutOfVocab,
            PolicyAction::QuarantinedBadStart,
        ];
        for action in all {
            assert_eq!(PolicyAction::from_wire_byte(action.wire_byte()), Some(action));
        }
        assert_eq!(PolicyAction::from_wire_byte(200), None);
        assert!(PolicyAction::QuarantinedUnknownTrip.is_quarantine());
        assert!(!PolicyAction::TripReset.is_quarantine());
    }
}
