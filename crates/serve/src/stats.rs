//! Fleet-wide counters, updated lock-free by the shard workers and readable
//! at any time through [`FleetStats::snapshot`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tad_metrics::{Counter, Gauge, Histogram, Registry};

/// Handles into the engine's metrics [`Registry`], resolved once at build
/// time so shard workers and submitters record through cached `Arc`s and
/// never touch the registry lock on a per-event path.
#[derive(Clone)]
pub(crate) struct ServeMetrics {
    /// `serve.score_latency_ns`: wall time of the micro-batched model
    /// step that scored each segment, recorded once per segment.
    pub score_latency_ns: Arc<Histogram>,
    /// `serve.batch_width`: sessions advanced per model-step wave.
    pub batch_width: Arc<Histogram>,
    /// `serve.ingest_queue_depth`: in-flight submitted events observed at
    /// each micro-batch drain.
    pub queue_depth: Arc<Histogram>,
    /// `serve.ingest_inflight`: events submitted but not yet drained.
    pub inflight: Arc<Gauge>,
    /// `serve.dedup_dropped`: segments dropped by the dedup window.
    pub dedup_dropped: Arc<Counter>,
    /// `serve.reordered`: held segments re-admitted once the stream
    /// caught up.
    pub reordered: Arc<Counter>,
    /// `serve.reorder_flushed`: held segments flushed in arrival order by
    /// `TripEnd`.
    pub reorder_flushed: Arc<Counter>,
    /// `serve.gap_score_through`: off-network jumps admitted under
    /// [`crate::GapPolicy::ScoreThrough`].
    pub gap_score_through: Arc<Counter>,
    /// `serve.trip_resets`: off-network jumps that reset the trip's
    /// Markov context under [`crate::GapPolicy::Reset`].
    pub trip_resets: Arc<Counter>,
    /// `serve.quarantined`: malformed events rejected and classified
    /// (duplicate starts, unknown trips, out-of-vocab segments, bad SD
    /// pairs).
    pub quarantined: Arc<Counter>,
    /// `serve.dirty_sessions`: sessions captured into delta snapshots —
    /// the churn the delta layer's cost scales with.
    pub dirty_sessions: Arc<Counter>,
    /// `serve.delta_bytes`: encoded delta-snapshot bytes produced (vs the
    /// full-image bytes a plain snapshot would have cost).
    pub delta_bytes: Arc<Counter>,
    /// `serve.admission_shed`: new-trip events shed by the fleet-wide
    /// admission controller while above a watermark
    /// ([`crate::FleetConfig::admission_session_watermark`] /
    /// [`crate::FleetConfig::admission_queue_watermark`]).
    pub admission_shed: Arc<Counter>,
}

impl ServeMetrics {
    pub(crate) fn register(registry: &Registry) -> Self {
        ServeMetrics {
            score_latency_ns: registry.histogram("serve.score_latency_ns"),
            batch_width: registry.histogram("serve.batch_width"),
            queue_depth: registry.histogram("serve.ingest_queue_depth"),
            inflight: registry.gauge("serve.ingest_inflight"),
            dedup_dropped: registry.counter("serve.dedup_dropped"),
            reordered: registry.counter("serve.reordered"),
            reorder_flushed: registry.counter("serve.reorder_flushed"),
            gap_score_through: registry.counter("serve.gap_score_through"),
            trip_resets: registry.counter("serve.trip_resets"),
            quarantined: registry.counter("serve.quarantined"),
            dirty_sessions: registry.counter("serve.dirty_sessions"),
            delta_bytes: registry.counter("serve.delta_bytes"),
            admission_shed: registry.counter("serve.admission_shed"),
        }
    }
}

/// Live counters shared by every shard worker.
///
/// All counters are monotonically increasing except `active_sessions`,
/// which tracks the current number of live trips.
#[derive(Debug)]
pub struct FleetStats {
    started_at: Instant,
    pub(crate) events_ingested: AtomicU64,
    pub(crate) segments_scored: AtomicU64,
    pub(crate) trips_started: AtomicU64,
    pub(crate) trips_completed: AtomicU64,
    pub(crate) evictions_ttl: AtomicU64,
    pub(crate) evictions_lru: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) off_graph_hits: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) active_sessions: AtomicU64,
    pub(crate) sessions_restored: AtomicU64,
}

impl FleetStats {
    pub(crate) fn new() -> Self {
        FleetStats {
            started_at: Instant::now(),
            events_ingested: AtomicU64::new(0),
            segments_scored: AtomicU64::new(0),
            trips_started: AtomicU64::new(0),
            trips_completed: AtomicU64::new(0),
            evictions_ttl: AtomicU64::new(0),
            evictions_lru: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            off_graph_hits: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            active_sessions: AtomicU64::new(0),
            sessions_restored: AtomicU64::new(0),
        }
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy of every counter.
    pub fn snapshot(&self) -> FleetSnapshot {
        let segments_scored = self.segments_scored.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let elapsed = self.started_at.elapsed().as_secs_f64();
        FleetSnapshot {
            events_ingested: self.events_ingested.load(Ordering::Relaxed),
            segments_scored,
            trips_started: self.trips_started.load(Ordering::Relaxed),
            trips_completed: self.trips_completed.load(Ordering::Relaxed),
            evictions_ttl: self.evictions_ttl.load(Ordering::Relaxed),
            evictions_lru: self.evictions_lru.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            off_graph_hits: self.off_graph_hits.load(Ordering::Relaxed),
            batches,
            active_sessions: self.active_sessions.load(Ordering::Relaxed),
            sessions_restored: self.sessions_restored.load(Ordering::Relaxed),
            uptime_secs: elapsed,
            events_per_sec: if elapsed > 0.0 {
                self.events_ingested.load(Ordering::Relaxed) as f64 / elapsed
            } else {
                0.0
            },
            mean_batch_size: if batches > 0 {
                segments_scored as f64 / batches as f64
            } else {
                0.0
            },
        }
    }
}

impl FleetSnapshot {
    /// Ingested-event throughput over this snapshot's own uptime —
    /// identical to the `events_per_sec` field, provided as a method so
    /// merged and plain snapshots expose one derived-rate surface.
    pub fn events_per_sec(&self) -> f64 {
        self.events_per_sec
    }

    /// Scored-segment throughput over this snapshot's uptime; the number
    /// the soak harness and benches report as sustained seg/s. 0.0 when
    /// the uptime is 0.
    pub fn segments_per_sec(&self) -> f64 {
        if self.uptime_secs > 0.0 {
            self.segments_scored as f64 / self.uptime_secs
        } else {
            0.0
        }
    }

    /// `uptime_secs` as a [`Duration`]. For a merged snapshot this is the
    /// oldest backend's uptime (see [`FleetSnapshot::merged`]).
    pub fn uptime(&self) -> Duration {
        Duration::from_secs_f64(self.uptime_secs.max(0.0))
    }

    /// Sums per-backend snapshots into one fleet-wide view: every counter
    /// adds up and the derived values are recomputed over the aggregate.
    ///
    /// **Uptime-merge semantics** (previously ambiguous, now pinned):
    /// `uptime_secs` is the *oldest* backend's uptime — the merged view
    /// reads as "what this fleet has done since its longest-lived member
    /// started". `events_per_sec` is recomputed as the aggregate
    /// `events_ingested` over that oldest uptime, **not** the sum of the
    /// per-backend rates: summing rates double-counts wall-clock whenever
    /// backends started at different times (a backend that joined a
    /// second ago would briefly inflate the fleet rate), whereas
    /// total-events-over-oldest-uptime is exact for same-age fleets and a
    /// conservative lower bound for staggered ones. `mean_batch_size` is
    /// likewise recomputed from the fleet-wide scored-segment and batch
    /// totals.
    ///
    /// This is how the `tad-router` tier answers a front-door `Flush`
    /// with one `Stats` frame covering every backend behind it. Merging
    /// an empty slice yields the all-zero snapshot.
    pub fn merged(parts: &[FleetSnapshot]) -> FleetSnapshot {
        let mut out = FleetSnapshot {
            events_ingested: 0,
            segments_scored: 0,
            trips_started: 0,
            trips_completed: 0,
            evictions_ttl: 0,
            evictions_lru: 0,
            rejected: 0,
            off_graph_hits: 0,
            batches: 0,
            active_sessions: 0,
            sessions_restored: 0,
            uptime_secs: 0.0,
            events_per_sec: 0.0,
            mean_batch_size: 0.0,
        };
        for p in parts {
            out.events_ingested += p.events_ingested;
            out.segments_scored += p.segments_scored;
            out.trips_started += p.trips_started;
            out.trips_completed += p.trips_completed;
            out.evictions_ttl += p.evictions_ttl;
            out.evictions_lru += p.evictions_lru;
            out.rejected += p.rejected;
            out.off_graph_hits += p.off_graph_hits;
            out.batches += p.batches;
            out.active_sessions += p.active_sessions;
            out.sessions_restored += p.sessions_restored;
            out.uptime_secs = out.uptime_secs.max(p.uptime_secs);
        }
        if out.uptime_secs > 0.0 {
            out.events_per_sec = out.events_ingested as f64 / out.uptime_secs;
        }
        if out.batches > 0 {
            out.mean_batch_size = out.segments_scored as f64 / out.batches as f64;
        }
        out
    }
}

/// Point-in-time view of the fleet counters.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetSnapshot {
    /// Events accepted by `submit`/`try_submit`.
    pub events_ingested: u64,
    /// Segment events actually scored by a model step.
    pub segments_scored: u64,
    /// Trips accepted through a valid `TripStart` event.
    pub trips_started: u64,
    /// Trips that left through a `TripEnd` event.
    pub trips_completed: u64,
    /// Sessions evicted for idling past the TTL.
    pub evictions_ttl: u64,
    /// Sessions evicted by the per-shard LRU cap.
    pub evictions_lru: u64,
    /// Events dropped as invalid (unknown trip, duplicate start, bad
    /// segment or SD pair).
    pub rejected: u64,
    /// Scored segments that were not successors of the previous segment.
    pub off_graph_hits: u64,
    /// Micro-batched model steps executed.
    pub batches: u64,
    /// Currently live sessions across all shards.
    pub active_sessions: u64,
    /// Sessions seeded from a fleet snapshot at build time (warm restart).
    pub sessions_restored: u64,
    /// Seconds since the engine was built.
    pub uptime_secs: f64,
    /// Ingested events per second of engine uptime.
    pub events_per_sec: f64,
    /// Average scored segments per micro-batch.
    pub mean_batch_size: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_sums_counters_and_recomputes_rates() {
        let stats_a = FleetStats::new();
        FleetStats::add(&stats_a.segments_scored, 60);
        FleetStats::add(&stats_a.batches, 2);
        FleetStats::add(&stats_a.trips_completed, 3);
        let stats_b = FleetStats::new();
        FleetStats::add(&stats_b.segments_scored, 40);
        FleetStats::add(&stats_b.batches, 3);
        FleetStats::add(&stats_b.trips_completed, 4);
        let mut a = stats_a.snapshot();
        let mut b = stats_b.snapshot();
        a.uptime_secs = 7.0; // force a distinguishable "oldest backend"
        a.events_ingested = 30;
        b.uptime_secs = 2.0; // a younger backend with an inflated rate
        b.events_ingested = 40;
        b.events_per_sec = 20.0;
        let merged = FleetSnapshot::merged(&[a, b]);
        assert_eq!(merged.segments_scored, 100);
        assert_eq!(merged.batches, 5);
        assert_eq!(merged.trips_completed, 7);
        assert!((merged.mean_batch_size - 20.0).abs() < 1e-12);
        // Oldest backend wins the uptime; the fleet rate is recomputed as
        // aggregate events over that uptime, not the sum of rates (which
        // would read 20+ here).
        assert!((merged.uptime_secs - 7.0).abs() < 1e-12);
        assert!((merged.events_per_sec - 70.0 / 7.0).abs() < 1e-12);
        assert!((merged.segments_per_sec() - 100.0 / 7.0).abs() < 1e-12);
        assert!((merged.uptime().as_secs_f64() - 7.0).abs() < 1e-12);
        // Degenerate inputs stay well-defined.
        let empty = FleetSnapshot::merged(&[]);
        assert_eq!(empty.segments_scored, 0);
        assert_eq!(empty.mean_batch_size, 0.0);
        assert_eq!(empty.segments_per_sec(), 0.0);
    }

    #[test]
    fn snapshot_derives_rates() {
        let stats = FleetStats::new();
        FleetStats::add(&stats.segments_scored, 100);
        FleetStats::add(&stats.batches, 4);
        FleetStats::bump(&stats.events_ingested);
        let snap = stats.snapshot();
        assert_eq!(snap.segments_scored, 100);
        assert_eq!(snap.batches, 4);
        assert!((snap.mean_batch_size - 25.0).abs() < 1e-12);
        assert!(snap.uptime_secs >= 0.0);
    }
}
