//! Fleet-wide counters, updated lock-free by the shard workers and readable
//! at any time through [`FleetStats::snapshot`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Live counters shared by every shard worker.
///
/// All counters are monotonically increasing except `active_sessions`,
/// which tracks the current number of live trips.
#[derive(Debug)]
pub struct FleetStats {
    started_at: Instant,
    pub(crate) events_ingested: AtomicU64,
    pub(crate) segments_scored: AtomicU64,
    pub(crate) trips_started: AtomicU64,
    pub(crate) trips_completed: AtomicU64,
    pub(crate) evictions_ttl: AtomicU64,
    pub(crate) evictions_lru: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) off_graph_hits: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) active_sessions: AtomicU64,
    pub(crate) sessions_restored: AtomicU64,
}

impl FleetStats {
    pub(crate) fn new() -> Self {
        FleetStats {
            started_at: Instant::now(),
            events_ingested: AtomicU64::new(0),
            segments_scored: AtomicU64::new(0),
            trips_started: AtomicU64::new(0),
            trips_completed: AtomicU64::new(0),
            evictions_ttl: AtomicU64::new(0),
            evictions_lru: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            off_graph_hits: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            active_sessions: AtomicU64::new(0),
            sessions_restored: AtomicU64::new(0),
        }
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy of every counter.
    pub fn snapshot(&self) -> FleetSnapshot {
        let segments_scored = self.segments_scored.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let elapsed = self.started_at.elapsed().as_secs_f64();
        FleetSnapshot {
            events_ingested: self.events_ingested.load(Ordering::Relaxed),
            segments_scored,
            trips_started: self.trips_started.load(Ordering::Relaxed),
            trips_completed: self.trips_completed.load(Ordering::Relaxed),
            evictions_ttl: self.evictions_ttl.load(Ordering::Relaxed),
            evictions_lru: self.evictions_lru.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            off_graph_hits: self.off_graph_hits.load(Ordering::Relaxed),
            batches,
            active_sessions: self.active_sessions.load(Ordering::Relaxed),
            sessions_restored: self.sessions_restored.load(Ordering::Relaxed),
            uptime_secs: elapsed,
            events_per_sec: if elapsed > 0.0 {
                self.events_ingested.load(Ordering::Relaxed) as f64 / elapsed
            } else {
                0.0
            },
            mean_batch_size: if batches > 0 {
                segments_scored as f64 / batches as f64
            } else {
                0.0
            },
        }
    }
}

/// Point-in-time view of the fleet counters.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetSnapshot {
    /// Events accepted by `submit`/`try_submit`.
    pub events_ingested: u64,
    /// Segment events actually scored by a model step.
    pub segments_scored: u64,
    /// Trips accepted through a valid `TripStart` event.
    pub trips_started: u64,
    /// Trips that left through a `TripEnd` event.
    pub trips_completed: u64,
    /// Sessions evicted for idling past the TTL.
    pub evictions_ttl: u64,
    /// Sessions evicted by the per-shard LRU cap.
    pub evictions_lru: u64,
    /// Events dropped as invalid (unknown trip, duplicate start, bad
    /// segment or SD pair).
    pub rejected: u64,
    /// Scored segments that were not successors of the previous segment.
    pub off_graph_hits: u64,
    /// Micro-batched model steps executed.
    pub batches: u64,
    /// Currently live sessions across all shards.
    pub active_sessions: u64,
    /// Sessions seeded from a fleet snapshot at build time (warm restart).
    pub sessions_restored: u64,
    /// Seconds since the engine was built.
    pub uptime_secs: f64,
    /// Ingested events per second of engine uptime.
    pub events_per_sec: f64,
    /// Average scored segments per micro-batch.
    pub mean_batch_size: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_derives_rates() {
        let stats = FleetStats::new();
        FleetStats::add(&stats.segments_scored, 100);
        FleetStats::add(&stats.batches, 4);
        FleetStats::bump(&stats.events_ingested);
        let snap = stats.snapshot();
        assert_eq!(snap.segments_scored, 100);
        assert_eq!(snap.batches, 4);
        assert!((snap.mean_batch_size - 25.0).abs() < 1e-12);
        assert!(snap.uptime_secs >= 0.0);
    }
}
