//! Fleet snapshot/restore: versioned session persistence for warm
//! restarts.
//!
//! A [`FleetImage`] is a point-in-time capture of every live session in a
//! [`crate::FleetEngine`] — trip id, full [`ScorerState`], any
//! not-yet-scored pending segments, the `ending` flag, and the session's
//! idle age (how long since its last event, so TTL/LRU ordering survives
//! the restart even though `Instant`s do not serialize). Taking one
//! quiesces each shard: the shard finishes every event already queued
//! ahead of the snapshot request, then replies with clones of its live
//! sessions, oldest first.
//!
//! The binary format is the workspace's standard checksummed envelope
//! ([`causaltad::seal_envelope`]/[`causaltad::open_envelope`], shared with
//! the session codec; little-endian): magic `TADF`, version u16, u64
//! payload length, payload (shard count, session count, then per-session
//! records embedding each state as a length-prefixed
//! [`causaltad::state_to_bytes`] blob), and a trailing FNV-1a 64 checksum
//! of the payload. Decoding hostile bytes returns a typed
//! [`SnapshotCodecError`]; no input can panic the decoder.
//!
//! A restored engine resumes scoring **bit-identically**: restoring a
//! snapshot into a fresh engine and replaying the remaining events yields
//! exactly the scores of an uninterrupted run (the umbrella `fleet.rs`
//! integration test enforces this).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use causaltad::{
    open_envelope, seal_envelope, state_from_bytes, state_to_bytes, EnvelopeError, ScorerState,
    StateCodecError,
};

use crate::event::TripId;

const MAGIC: &[u8; 4] = b"TADF";
const VERSION: u16 = 1;

/// One live session captured by [`crate::FleetEngine::snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct SessionRecord {
    /// The trip this session belongs to.
    pub id: TripId,
    /// The full scorer state at capture time.
    pub state: ScorerState,
    /// Segments received but not yet scored (empty at every quiesce point;
    /// kept in the format so a future mid-batch capture stays decodable).
    pub pending: Vec<u32>,
    /// A `TripEnd` had arrived but the trip was not yet finalised.
    pub ending: bool,
    /// How long the session had been idle at capture time, in
    /// microseconds. Restore subtracts this from its own clock so TTL
    /// eviction and LRU ordering carry across the restart.
    pub idle_micros: u64,
}

/// A point-in-time capture of every live session of a fleet engine.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetImage {
    /// Shard count of the engine that took the snapshot (informational —
    /// restore re-partitions sessions for the new engine's shard count).
    pub num_shards: u32,
    /// Every live session, grouped by source shard, oldest first within
    /// each group.
    pub sessions: Vec<SessionRecord>,
}

impl FleetImage {
    /// Concatenates per-backend captures into one fleet-wide image — the
    /// snapshot half of cross-process sharding: a router tier captures
    /// every backend's [`FleetImage`] over the wire and merges them into
    /// the single artifact a warm restart starts from.
    ///
    /// Sessions are kept in iteration order (callers that need a
    /// canonical blob should pass the parts in a fixed backend order);
    /// `num_shards` becomes the summed shard capacity of the parts —
    /// informational only, since restore re-partitions for the target
    /// engine anyway. Callers are responsible for the parts holding
    /// disjoint trip ids (distinct backends own distinct trips);
    /// duplicates are kept as-is and will be rejected per-trip at
    /// restore time.
    pub fn merge(parts: impl IntoIterator<Item = FleetImage>) -> FleetImage {
        let mut out = FleetImage::default();
        for part in parts {
            out.num_shards += part.num_shards;
            out.sessions.extend(part.sessions);
        }
        out.num_shards = out.num_shards.max(1);
        out
    }

    /// Splits this image into `parts` sub-images, sending each session to
    /// the part `route(trip id)` names — the restore half of
    /// cross-process sharding: a merged fleet capture is re-partitioned
    /// with the router's trip→backend function so each new backend
    /// resumes exactly the sessions whose future events will be routed to
    /// it. Relative session order is preserved within each part, and
    /// every part inherits this image's (informational) `num_shards`.
    ///
    /// # Panics
    /// When `parts` is zero or `route` returns an index `>= parts` — both
    /// are caller bugs in the partitioning function, not data errors.
    pub fn partition_by(
        self,
        parts: usize,
        mut route: impl FnMut(TripId) -> usize,
    ) -> Vec<FleetImage> {
        assert!(parts > 0, "cannot partition a fleet image into zero parts");
        let mut out: Vec<FleetImage> = (0..parts)
            .map(|_| FleetImage { num_shards: self.num_shards, sessions: Vec::new() })
            .collect();
        for rec in self.sessions {
            let part = route(rec.id);
            assert!(part < parts, "route({}) returned {part}, but there are {parts} parts", rec.id);
            out[part].sessions.push(rec);
        }
        out
    }
}

/// Errors produced when decoding a serialized [`FleetImage`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotCodecError {
    /// Magic bytes did not match `TADF`.
    BadMagic,
    /// Unsupported snapshot-format version.
    BadVersion(u16),
    /// Input ended before the named field could be read.
    Truncated(&'static str),
    /// The payload checksum did not match (bit rot or tampering).
    ChecksumMismatch,
    /// The payload parsed but violated a structural invariant.
    Malformed(&'static str),
    /// An embedded session state blob failed to decode.
    BadSession {
        /// Position of the offending record in the session list.
        index: usize,
        /// The underlying state-codec failure.
        source: StateCodecError,
    },
}

impl std::fmt::Display for SnapshotCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotCodecError::BadMagic => write!(f, "bad snapshot magic bytes"),
            SnapshotCodecError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotCodecError::Truncated(what) => write!(f, "truncated snapshot at {what}"),
            SnapshotCodecError::ChecksumMismatch => write!(f, "snapshot payload checksum mismatch"),
            SnapshotCodecError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotCodecError::BadSession { index, source } => {
                write!(f, "session record {index} failed to decode: {source}")
            }
        }
    }
}

impl std::error::Error for SnapshotCodecError {}

impl From<EnvelopeError> for SnapshotCodecError {
    fn from(e: EnvelopeError) -> Self {
        match e {
            EnvelopeError::BadMagic => SnapshotCodecError::BadMagic,
            EnvelopeError::BadVersion(v) => SnapshotCodecError::BadVersion(v),
            EnvelopeError::Truncated(what) => SnapshotCodecError::Truncated(what),
            EnvelopeError::ChecksumMismatch => SnapshotCodecError::ChecksumMismatch,
            EnvelopeError::TrailingBytes => {
                SnapshotCodecError::Malformed("trailing bytes after checksum")
            }
        }
    }
}

/// Why a live snapshot (full, checkpoint, delta, or drain capture) could
/// not be taken.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The shard's worker is gone (it panicked or the engine is shutting
    /// down), so its sessions cannot be captured.
    ShardUnavailable {
        /// Index of the unresponsive shard.
        shard: usize,
    },
    /// A delta was requested before any [`crate::FleetEngine::checkpoint`]
    /// armed delta tracking — there is no base for the delta to extend.
    NoCheckpoint,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::ShardUnavailable { shard } => {
                write!(f, "shard {shard} is unavailable; cannot capture its sessions")
            }
            SnapshotError::NoCheckpoint => {
                write!(f, "no checkpoint taken yet; a delta has no base to extend")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Smallest possible encoded [`SessionRecord`] (empty pending, whose state
/// blob length would still be >= 0); bounding record counts by it caps
/// decoder allocations at the actual input size. Shared with the delta
/// codec ([`crate::delta`]), which embeds the same record layout.
pub(crate) const MIN_RECORD_LEN: usize = 25;

/// Appends one session record in the shared TADF/TADD record layout.
pub(crate) fn encode_record(rec: &SessionRecord, payload: &mut BytesMut) {
    payload.put_u64_le(rec.id);
    payload.put_u64_le(rec.idle_micros);
    payload.put_u8(rec.ending as u8);
    payload.put_u32_le(rec.pending.len() as u32);
    for &seg in &rec.pending {
        payload.put_u32_le(seg);
    }
    let state = state_to_bytes(&rec.state);
    payload.put_u32_le(state.len() as u32);
    payload.put_slice(&state);
}

/// Decodes one session record in the shared TADF/TADD record layout;
/// `index` is the record's position in its list, carried into
/// [`SnapshotCodecError::BadSession`] for diagnostics.
pub(crate) fn decode_record(
    payload: &mut Bytes,
    index: usize,
) -> Result<SessionRecord, SnapshotCodecError> {
    if payload.remaining() < 8 + 8 + 1 + 4 {
        return Err(SnapshotCodecError::Truncated("record header"));
    }
    let id = payload.get_u64_le();
    let idle_micros = payload.get_u64_le();
    let ending = match payload.get_u8() {
        0 => false,
        1 => true,
        _ => return Err(SnapshotCodecError::Malformed("ending flag")),
    };
    let pending_len = payload.get_u32_le() as usize;
    if pending_len.checked_mul(4).is_none_or(|need| payload.remaining() < need) {
        return Err(SnapshotCodecError::Truncated("pending segments"));
    }
    let mut pending = Vec::with_capacity(pending_len);
    for _ in 0..pending_len {
        pending.push(payload.get_u32_le());
    }
    if payload.remaining() < 4 {
        return Err(SnapshotCodecError::Truncated("state length"));
    }
    let state_len = payload.get_u32_le() as usize;
    if payload.remaining() < state_len {
        return Err(SnapshotCodecError::Truncated("state blob"));
    }
    let blob = payload.copy_to_bytes(state_len);
    let state = state_from_bytes(blob)
        .map_err(|source| SnapshotCodecError::BadSession { index, source })?;
    Ok(SessionRecord { id, state, pending, ending, idle_micros })
}

/// Serialises a fleet image (the persistent artifact of a warm restart).
pub fn image_to_bytes(image: &FleetImage) -> Bytes {
    let mut payload = BytesMut::with_capacity(64 + image.sessions.len() * 256);
    payload.put_u32_le(image.num_shards);
    payload.put_u32_le(image.sessions.len() as u32);
    for rec in &image.sessions {
        encode_record(rec, &mut payload);
    }

    seal_envelope(MAGIC, VERSION, payload.freeze())
}

/// Restores a fleet image serialized by [`image_to_bytes`]. The whole
/// input must be one snapshot (trailing bytes are rejected); decoding
/// never panics, whatever the input.
pub fn image_from_bytes(bytes: Bytes) -> Result<FleetImage, SnapshotCodecError> {
    let mut payload = open_envelope(MAGIC, VERSION, bytes)?;
    if payload.remaining() < 8 {
        return Err(SnapshotCodecError::Truncated("session count"));
    }
    let num_shards = payload.get_u32_le();
    let count = payload.get_u32_le() as usize;
    // Bounding `count` by the smallest possible record caps the allocation
    // below at the actual input size. Checked math keeps the guard honest
    // on 32-bit targets too.
    if count.checked_mul(MIN_RECORD_LEN).is_none_or(|need| payload.remaining() < need) {
        return Err(SnapshotCodecError::Truncated("session records"));
    }
    let mut sessions = Vec::with_capacity(count);
    for index in 0..count {
        sessions.push(decode_record(&mut payload, index)?);
    }
    if payload.remaining() != 0 {
        return Err(SnapshotCodecError::Malformed("trailing payload bytes"));
    }
    Ok(FleetImage { num_shards, sessions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use causaltad::checksum64;

    fn record(id: TripId, idle_micros: u64) -> SessionRecord {
        SessionRecord {
            id,
            state: ScorerState::from_parts(
                vec![0.25, -1.5, 3.0],
                1.25,
                2.5,
                -0.75,
                Some(4),
                2,
                vec![causaltad::SegmentTrace { segment: 4, nll: 0.5, log_scale: 0.1 }],
            ),
            pending: vec![7, 9],
            ending: false,
            idle_micros,
        }
    }

    fn image(n: usize) -> FleetImage {
        FleetImage {
            num_shards: 3,
            sessions: (0..n).map(|i| record(i as TripId, (n - i) as u64 * 1000)).collect(),
        }
    }

    #[test]
    fn image_roundtrips_exactly() {
        for n in [0, 1, 5] {
            let img = image(n);
            let blob = image_to_bytes(&img);
            let restored = image_from_bytes(blob.clone()).expect("decode");
            assert_eq!(restored, img);
            // Canonical encoding: re-encoding is byte-for-byte identical.
            assert_eq!(image_to_bytes(&restored).to_vec(), blob.to_vec());
        }
    }

    #[test]
    fn merge_and_partition_are_inverse_up_to_order() {
        let a = FleetImage { num_shards: 2, sessions: vec![record(0, 10), record(2, 30)] };
        let b = FleetImage { num_shards: 3, sessions: vec![record(1, 20), record(5, 50)] };
        let merged = FleetImage::merge([a.clone(), b.clone()]);
        assert_eq!(merged.num_shards, 5);
        assert_eq!(merged.sessions.len(), 4);
        // Route even ids to part 0, odd to part 1: partitioning preserves
        // relative order within each part and loses no session.
        let parts = merged.clone().partition_by(2, |id| (id % 2) as usize);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].sessions, vec![record(0, 10), record(2, 30)]);
        assert_eq!(parts[1].sessions, vec![record(1, 20), record(5, 50)]);
        assert!(parts.iter().all(|p| p.num_shards == merged.num_shards));
        // Empty input merges to the inert image.
        let empty = FleetImage::merge([]);
        assert_eq!(empty.num_shards, 1);
        assert!(empty.sessions.is_empty());
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn partition_into_zero_parts_is_a_caller_bug() {
        let _ = image(1).partition_by(0, |_| 0);
    }

    #[test]
    fn image_decode_rejects_corruption_without_panicking() {
        let blob = image_to_bytes(&image(3)).to_vec();

        let mut raw = blob.clone();
        raw[0] ^= 0xFF;
        assert_eq!(image_from_bytes(Bytes::from(raw)), Err(SnapshotCodecError::BadMagic));

        let mut raw = blob.clone();
        raw[4] = 0x7F;
        assert!(matches!(
            image_from_bytes(Bytes::from(raw)),
            Err(SnapshotCodecError::BadVersion(_))
        ));

        for cut in 0..blob.len() {
            assert!(image_from_bytes(Bytes::from(blob[..cut].to_vec())).is_err(), "cut={cut}");
        }

        for byte in 6..blob.len() {
            let mut raw = blob.clone();
            raw[byte] ^= 1;
            assert!(image_from_bytes(Bytes::from(raw)).is_err(), "byte={byte}");
        }

        let mut raw = blob.clone();
        raw.push(0);
        assert_eq!(
            image_from_bytes(Bytes::from(raw)),
            Err(SnapshotCodecError::Malformed("trailing bytes after checksum"))
        );
    }

    #[test]
    fn huge_crafted_lengths_error_instead_of_panicking() {
        // A payload length near u64::MAX must not wrap the bounds guard.
        let mut raw = Vec::new();
        raw.extend_from_slice(MAGIC);
        raw.extend_from_slice(&VERSION.to_le_bytes());
        raw.extend_from_slice(&u64::MAX.to_le_bytes());
        raw.extend_from_slice(&[0u8; 16]);
        assert_eq!(
            image_from_bytes(Bytes::from(raw)),
            Err(SnapshotCodecError::Truncated("payload"))
        );
        // Same for an absurd session count inside a checksummed payload.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_le_bytes()); // num_shards
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // count
        let mut raw = Vec::new();
        raw.extend_from_slice(MAGIC);
        raw.extend_from_slice(&VERSION.to_le_bytes());
        raw.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        raw.extend_from_slice(&payload);
        raw.extend_from_slice(&checksum64(&payload).to_le_bytes());
        assert_eq!(
            image_from_bytes(Bytes::from(raw)),
            Err(SnapshotCodecError::Truncated("session records"))
        );
    }

    #[test]
    fn embedded_state_errors_carry_their_index() {
        let img = image(2);
        let blob = image_to_bytes(&img).to_vec();
        // Corrupt the second record's embedded state magic, then re-seal
        // the envelope checksum so only the nested decode fails.
        let needle = b"TADC";
        let positions: Vec<usize> =
            (0..blob.len() - 3).filter(|&i| &blob[i..i + 4] == needle).collect();
        assert_eq!(positions.len(), 2);
        let mut raw = blob;
        raw[positions[1]] ^= 0xFF;
        let payload_start = 14;
        let payload_end = raw.len() - 8;
        let fixed = checksum64(&raw[payload_start..payload_end]);
        raw.splice(payload_end.., fixed.to_le_bytes());
        match image_from_bytes(Bytes::from(raw)) {
            Err(SnapshotCodecError::BadSession { index: 1, source: StateCodecError::BadMagic }) => {
            }
            other => panic!("expected BadSession at index 1, got {other:?}"),
        }
    }
}
