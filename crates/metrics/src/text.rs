//! Plain-text exposition of a [`MetricsSnapshot`] in the familiar
//! `name{label} value` shape, for logs and human eyes.

use crate::registry::{MetricValue, MetricsSnapshot};

/// Renders a snapshot as exposition text: one `# TYPE` line per metric,
/// counters and gauges as single samples, histograms as
/// `quantile="0.5|0.99|0.999"` samples plus `_sum`/`_count`/`_min`/`_max`.
/// Dots in registry names become underscores so the output stays within
/// the conventional `[a-zA-Z0-9_]` metric-name alphabet.
pub fn render_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for entry in &snapshot.entries {
        let name: String =
            entry.name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
        match &entry.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                for (label, q) in [("0.5", 0.5), ("0.99", 0.99), ("0.999", 0.999)] {
                    out.push_str(&format!("{name}{{quantile=\"{label}\"}} {}\n", h.quantile(q)));
                }
                out.push_str(&format!("{name}_sum {}\n", h.sum));
                out.push_str(&format!("{name}_count {}\n", h.count));
                if !h.is_empty() {
                    out.push_str(&format!("{name}_min {}\n", h.min));
                    out.push_str(&format!("{name}_max {}\n", h.max));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn renders_all_kinds() {
        let reg = Registry::new();
        reg.counter("net.frames_in").add(42);
        reg.gauge("serve.queue_depth").add(3);
        let h = reg.histogram("serve.score_latency_ns");
        for v in 1..=100 {
            h.record(v);
        }
        let text = render_text(&reg.snapshot());
        assert!(text.contains("# TYPE net_frames_in counter\nnet_frames_in 42\n"));
        assert!(text.contains("# TYPE serve_queue_depth gauge\nserve_queue_depth 3\n"));
        assert!(text.contains("serve_score_latency_ns{quantile=\"0.99\"}"));
        assert!(text.contains("serve_score_latency_ns_count 100\n"));
        assert!(text.contains("serve_score_latency_ns_min 1\n"));
        assert!(text.contains("serve_score_latency_ns_max 100\n"));
    }
}
