//! Versioned binary codec for [`MetricsSnapshot`]: the `TADM` format.
//!
//! Like every binary format in the workspace, a metrics blob is one
//! [`causaltad::envelope`] (magic `TADM`, version, length-prefixed
//! payload, FNV-1a 64 checksum), so it inherits the envelope's totality
//! guarantees against truncated or bit-flipped input. The payload encodes
//! histograms sparsely — only non-zero buckets travel — and the decoder
//! enforces the canonical form (entries strictly ordered by
//! `(name, kind)`, bucket indices strictly increasing, counts non-zero),
//! which makes encoding a bijection on valid snapshots: re-encoding a
//! decoded blob reproduces it byte for byte.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use causaltad::envelope::{open_envelope, seal_envelope, EnvelopeError};

use crate::hist::BUCKETS;
use crate::registry::{MetricEntry, MetricValue, MetricsSnapshot};
use crate::HistogramSnapshot;

/// Envelope magic for metrics snapshots.
pub const METRICS_MAGIC: &[u8; 4] = b"TADM";

/// Current `TADM` format version.
pub const METRICS_VERSION: u16 = 1;

/// Failures decoding a `TADM` blob. Total: hostile bytes produce one of
/// these, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricsCodecError {
    /// The outer envelope was rejected (magic, version, checksum, ...).
    Envelope(EnvelopeError),
    /// The payload ended before the named field.
    Truncated(&'static str),
    /// A payload field held an invalid value.
    Malformed(&'static str),
}

impl std::fmt::Display for MetricsCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricsCodecError::Envelope(e) => write!(f, "metrics envelope: {e}"),
            MetricsCodecError::Truncated(what) => write!(f, "truncated metrics payload at {what}"),
            MetricsCodecError::Malformed(what) => write!(f, "malformed metrics payload: {what}"),
        }
    }
}

impl std::error::Error for MetricsCodecError {}

impl From<EnvelopeError> for MetricsCodecError {
    fn from(e: EnvelopeError) -> Self {
        MetricsCodecError::Envelope(e)
    }
}

const KIND_COUNTER: u8 = 0;
const KIND_GAUGE: u8 = 1;
const KIND_HISTOGRAM: u8 = 2;

/// Serializes a snapshot into one sealed `TADM` envelope.
pub fn snapshot_to_bytes(snapshot: &MetricsSnapshot) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(snapshot.entries.len() as u32);
    for entry in &snapshot.entries {
        buf.put_u16_le(entry.name.len() as u16);
        buf.put_slice(entry.name.as_bytes());
        match &entry.value {
            MetricValue::Counter(v) => {
                buf.put_u8(KIND_COUNTER);
                buf.put_u64_le(*v);
            }
            MetricValue::Gauge(v) => {
                buf.put_u8(KIND_GAUGE);
                // Two's-complement through u64: the vendored `bytes`
                // exposes unsigned putters only.
                buf.put_u64_le(*v as u64);
            }
            MetricValue::Histogram(h) => {
                buf.put_u8(KIND_HISTOGRAM);
                buf.put_u64_le(h.sum);
                buf.put_u64_le(h.min);
                buf.put_u64_le(h.max);
                let nonzero: u32 = h.counts.iter().filter(|&&c| c != 0).count() as u32;
                buf.put_u32_le(nonzero);
                for (i, &c) in h.counts.iter().enumerate() {
                    if c != 0 {
                        buf.put_u16_le(i as u16);
                        buf.put_u64_le(c);
                    }
                }
            }
        }
    }
    seal_envelope(METRICS_MAGIC, METRICS_VERSION, buf.freeze())
}

fn need(buf: &Bytes, n: usize, what: &'static str) -> Result<(), MetricsCodecError> {
    if buf.remaining() < n {
        Err(MetricsCodecError::Truncated(what))
    } else {
        Ok(())
    }
}

/// Decodes a sealed `TADM` envelope back into a snapshot.
///
/// # Errors
/// Any envelope failure, truncation, non-UTF-8 name, out-of-order entry
/// or bucket, zero sparse count, or out-of-range bucket index is reported
/// as a typed [`MetricsCodecError`].
pub fn snapshot_from_bytes(bytes: Bytes) -> Result<MetricsSnapshot, MetricsCodecError> {
    let mut payload = open_envelope(METRICS_MAGIC, METRICS_VERSION, bytes)?;
    need(&payload, 4, "entry count")?;
    let n_entries = payload.get_u32_le() as usize;
    let mut entries: Vec<MetricEntry> = Vec::new();
    let mut last_key: Option<(String, u8)> = None;
    for _ in 0..n_entries {
        need(&payload, 2, "name length")?;
        let name_len = payload.get_u16_le() as usize;
        need(&payload, name_len, "name bytes")?;
        let name = String::from_utf8(payload.copy_to_bytes(name_len).to_vec())
            .map_err(|_| MetricsCodecError::Malformed("metric name is not UTF-8"))?;
        need(&payload, 1, "kind tag")?;
        let kind = payload.get_u8();
        let value = match kind {
            KIND_COUNTER => {
                need(&payload, 8, "counter value")?;
                MetricValue::Counter(payload.get_u64_le())
            }
            KIND_GAUGE => {
                need(&payload, 8, "gauge value")?;
                MetricValue::Gauge(payload.get_u64_le() as i64)
            }
            KIND_HISTOGRAM => {
                need(&payload, 8 * 3 + 4, "histogram header")?;
                let sum = payload.get_u64_le();
                let min = payload.get_u64_le();
                let max = payload.get_u64_le();
                let nonzero = payload.get_u32_le() as usize;
                let mut counts = vec![0u64; BUCKETS];
                let mut count = 0u64;
                let mut last_idx: Option<usize> = None;
                for _ in 0..nonzero {
                    need(&payload, 2 + 8, "sparse bucket")?;
                    let idx = payload.get_u16_le() as usize;
                    let c = payload.get_u64_le();
                    if idx >= BUCKETS {
                        return Err(MetricsCodecError::Malformed("bucket index out of range"));
                    }
                    if last_idx.is_some_and(|last| idx <= last) {
                        return Err(MetricsCodecError::Malformed("bucket indices out of order"));
                    }
                    if c == 0 {
                        return Err(MetricsCodecError::Malformed("zero count in sparse bucket"));
                    }
                    last_idx = Some(idx);
                    counts[idx] = c;
                    count = count.wrapping_add(c);
                }
                if count == 0 && (min != u64::MAX || max != 0 || sum != 0) {
                    return Err(MetricsCodecError::Malformed("non-canonical empty histogram"));
                }
                MetricValue::Histogram(HistogramSnapshot { counts, count, sum, min, max })
            }
            _ => return Err(MetricsCodecError::Malformed("unknown metric kind")),
        };
        let key = (name.clone(), kind);
        if last_key.as_ref().is_some_and(|last| *last >= key) {
            return Err(MetricsCodecError::Malformed("entries out of (name, kind) order"));
        }
        last_key = Some(key);
        entries.push(MetricEntry { name, value });
    }
    if payload.remaining() != 0 {
        return Err(MetricsCodecError::Malformed("trailing payload bytes"));
    }
    Ok(MetricsSnapshot { entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_snapshot() -> MetricsSnapshot {
        let reg = Registry::new();
        reg.counter("net.backpressure_replies").add(7);
        reg.gauge("serve.queue_depth").add(-3);
        let h = reg.histogram("serve.score_latency_ns");
        h.record(1);
        h.record_n(1_000, 40);
        h.record(123_456_789);
        reg.histogram("router.forward_ns"); // empty histogram travels too
        reg.snapshot()
    }

    #[test]
    fn roundtrip_is_identity_and_canonical() {
        let snap = sample_snapshot();
        let bytes = snapshot_to_bytes(&snap);
        let back = snapshot_from_bytes(bytes.clone()).expect("valid blob decodes");
        assert_eq!(back, snap);
        // Canonical: re-encoding the decode reproduces the bytes.
        assert_eq!(snapshot_to_bytes(&back), bytes);
        // Empty snapshot is valid too.
        let empty = MetricsSnapshot::default();
        assert_eq!(snapshot_from_bytes(snapshot_to_bytes(&empty)).unwrap(), empty);
    }

    #[test]
    fn every_truncation_is_an_error() {
        let bytes = snapshot_to_bytes(&sample_snapshot()).to_vec();
        for cut in 0..bytes.len() {
            assert!(
                snapshot_from_bytes(Bytes::from(bytes[..cut].to_vec())).is_err(),
                "cut={cut} decoded"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_rejected_or_reencodes_differently() {
        // A flipped bit either fails the decode outright (checksum catches
        // almost everything) or — never — silently yields the original.
        let original = sample_snapshot();
        let bytes = snapshot_to_bytes(&original).to_vec();
        for byte in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 0x10;
            if let Ok(decoded) = snapshot_from_bytes(Bytes::from(corrupt)) {
                assert_ne!(decoded, original, "flip at byte {byte} went unnoticed");
            }
        }
    }

    #[test]
    fn non_canonical_payloads_are_rejected() {
        // Hand-build a payload with out-of-order entries.
        let mut buf = BytesMut::new();
        buf.put_u32_le(2);
        for name in ["b", "a"] {
            buf.put_u16_le(1);
            buf.put_slice(name.as_bytes());
            buf.put_u8(KIND_COUNTER);
            buf.put_u64_le(1);
        }
        let sealed = seal_envelope(METRICS_MAGIC, METRICS_VERSION, buf.freeze());
        assert_eq!(
            snapshot_from_bytes(sealed),
            Err(MetricsCodecError::Malformed("entries out of (name, kind) order"))
        );
        // And one with an out-of-range bucket.
        let mut buf = BytesMut::new();
        buf.put_u32_le(1);
        buf.put_u16_le(1);
        buf.put_slice(b"h");
        buf.put_u8(KIND_HISTOGRAM);
        buf.put_u64_le(5); // sum
        buf.put_u64_le(5); // min
        buf.put_u64_le(5); // max
        buf.put_u32_le(1);
        buf.put_u16_le(BUCKETS as u16); // first invalid index
        buf.put_u64_le(1);
        let sealed = seal_envelope(METRICS_MAGIC, METRICS_VERSION, buf.freeze());
        assert_eq!(
            snapshot_from_bytes(sealed),
            Err(MetricsCodecError::Malformed("bucket index out of range"))
        );
    }
}
