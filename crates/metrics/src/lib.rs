//! `tad-metrics`: observability primitives for the CausalTAD serving
//! tiers.
//!
//! The crate supplies three layers, all dependency-free beyond the
//! workspace envelope:
//!
//! * [`Histogram`] — a lock-free log-linear (HDR-style) latency
//!   histogram. Hot paths call [`Histogram::record`] with a nanosecond
//!   value; it costs a few relaxed `fetch_add`s, so shard scoring loops,
//!   socket readers, and router forwarders can all record per-event
//!   without contending.
//! * [`Registry`] — named counters, gauges, and histograms. Handles are
//!   `Arc`s cached at construction time; the registry lock is never on a
//!   per-event path. [`Registry::snapshot`] produces a
//!   [`MetricsSnapshot`] whose [`MetricsSnapshot::merged`] is exactly
//!   associative — the router merges backend snapshots over the wire
//!   into the same bits an in-process aggregation yields.
//! * The `TADM` codec ([`snapshot_to_bytes`] / [`snapshot_from_bytes`])
//!   — a versioned, checksummed binary format riding the workspace
//!   envelope, plus [`render_text`] for human-readable exposition.
//!
//! `tad-serve`, `tad-net`, and `tad-router` each register their tier's
//! metrics under a `serve.` / `net.` / `router.` name prefix; the TADN
//! protocol's `MetricsRequest` frame pulls one merged fleet view through
//! a router.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod codec;
mod hist;
mod registry;
mod text;

pub use codec::{
    snapshot_from_bytes, snapshot_to_bytes, MetricsCodecError, METRICS_MAGIC, METRICS_VERSION,
};
pub use hist::{
    bucket_ceil, bucket_floor, bucket_index, DeferredHistogram, Histogram, HistogramSnapshot,
    BUCKETS, SUB_BITS, SUB_COUNT,
};
pub use registry::{Counter, Gauge, MetricEntry, MetricValue, MetricsSnapshot, Registry};
pub use text::render_text;
