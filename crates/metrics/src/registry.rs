//! The metric registry: named counters, gauges, and histograms with
//! point-in-time snapshots that merge across processes.
//!
//! Registration hands back an `Arc` handle; hot paths cache the handle at
//! construction time and record through it with relaxed atomics, so the
//! registry lock is only ever taken at registration and snapshot time —
//! never on a per-event path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramSnapshot};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge tracking a level (queue depth, live connections, ...).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Adds `n` (negative to decrease).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of live metrics shared across a process tier.
///
/// One registry is typically shared by everything in a process (the serve
/// engine and the net front-end register into the same one), so a single
/// [`Registry::snapshot`] answers a `MetricsRequest` for the whole
/// process. Names are free-form but the workspace convention is
/// dot-separated tiers: `serve.score_latency_ns`, `net.frame_decode_ns`,
/// `router.forward_ns`.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Panics if `name` is already registered as a different kind —
    /// a programmer error, not an input error.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        let metric = inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())));
        match metric {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered as a non-counter"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use. Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        let metric = inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())));
        match metric {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered as a non-gauge"),
        }
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use. Panics if `name` is already registered as a different
    /// kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        let metric = inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())));
        match metric {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered as a non-histogram"),
        }
    }

    /// A point-in-time copy of every registered metric, with entries in
    /// name order (deterministic across identical registries).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let entries = inner
            .iter()
            .map(|(name, metric)| MetricEntry {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

/// One recorded value inside a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonic counter's value.
    Counter(u64),
    /// A signed gauge's value.
    Gauge(i64),
    /// A full histogram snapshot.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// Stable kind tag used for merge keying and the wire codec.
    pub(crate) fn kind(&self) -> u8 {
        match self {
            MetricValue::Counter(_) => 0,
            MetricValue::Gauge(_) => 1,
            MetricValue::Histogram(_) => 2,
        }
    }
}

/// A named metric value inside a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricEntry {
    /// Registry name (dot-separated by convention).
    pub name: String,
    /// The recorded value.
    pub value: MetricValue,
}

/// A point-in-time copy of a whole [`Registry`], ordered by
/// `(name, kind)` — the unit that travels in a TADN `Metrics` frame and
/// merges across backends.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Entries sorted by `(name, kind)`.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// Merges per-process snapshots into one fleet view, the same
    /// discipline as `FleetSnapshot::merged`: entries are unioned by
    /// `(name, kind)`; counters and gauges add, histograms merge
    /// bucket-wise. All of it is `u64`/`i64` (wrapping) addition, so the
    /// merge is exactly associative and commutative — wire-merged fleet
    /// histograms come out bit-identical to an in-process aggregation.
    /// Merging an empty slice yields the empty snapshot.
    pub fn merged(parts: &[MetricsSnapshot]) -> MetricsSnapshot {
        let mut map: BTreeMap<(String, u8), MetricValue> = BTreeMap::new();
        for part in parts {
            for entry in &part.entries {
                let key = (entry.name.clone(), entry.value.kind());
                match map.entry(key) {
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        slot.insert(entry.value.clone());
                    }
                    std::collections::btree_map::Entry::Occupied(mut slot) => {
                        match (slot.get_mut(), &entry.value) {
                            (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                                *a = a.wrapping_add(*b);
                            }
                            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => {
                                *a = a.wrapping_add(*b);
                            }
                            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                                a.merge(b);
                            }
                            // Keyed by kind, so mismatches cannot occur.
                            _ => unreachable!("merge key includes the metric kind"),
                        }
                    }
                }
            }
        }
        MetricsSnapshot {
            entries: map
                .into_iter()
                .map(|((name, _), value)| MetricEntry { name, value })
                .collect(),
        }
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.entries.iter().find_map(|e| match &e.value {
            MetricValue::Histogram(h) if e.name == name => Some(h),
            _ => None,
        })
    }

    /// Looks up a counter's value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|e| match &e.value {
            MetricValue::Counter(v) if e.name == name => Some(*v),
            _ => None,
        })
    }

    /// Looks up a gauge's value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.entries.iter().find_map(|e| match &e.value {
            MetricValue::Gauge(v) if e.name == name => Some(*v),
            _ => None,
        })
    }

    /// The subset of entries whose names start with `prefix` — e.g.
    /// `with_prefix("serve.")` isolates one tier out of a fleet-merged
    /// snapshot.
    pub fn with_prefix(&self, prefix: &str) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self.entries.iter().filter(|e| e.name.starts_with(prefix)).cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_returns_shared_handles() {
        let reg = Registry::new();
        let c1 = reg.counter("net.backpressure_replies");
        let c2 = reg.counter("net.backpressure_replies");
        c1.inc();
        c2.add(2);
        assert_eq!(c1.get(), 3);
        let g = reg.gauge("serve.queue_depth");
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        let h = reg.histogram("serve.score_latency_ns");
        h.record(1234);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("net.backpressure_replies"), Some(3));
        assert_eq!(snap.gauge("serve.queue_depth"), Some(3));
        assert_eq!(snap.histogram("serve.score_latency_ns").unwrap().count, 1);
        // Name order is deterministic.
        let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_panic() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn merged_unions_by_name_and_adds() {
        let ra = Registry::new();
        ra.counter("shared").add(10);
        ra.histogram("lat").record(100);
        ra.gauge("depth").add(4);
        let rb = Registry::new();
        rb.counter("shared").add(5);
        rb.counter("only_b").inc();
        rb.histogram("lat").record(200);
        let merged = MetricsSnapshot::merged(&[ra.snapshot(), rb.snapshot()]);
        assert_eq!(merged.counter("shared"), Some(15));
        assert_eq!(merged.counter("only_b"), Some(1));
        assert_eq!(merged.gauge("depth"), Some(4));
        let lat = merged.histogram("lat").unwrap();
        assert_eq!(lat.count, 2);
        assert_eq!(lat.min, 100);
        assert_eq!(lat.max, 200);
        // Same discipline as FleetSnapshot::merged: empty in, empty out.
        assert_eq!(MetricsSnapshot::merged(&[]), MetricsSnapshot::default());
    }

    #[test]
    fn with_prefix_filters() {
        let reg = Registry::new();
        reg.counter("serve.a").inc();
        reg.counter("net.b").inc();
        let snap = reg.snapshot();
        let serve = snap.with_prefix("serve.");
        assert_eq!(serve.entries.len(), 1);
        assert_eq!(serve.entries[0].name, "serve.a");
    }
}
