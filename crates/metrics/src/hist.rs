//! Lock-free log-linear histograms for hot-path latency recording.
//!
//! The bucket layout is the classic HDR shape: one linear run for small
//! values, then one 32-bucket sub-linear run per power-of-two octave, so
//! any `u64` maps to one of [`BUCKETS`] buckets with at most ~3.2%
//! relative error while [`Histogram::record`] stays a handful of relaxed
//! `fetch_add`s — cheap enough for a shard worker's scoring loop.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets.
pub const SUB_BITS: u32 = 5;

/// Sub-buckets per octave (`2^`[`SUB_BITS`]).
pub const SUB_COUNT: usize = 1 << SUB_BITS;

/// Total buckets in a histogram. Values `0..32` get exact buckets (the
/// "octave 0" linear run); each of the remaining 59 octaves up to
/// `u64::MAX` gets [`SUB_COUNT`] sub-buckets, for `60 * 32` in all.
pub const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_COUNT;

/// Maps a value to its bucket. Total over all of `u64`: values below
/// [`SUB_COUNT`] map exactly, everything else lands in the sub-bucket
/// whose width is `2^(octave-1) / SUB_COUNT` of its octave.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = (msb - SUB_BITS + 1) as usize;
    let sub = ((v >> (msb - SUB_BITS)) as usize) & (SUB_COUNT - 1);
    octave * SUB_COUNT + sub
}

/// Smallest value that lands in bucket `i` (the bucket's inclusive lower
/// bound). Inverse of [`bucket_index`] up to bucket resolution.
///
/// # Panics
/// Panics if `i >= BUCKETS`.
#[inline]
pub fn bucket_floor(i: usize) -> u64 {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    if i < SUB_COUNT {
        return i as u64;
    }
    let octave = (i / SUB_COUNT) as u32;
    let sub = (i % SUB_COUNT) as u64;
    (SUB_COUNT as u64 + sub) << (octave - 1)
}

/// Largest value that lands in bucket `i` (the bucket's inclusive upper
/// bound); `u64::MAX` for the final bucket.
///
/// # Panics
/// Panics if `i >= BUCKETS`.
#[inline]
pub fn bucket_ceil(i: usize) -> u64 {
    if i + 1 == BUCKETS {
        u64::MAX
    } else {
        bucket_floor(i + 1) - 1
    }
}

/// A lock-free log-linear histogram.
///
/// Recording is wait-free: a relaxed `fetch_add` on the value's bucket
/// plus relaxed updates of the running sum and min/max. Concurrent
/// recorders never block each other or readers; [`Histogram::snapshot`]
/// can run at any time and sees some valid interleaving of the updates
/// (bucket counts are exact — only `sum`/`min`/`max` may trail the
/// buckets by in-flight recordings).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation of `v`. Wait-free; safe to call from any
    /// number of threads concurrently.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` observations of the same value `v` in one shot — what
    /// a shard worker uses to attribute a micro-batch wave's latency to
    /// every segment it scored without `n` separate updates.
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.wrapping_mul(n), Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Wraps this histogram in a [`DeferredHistogram`] staging cell.
    pub fn deferred(self: &std::sync::Arc<Self>) -> DeferredHistogram {
        DeferredHistogram { hist: std::sync::Arc::clone(self), staged: None }
    }

    /// A point-in-time copy of the bucket counts. The snapshot's total
    /// count is derived from the buckets themselves, so it is always
    /// exactly the sum of its counts — the invariant the merge and codec
    /// layers build on.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = counts.iter().fold(0u64, |acc, &c| acc.wrapping_add(c));
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state: dense bucket counts plus
/// the running sum and observed min/max.
///
/// Merging snapshots is element-wise `u64` addition, which is exactly
/// associative and commutative — the property that lets the router merge
/// backend histograms over the wire into the same bits an in-process
/// aggregation would produce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; always [`BUCKETS`] long.
    pub counts: Vec<u64>,
    /// Total observations (always the sum of `counts`).
    pub count: u64,
    /// Sum of all recorded values (wrapping).
    pub sum: u64,
    /// Smallest recorded value; `u64::MAX` when empty.
    pub min: u64,
    /// Largest recorded value; `0` when empty.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// The snapshot of a histogram that has recorded nothing — the
    /// identity element of [`HistogramSnapshot::merge`].
    pub fn empty() -> Self {
        HistogramSnapshot { counts: vec![0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// True when no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds `other` into `self`: bucket-wise (wrapping) addition, summed
    /// totals, widened min/max. Exactly associative and commutative.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.wrapping_add(*b);
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Merges any number of snapshots into one. Merging an empty slice
    /// yields [`HistogramSnapshot::empty`].
    pub fn merged(parts: &[HistogramSnapshot]) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::empty();
        for p in parts {
            out.merge(p);
        }
        out
    }

    /// Value at quantile `q` in `[0, 1]`, reported as the upper bound of
    /// the bucket holding that rank (clamped to the observed max), so the
    /// answer reads as "q of observations were ≤ this" with at most the
    /// bucket's ~3.2% relative error. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum = cum.saturating_add(c);
            if cum >= rank {
                return bucket_ceil(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (`quantile(0.50)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile (`quantile(0.99)`).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile (`quantile(0.999)`).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Arithmetic mean of recorded values; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A single-owner staging cell in front of a shared [`Histogram`], for
/// recorders that measure work which *ends* by publishing a snapshot of
/// the registry the histogram lives in.
///
/// The problem it encodes: an event-loop tick that answers a metrics
/// request cannot record its own duration inline — the sample would land
/// *after* the snapshot it just served but *before* any later observer
/// reads the registry, making the served snapshot unequal to the registry
/// at an otherwise quiesced moment. Staging breaks the race by
/// construction: [`DeferredHistogram::stage`] buffers the sample locally
/// (no shared-state effect), and the *next* [`DeferredHistogram::stage`]
/// or an explicit [`DeferredHistogram::commit`] publishes the previous
/// one — strictly before whatever that next unit of work observes. A
/// quiesced registry therefore never changes between two reads, however
/// the last unit of work was measured.
#[derive(Debug)]
pub struct DeferredHistogram {
    hist: std::sync::Arc<Histogram>,
    staged: Option<u64>,
}

impl DeferredHistogram {
    /// Publishes the previously staged sample (if any), then stages `v`
    /// to be published by the next call.
    pub fn stage(&mut self, v: u64) {
        self.commit();
        self.staged = Some(v);
    }

    /// Publishes the staged sample now, leaving nothing staged. Call at
    /// the *start* of a unit of work; samples staged by the final unit
    /// before a quiet period intentionally stay unpublished.
    pub fn commit(&mut self) {
        if let Some(v) = self.staged.take() {
            self.hist.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_total_and_monotone() {
        // Exact linear run.
        for v in 0..SUB_COUNT as u64 {
            assert_eq!(bucket_index(v), v as usize);
        }
        // Octave boundaries are continuous: floor(i) maps back to i and
        // ceil(i) stays in i.
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_floor(i)), i, "floor of bucket {i}");
            assert_eq!(bucket_index(bucket_ceil(i)), i, "ceil of bucket {i}");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Monotone along a sweep of magnitudes.
        let mut last = 0usize;
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let i = bucket_index(v);
            assert!(i >= last, "bucket_index regressed at {v}");
            last = i;
            v = v.saturating_mul(3) / 2 + 1;
        }
    }

    #[test]
    fn deferred_samples_publish_one_unit_of_work_late() {
        let h = std::sync::Arc::new(Histogram::new());
        let mut d = h.deferred();
        d.stage(10);
        // The work that staged 10 may have published a snapshot; 10 must
        // not be visible yet.
        assert_eq!(h.snapshot().count, 0);
        d.stage(20); // next unit of work publishes the previous sample
        assert_eq!(h.snapshot().count, 1);
        d.commit();
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 30);
        // Commit with nothing staged is a no-op, and the registry stays
        // frozen across repeated reads of a quiet period.
        d.commit();
        assert_eq!(h.snapshot().count, 2);
    }

    #[test]
    fn relative_error_is_bounded() {
        // The bucket upper bound overestimates any member by at most one
        // sub-bucket width, i.e. < 1/SUB_COUNT relative error ≈ 3.2%.
        let mut v = SUB_COUNT as u64;
        for _ in 0..100_000 {
            let i = bucket_index(v);
            let err = (bucket_ceil(i) - v) as f64 / v as f64;
            assert!(err <= 1.0 / SUB_COUNT as f64 + 1e-12, "err {err} at {v}");
            v = v.wrapping_mul(7).wrapping_add(13) % (u64::MAX / 2) + SUB_COUNT as u64;
        }
    }

    #[test]
    fn record_and_quantiles() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 500_500);
        // Quantiles land within one bucket (~3.2%) of the exact answer.
        for (q, exact) in [(0.5, 500u64), (0.99, 990), (0.999, 999)] {
            let got = s.quantile(q);
            assert!(got >= exact, "q{q}: {got} < {exact}");
            assert!(got as f64 <= exact as f64 * 1.04 + 1.0, "q{q}: {got} too high");
        }
        // Degenerate quantile calls stay total.
        assert_eq!(HistogramSnapshot::empty().quantile(0.99), 0);
        assert_eq!(s.quantile(0.0), 1); // clamps to rank 1 = the minimum
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn record_n_matches_loop() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_n(77, 5);
        a.record_n(3, 2);
        a.record_n(9999, 0); // no-op
        for _ in 0..5 {
            b.record(77);
        }
        for _ in 0..2 {
            b.record(3);
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn merge_is_exact() {
        let a = Histogram::new();
        let b = Histogram::new();
        let whole = Histogram::new();
        for v in [1u64, 40, 40, 1_000_000, 17] {
            a.record(v);
            whole.record(v);
        }
        for v in [2u64, 40, 5_000_000_000] {
            b.record(v);
            whole.record(v);
        }
        let merged = HistogramSnapshot::merged(&[a.snapshot(), b.snapshot()]);
        assert_eq!(merged, whole.snapshot());
        // Identity element.
        let with_empty = HistogramSnapshot::merged(&[merged.clone(), HistogramSnapshot::empty()]);
        assert_eq!(with_empty, merged);
    }

    #[test]
    fn concurrent_recorders_are_exactly_counted() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads = 4;
        let per = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per {
                        h.record(i * 37 + t);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, threads * per);
        assert_eq!(s.counts.iter().sum::<u64>(), threads * per);
    }
}
