//! Fast, branch-free transcendental approximations for the GRU gate hot
//! loops.
//!
//! `libm` calls dominate the per-cell cost of batched GRU stepping (two
//! sigmoids and a tanh per hidden unit). These polynomial versions inline
//! into the gate loops, cost ~20 flops each, and auto-vectorise. Maximum
//! relative error is ~1e-7 (verified by tests against `std`), far inside
//! the 1e-5 tolerance the tape-vs-inference consistency tests demand.
//! Both the tape-free inference paths and the fused training-time GRU op
//! ([`crate::Tape::gru_step`]) use them — with identical loop structure,
//! so taped hidden states match inference bit for bit. The remaining
//! elementwise tape ops (`sigmoid`/`tanh`/`exp`) keep `std`
//! transcendentals.
// The polynomial constants are the exact Cephes coefficients; extra digits
// document provenance even where f32 rounds them.
#![allow(clippy::excessive_precision)]

/// `e^x` with ~1e-7 relative error, clamped to the finite `f32` range.
///
/// Cephes-style: split `x = n·ln2 + r` with `n` rounded to nearest, apply a
/// degree-5 minimax polynomial for `e^r` on `[-ln2/2, ln2/2]`, scale by
/// `2^n` through exponent bits.
#[inline]
pub fn fast_exp(x: f32) -> f32 {
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    // 1.5 * 2^23: adding then subtracting rounds to the nearest integer.
    const ROUND_MAGIC: f32 = 12_582_912.0;
    let x = x.clamp(-87.0, 87.0);
    let n = (x * LOG2E + ROUND_MAGIC) - ROUND_MAGIC;
    let r = (x - n * LN2_HI) - n * LN2_LO;
    let p = 1.987_569_15e-4f32;
    let p = p * r + 1.398_199_95e-3;
    let p = p * r + 8.333_451_9e-3;
    let p = p * r + 4.166_579_6e-2;
    let p = p * r + 1.666_666_55e-1;
    let p = p * r + 5.000_000_1e-1;
    let p = p * (r * r) + r + 1.0;
    let scale = f32::from_bits(((n as i32 + 127) << 23) as u32);
    p * scale
}

/// Logistic function via [`fast_exp`]; absolute error < 1e-6.
#[inline]
pub fn fast_sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + fast_exp(-x))
}

/// `tanh` via [`fast_exp`]; absolute error < 1e-6.
#[inline]
pub fn fast_tanh(x: f32) -> f32 {
    // tanh(x) = (e^{2x} - 1) / (e^{2x} + 1)
    let e = fast_exp(2.0 * x);
    (e - 1.0) / (e + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(lo: f32, hi: f32, n: usize) -> impl Iterator<Item = f32> {
        (0..=n).map(move |i| lo + (hi - lo) * i as f32 / n as f32)
    }

    #[test]
    fn fast_exp_tracks_std_exp() {
        for x in sweep(-80.0, 80.0, 200_000) {
            let got = fast_exp(x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            assert!(rel < 3e-7, "exp({x}): {got} vs {want} (rel {rel:e})");
        }
    }

    #[test]
    fn fast_sigmoid_absolute_error_bounded() {
        for x in sweep(-30.0, 30.0, 200_000) {
            let got = fast_sigmoid(x);
            let want = 1.0 / (1.0 + (-x).exp());
            assert!((got - want).abs() < 1e-6, "sigmoid({x}): {got} vs {want}");
        }
    }

    #[test]
    fn fast_tanh_absolute_error_bounded_and_saturates() {
        for x in sweep(-20.0, 20.0, 200_000) {
            let got = fast_tanh(x);
            let want = x.tanh();
            assert!((got - want).abs() < 1e-6, "tanh({x}): {got} vs {want}");
            assert!(got.abs() <= 1.0, "tanh({x}) = {got} out of range");
        }
        assert_eq!(fast_tanh(100.0), 1.0);
        assert_eq!(fast_tanh(-100.0), -1.0);
    }

    #[test]
    fn extremes_stay_finite() {
        assert!(fast_exp(1000.0).is_finite());
        assert_eq!(fast_exp(-1000.0), fast_exp(-87.0));
        assert!(fast_sigmoid(f32::MAX).is_finite());
    }
}
