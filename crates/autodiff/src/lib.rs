//! # tad-autodiff
//!
//! A from-scratch tensor and reverse-mode automatic-differentiation engine,
//! built as the deep-learning substrate for the CausalTAD reproduction
//! (ICDE 2024). The paper trains several variational autoencoders with GRU
//! decoders using Adam; no mature pure-Rust DL stack was available offline,
//! so this crate implements exactly the pieces those models need:
//!
//! * [`Tensor`] — dense row-major `f32` matrices with cache-friendly matmul
//!   kernels (including the `A·Bᵀ` form used to project onto gathered
//!   embedding rows).
//! * [`Tape`] — an eager reverse-mode tape: ops execute immediately, values
//!   are always readable, and [`Tape::backward`] accumulates gradients into
//!   a shared [`ParamStore`].
//! * [`nn`] — layers ([`nn::Linear`], [`nn::Embedding`], [`nn::GruCell`],
//!   [`nn::Mlp`], [`nn::GaussianHead`]) that own only parameter handles.
//! * [`optim`] — [`optim::Adam`] (the paper's optimiser) and [`optim::Sgd`].
//!
//! Correctness of every differentiable op is enforced by finite-difference
//! gradient checks in `tests/gradcheck.rs` (property-based via `proptest`).
//!
//! ## Example
//!
//! ```
//! use tad_autodiff::{ParamStore, Tape, Tensor};
//! use tad_autodiff::nn::{Activation, Mlp};
//! use tad_autodiff::optim::Adam;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let mlp = Mlp::new(&mut store, "net", &[2, 8, 2], Activation::Tanh, &mut rng);
//! let mut adam = Adam::new(&store, 1e-2);
//!
//! // One supervised step: classify the point (1, -1) as class 0.
//! let mut tape = Tape::new();
//! let x = tape.input(Tensor::row_vector(&[1.0, -1.0]));
//! let logits = mlp.forward(&mut tape, &store, x);
//! let loss = tape.softmax_cross_entropy(logits, &[0]);
//! tape.backward(loss, &mut store);
//! adam.step(&mut store);
//! ```

pub mod math;
pub mod nn;
pub mod optim;
mod params;
mod pool;
mod tape;
mod tensor;

pub use math::{fast_exp, fast_sigmoid, fast_tanh};
pub use params::{CodecError, ParamId, ParamStore};
pub use pool::TensorPool;
pub use tape::{logsumexp, Tape, Var};
pub use tensor::Tensor;
