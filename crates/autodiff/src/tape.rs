//! Reverse-mode automatic differentiation tape.
//!
//! Operations execute eagerly as they are recorded, so every node's value is
//! available immediately (`Tape::value`). Calling [`Tape::backward`] walks
//! the tape once in reverse and accumulates parameter gradients into the
//! [`ParamStore`].
//!
//! The op set is exactly what the paper's models need: dense matmuls (plus
//! the `A·Bᵀ` variant used for projecting onto gathered embedding rows),
//! elementwise nonlinearities, row-broadcast addition for biases, column
//! slicing/concatenation for packed GRU gates, fused softmax cross-entropy,
//! and a row-wise log-sum-exp for mixture priors.

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a node on the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(u32);

impl Var {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// The recorded operation of one tape node.
#[derive(Debug)]
enum Op {
    /// Constant input; receives no gradient.
    Input,
    /// Leaf referencing a full parameter tensor.
    Param(ParamId),
    /// Leaf referencing a subset of a parameter's rows (embedding lookup).
    GatherRows {
        param: ParamId,
        ids: Vec<u32>,
    },
    /// Leaf referencing a subset of a parameter's columns (bias subset for
    /// class-restricted projections).
    GatherCols {
        param: ParamId,
        ids: Vec<u32>,
    },
    /// `C = A · B`.
    MatMul(Var, Var),
    /// `C = A · Bᵀ`.
    MatMulT(Var, Var),
    /// Elementwise `a + b`; if `b` has one row it broadcasts across `a`'s rows.
    Add(Var, Var),
    /// Elementwise `a - b` (exact shapes).
    Sub(Var, Var),
    /// Elementwise `a * b` (exact shapes).
    Mul(Var, Var),
    /// `a + c` elementwise with a scalar constant (the constant has zero
    /// gradient, so it is not stored).
    AddScalar(Var),
    /// `c * a` elementwise with a scalar constant.
    Scale(Var, f32),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    Exp(Var),
    /// Natural log; inputs must be strictly positive.
    Ln(Var),
    /// Horizontal concatenation `[a | b]` (same number of rows).
    ConcatCols(Var, Var),
    /// Columns `[start, start+len)` of `a`.
    SliceCols {
        src: Var,
        start: usize,
        len: usize,
    },
    /// Sum of all elements, producing a `1 x 1` scalar.
    SumAll(Var),
    /// Mean of all elements, producing a `1 x 1` scalar.
    MeanAll(Var),
    /// Fused softmax + cross-entropy, summed over rows, producing `1 x 1`.
    /// `aux` caches the softmax probabilities for the backward pass.
    SoftmaxCrossEntropy {
        logits: Var,
        targets: Vec<u32>,
    },
    /// Row-wise `log(sum(exp(x)))`, producing `rows x 1`.
    LogSumExpRows(Var),
    /// Row-major reinterpretation to a new shape with the same element
    /// count.
    Reshape(Var),
}

/// An eager reverse-mode autodiff tape.
pub struct Tape {
    ops: Vec<Op>,
    values: Vec<Tensor>,
    /// Cached softmax probabilities for `SoftmaxCrossEntropy` nodes.
    aux: Vec<Option<Tensor>>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape {
            ops: Vec::with_capacity(256),
            values: Vec::with_capacity(256),
            aux: Vec::with_capacity(256),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Clears all recorded nodes so the tape can be reused without
    /// reallocating its buffers.
    pub fn reset(&mut self) {
        self.ops.clear();
        self.values.clear();
        self.aux.clear();
    }

    /// The value computed at `v`.
    #[inline]
    pub fn value(&self, v: Var) -> &Tensor {
        &self.values[v.index()]
    }

    fn push(&mut self, op: Op, value: Tensor) -> Var {
        self.push_with_aux(op, value, None)
    }

    fn push_with_aux(&mut self, op: Op, value: Tensor, aux: Option<Tensor>) -> Var {
        let id = Var(self.ops.len() as u32);
        self.ops.push(op);
        self.values.push(value);
        self.aux.push(aux);
        id
    }

    // ----- leaves ---------------------------------------------------------

    /// Records a constant input (no gradient flows into it).
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(Op::Input, value)
    }

    /// Records a `1 x 1` scalar constant.
    pub fn scalar(&mut self, x: f32) -> Var {
        self.input(Tensor::from_vec(1, 1, vec![x]))
    }

    /// Records a parameter leaf; the current value is copied onto the tape.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.push(Op::Param(id), store.value(id).clone())
    }

    /// Records an embedding lookup: rows `ids` of parameter `id`.
    /// Gradients are scatter-added back into exactly those rows.
    pub fn gather_rows(&mut self, store: &ParamStore, id: ParamId, ids: &[u32]) -> Var {
        let value = store.value(id).gather_rows(ids);
        self.push(Op::GatherRows { param: id, ids: ids.to_vec() }, value)
    }

    /// Records a column-subset lookup of parameter `id`: output has the same
    /// number of rows and one column per entry of `ids`. Gradients are
    /// scatter-added back into exactly those columns.
    pub fn gather_cols(&mut self, store: &ParamStore, id: ParamId, ids: &[u32]) -> Var {
        let src = store.value(id);
        let rows = src.rows();
        let mut out = Tensor::zeros(rows, ids.len());
        for (i, &c) in ids.iter().enumerate() {
            let c = c as usize;
            assert!(c < src.cols(), "gather_cols: column {c} out of {}", src.cols());
            for r in 0..rows {
                out.set(r, i, src.get(r, c));
            }
        }
        self.push(Op::GatherCols { param: id, ids: ids.to_vec() }, out)
    }

    // ----- linear algebra -------------------------------------------------

    /// `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), value)
    }

    /// `a · bᵀ`.
    pub fn matmul_t(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul_t(self.value(b));
        self.push(Op::MatMulT(a, b), value)
    }

    /// Elementwise addition. When `b` is a single row and `a` has several,
    /// `b` is broadcast across `a`'s rows (bias addition).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (ar, ac) = self.value(a).shape();
        let (br, bc) = self.value(b).shape();
        assert_eq!(ac, bc, "add: column mismatch {ac} vs {bc}");
        assert!(br == ar || br == 1, "add: row mismatch {ar} vs {br}");
        let mut out = self.value(a).clone();
        if br == ar {
            out.add_assign(self.value(b));
        } else {
            let b_val = self.value(b).clone();
            for r in 0..ar {
                for (o, &x) in out.row_mut(r).iter_mut().zip(b_val.row(0)) {
                    *o += x;
                }
            }
        }
        self.push(Op::Add(a, b), out)
    }

    /// Elementwise subtraction (shapes must match exactly).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.value(a).shape(), self.value(b).shape(), "sub: shape mismatch");
        let mut out = self.value(a).clone();
        out.add_scaled(self.value(b), -1.0);
        self.push(Op::Sub(a, b), out)
    }

    /// Elementwise product (shapes must match exactly).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.value(a).shape(), self.value(b).shape(), "mul: shape mismatch");
        let b_ref = self.value(b);
        let out = Tensor::from_vec(
            b_ref.rows(),
            b_ref.cols(),
            self.value(a).data().iter().zip(b_ref.data()).map(|(&x, &y)| x * y).collect(),
        );
        self.push(Op::Mul(a, b), out)
    }

    /// `a + c` with a scalar constant.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let out = self.value(a).map(|x| x + c);
        self.push(Op::AddScalar(a), out)
    }

    /// `c * a` with a scalar constant.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let out = self.value(a).map(|x| c * x);
        self.push(Op::Scale(a, c), out)
    }

    // ----- nonlinearities ---------------------------------------------------

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let out = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a), out)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let out = self.value(a).map(f32::tanh);
        self.push(Op::Tanh(a), out)
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let out = self.value(a).map(|x| x.max(0.0));
        self.push(Op::Relu(a), out)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let out = self.value(a).map(f32::exp);
        self.push(Op::Exp(a), out)
    }

    /// Elementwise natural logarithm (inputs must be positive).
    pub fn ln(&mut self, a: Var) -> Var {
        let out = self.value(a).map(f32::ln);
        self.push(Op::Ln(a), out)
    }

    // ----- shape ops --------------------------------------------------------

    /// `[a | b]` concatenated along columns.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a);
        let bv = self.value(b);
        assert_eq!(av.rows(), bv.rows(), "concat_cols: row mismatch");
        let rows = av.rows();
        let (ac, bc) = (av.cols(), bv.cols());
        let mut out = Tensor::zeros(rows, ac + bc);
        for r in 0..rows {
            out.row_mut(r)[..ac].copy_from_slice(av.row(r));
            out.row_mut(r)[ac..].copy_from_slice(bv.row(r));
        }
        self.push(Op::ConcatCols(a, b), out)
    }

    /// Columns `[start, start + len)` of `a`.
    pub fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Var {
        let av = self.value(a);
        assert!(start + len <= av.cols(), "slice_cols out of range");
        let rows = av.rows();
        let mut out = Tensor::zeros(rows, len);
        for r in 0..rows {
            out.row_mut(r).copy_from_slice(&av.row(r)[start..start + len]);
        }
        self.push(Op::SliceCols { src: a, start, len }, out)
    }

    /// Reinterprets `a`'s row-major data as a `rows x cols` tensor.
    ///
    /// # Panics
    /// Panics when the element count changes.
    pub fn reshape(&mut self, a: Var, rows: usize, cols: usize) -> Var {
        let av = self.value(a);
        assert_eq!(av.len(), rows * cols, "reshape: element count mismatch");
        let out = Tensor::from_vec(rows, cols, av.data().to_vec());
        self.push(Op::Reshape(a), out)
    }

    // ----- reductions -------------------------------------------------------

    /// Sum of all elements (`1 x 1`).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let s = self.value(a).sum() as f32;
        self.push(Op::SumAll(a), Tensor::from_vec(1, 1, vec![s]))
    }

    /// Mean of all elements (`1 x 1`).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = self.value(a);
        let m = (v.sum() / v.len() as f64) as f32;
        self.push(Op::MeanAll(a), Tensor::from_vec(1, 1, vec![m]))
    }

    /// Row-wise `log(sum_j exp(x_ij)))`, producing a `rows x 1` column.
    /// Numerically stabilised by subtracting the row max.
    pub fn logsumexp_rows(&mut self, a: Var) -> Var {
        let av = self.value(a);
        let rows = av.rows();
        let mut out = Tensor::zeros(rows, 1);
        for r in 0..rows {
            out.set(r, 0, logsumexp(av.row(r)));
        }
        self.push(Op::LogSumExpRows(a), out)
    }

    /// Fused softmax + cross-entropy loss, summed over rows (`1 x 1`).
    ///
    /// `targets[r]` is the class index for row `r` of `logits`. The softmax
    /// probabilities are cached for the backward pass. The per-row negative
    /// log-likelihoods can be recovered via [`Tape::ce_row_nll`].
    pub fn softmax_cross_entropy(&mut self, logits: Var, targets: &[u32]) -> Var {
        let lv = self.value(logits);
        assert_eq!(lv.rows(), targets.len(), "softmax_ce: row/target mismatch");
        let (rows, cols) = lv.shape();
        let mut probs = Tensor::zeros(rows, cols);
        let mut loss = 0.0f64;
        for (r, &target) in targets.iter().enumerate() {
            let row = lv.row(r);
            let lse = logsumexp(row);
            let t = target as usize;
            assert!(t < cols, "softmax_ce: target {t} out of {cols} classes");
            loss += (lse - row[t]) as f64;
            for (p, &x) in probs.row_mut(r).iter_mut().zip(row.iter()) {
                *p = (x - lse).exp();
            }
        }
        self.push_with_aux(
            Op::SoftmaxCrossEntropy { logits, targets: targets.to_vec() },
            Tensor::from_vec(1, 1, vec![loss as f32]),
            Some(probs),
        )
    }

    /// Per-row negative log-likelihood of the targets of a
    /// [`Tape::softmax_cross_entropy`] node.
    pub fn ce_row_nll(&self, ce: Var) -> Vec<f64> {
        match &self.ops[ce.index()] {
            Op::SoftmaxCrossEntropy { targets, .. } => {
                let probs = self.aux[ce.index()].as_ref().expect("ce aux");
                targets
                    .iter()
                    .enumerate()
                    .map(|(r, &t)| -(probs.get(r, t as usize).max(f32::MIN_POSITIVE) as f64).ln())
                    .collect()
            }
            _ => panic!("ce_row_nll called on a non-cross-entropy node"),
        }
    }

    // ----- composite helpers ----------------------------------------------

    /// KL divergence `KL(N(mu, diag(exp(logvar))) || N(0, I))`, summed over
    /// all elements, as a `1 x 1` scalar:
    /// `-0.5 * sum(1 + logvar - mu^2 - exp(logvar))`.
    pub fn kl_std_normal(&mut self, mu: Var, logvar: Var) -> Var {
        let mu_sq = self.mul(mu, mu);
        let var = self.exp(logvar);
        let t1 = self.add_scalar(logvar, 1.0);
        let t2 = self.sub(t1, mu_sq);
        let t3 = self.sub(t2, var);
        let s = self.sum_all(t3);
        self.scale(s, -0.5)
    }

    /// Reparameterised Gaussian sample `mu + exp(0.5 * logvar) * eps` where
    /// `eps` is an externally drawn standard-normal tensor.
    pub fn gaussian_sample(&mut self, mu: Var, logvar: Var, eps: Tensor) -> Var {
        assert_eq!(self.value(mu).shape(), eps.shape(), "gaussian_sample: eps shape");
        let half = self.scale(logvar, 0.5);
        let std = self.exp(half);
        let e = self.input(eps);
        let noise = self.mul(std, e);
        self.add(mu, noise)
    }

    // ----- backward ---------------------------------------------------------

    /// Runs the backward pass from scalar node `loss`, accumulating parameter
    /// gradients into `store.grads`.
    ///
    /// # Panics
    /// Panics if `loss` is not `1 x 1`.
    pub fn backward(&self, loss: Var, store: &mut ParamStore) {
        assert_eq!(self.value(loss).shape(), (1, 1), "backward: loss must be scalar");
        let n = loss.index() + 1;
        let mut grads: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        grads[loss.index()] = Some(Tensor::from_vec(1, 1, vec![1.0]));

        for idx in (0..n).rev() {
            let Some(g) = grads[idx].take() else { continue };
            match &self.ops[idx] {
                Op::Input => {}
                Op::Param(id) => {
                    store.grad_mut(*id).add_assign(&g);
                }
                Op::GatherRows { param, ids } => {
                    let gp = store.grad_mut(*param);
                    for (i, &row_id) in ids.iter().enumerate() {
                        let dst = gp.row_mut(row_id as usize);
                        for (d, &x) in dst.iter_mut().zip(g.row(i)) {
                            *d += x;
                        }
                    }
                }
                Op::GatherCols { param, ids } => {
                    let gp = store.grad_mut(*param);
                    for (i, &col_id) in ids.iter().enumerate() {
                        let c = col_id as usize;
                        for r in 0..g.rows() {
                            let cur = gp.get(r, c);
                            gp.set(r, c, cur + g.get(r, i));
                        }
                    }
                }
                Op::MatMul(a, b) => {
                    // dA += g · Bᵀ ; dB += Aᵀ · g
                    let da = g.matmul_t(self.value(*b));
                    let db = self.value(*a).transpose().matmul(&g);
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
                Op::MatMulT(a, b) => {
                    // C = A·Bᵀ : dA += g · B ; dB += gᵀ · A
                    let da = g.matmul(self.value(*b));
                    let db = g.transpose().matmul(self.value(*a));
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
                Op::Add(a, b) => {
                    let (ar, _) = self.value(*a).shape();
                    let (br, bc) = self.value(*b).shape();
                    accumulate(&mut grads, *a, g.clone());
                    if br == ar {
                        accumulate(&mut grads, *b, g);
                    } else {
                        // Broadcast bias: sum gradient over rows.
                        let mut db = Tensor::zeros(1, bc);
                        for r in 0..g.rows() {
                            for (d, &x) in db.row_mut(0).iter_mut().zip(g.row(r)) {
                                *d += x;
                            }
                        }
                        accumulate(&mut grads, *b, db);
                    }
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    let mut db = g;
                    for x in db.data_mut() {
                        *x = -*x;
                    }
                    accumulate(&mut grads, *b, db);
                }
                Op::Mul(a, b) => {
                    let da = elementwise_mul(&g, self.value(*b));
                    let db = elementwise_mul(&g, self.value(*a));
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
                Op::AddScalar(a) => accumulate(&mut grads, *a, g),
                Op::Scale(a, c) => {
                    let mut da = g;
                    for x in da.data_mut() {
                        *x *= c;
                    }
                    accumulate(&mut grads, *a, da);
                }
                Op::Sigmoid(a) => {
                    let y = &self.values[idx];
                    let da = zip3(&g, y, |g, y| g * y * (1.0 - y));
                    accumulate(&mut grads, *a, da);
                }
                Op::Tanh(a) => {
                    let y = &self.values[idx];
                    let da = zip3(&g, y, |g, y| g * (1.0 - y * y));
                    accumulate(&mut grads, *a, da);
                }
                Op::Relu(a) => {
                    let y = &self.values[idx];
                    let da = zip3(&g, y, |g, y| if y > 0.0 { g } else { 0.0 });
                    accumulate(&mut grads, *a, da);
                }
                Op::Exp(a) => {
                    let y = &self.values[idx];
                    let da = zip3(&g, y, |g, y| g * y);
                    accumulate(&mut grads, *a, da);
                }
                Op::Ln(a) => {
                    let x = self.value(*a);
                    let da = zip3(&g, x, |g, x| g / x);
                    accumulate(&mut grads, *a, da);
                }
                Op::ConcatCols(a, b) => {
                    let (rows, ac) = self.value(*a).shape();
                    let bc = self.value(*b).cols();
                    let mut da = Tensor::zeros(rows, ac);
                    let mut db = Tensor::zeros(rows, bc);
                    for r in 0..rows {
                        da.row_mut(r).copy_from_slice(&g.row(r)[..ac]);
                        db.row_mut(r).copy_from_slice(&g.row(r)[ac..]);
                    }
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
                Op::SliceCols { src, start, len } => {
                    let (rows, cols) = self.value(*src).shape();
                    let mut da = Tensor::zeros(rows, cols);
                    for r in 0..rows {
                        da.row_mut(r)[*start..start + len].copy_from_slice(g.row(r));
                    }
                    accumulate(&mut grads, *src, da);
                }
                Op::SumAll(a) => {
                    let gv = g.get(0, 0);
                    let (r, c) = self.value(*a).shape();
                    accumulate(&mut grads, *a, Tensor::full(r, c, gv));
                }
                Op::MeanAll(a) => {
                    let (r, c) = self.value(*a).shape();
                    let gv = g.get(0, 0) / (r * c) as f32;
                    accumulate(&mut grads, *a, Tensor::full(r, c, gv));
                }
                Op::SoftmaxCrossEntropy { logits, targets } => {
                    let gv = g.get(0, 0);
                    let probs = self.aux[idx].as_ref().expect("ce aux missing");
                    let mut da = probs.clone();
                    for (r, &t) in targets.iter().enumerate() {
                        da.row_mut(r)[t as usize] -= 1.0;
                    }
                    for x in da.data_mut() {
                        *x *= gv;
                    }
                    accumulate(&mut grads, *logits, da);
                }
                Op::Reshape(a) => {
                    let (r, c) = self.value(*a).shape();
                    accumulate(&mut grads, *a, Tensor::from_vec(r, c, g.into_data()));
                }
                Op::LogSumExpRows(a) => {
                    let x = self.value(*a);
                    let (rows, cols) = x.shape();
                    let mut da = Tensor::zeros(rows, cols);
                    for r in 0..rows {
                        let lse = self.values[idx].get(r, 0);
                        let gr = g.get(r, 0);
                        for (d, &xi) in da.row_mut(r).iter_mut().zip(x.row(r)) {
                            *d = gr * (xi - lse).exp();
                        }
                    }
                    accumulate(&mut grads, *a, da);
                }
            }
        }
    }
}

/// Numerically stable `log(sum(exp(xs)))` over a slice.
pub fn logsumexp(xs: &[f32]) -> f32 {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f64 = xs.iter().map(|&x| ((x - max) as f64).exp()).sum();
    max + (sum as f32).ln()
}

fn accumulate(grads: &mut [Option<Tensor>], v: Var, g: Tensor) {
    match &mut grads[v.index()] {
        Some(existing) => existing.add_assign(&g),
        slot @ None => *slot = Some(g),
    }
}

fn elementwise_mul(a: &Tensor, b: &Tensor) -> Tensor {
    debug_assert_eq!(a.shape(), b.shape());
    Tensor::from_vec(
        a.rows(),
        a.cols(),
        a.data().iter().zip(b.data()).map(|(&x, &y)| x * y).collect(),
    )
}

fn zip3(g: &Tensor, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    debug_assert_eq!(g.shape(), other.shape());
    Tensor::from_vec(
        g.rows(),
        g.cols(),
        g.data().iter().zip(other.data()).map(|(&x, &y)| f(x, y)).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(name: &str, t: Tensor) -> (ParamStore, ParamId) {
        let mut s = ParamStore::new();
        let id = s.add(name, t);
        (s, id)
    }

    #[test]
    fn forward_matmul_add_values() {
        let mut tape = Tape::new();
        let a = tape.input(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let w = tape.input(Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]));
        let b = tape.input(Tensor::from_vec(1, 2, vec![0.5, -0.5]));
        let h = tape.matmul(a, w);
        let y = tape.add(h, b);
        assert_eq!(tape.value(y).data(), &[1.5, 1.5]);
    }

    #[test]
    fn backward_linear_gradient() {
        // loss = sum(x · W); dW = xᵀ · 1
        let (mut store, w_id) = store_with("w", Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(1, 2, vec![5.0, 7.0]));
        let w = tape.param(&store, w_id);
        let y = tape.matmul(x, w);
        let loss = tape.sum_all(y);
        tape.backward(loss, &mut store);
        assert_eq!(store.grad(w_id).data(), &[5.0, 5.0, 7.0, 7.0]);
    }

    #[test]
    fn backward_gather_rows_scatters() {
        let (mut store, e_id) = store_with("emb", Tensor::from_vec(3, 2, vec![0.0; 6]));
        let mut tape = Tape::new();
        let rows = tape.gather_rows(&store, e_id, &[2, 2, 0]);
        let loss = tape.sum_all(rows);
        tape.backward(loss, &mut store);
        // Row 2 used twice, row 0 once, row 1 never.
        assert_eq!(store.grad(e_id).data(), &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn softmax_ce_matches_manual() {
        let mut tape = Tape::new();
        let logits = tape.input(Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let loss = tape.softmax_cross_entropy(logits, &[2]);
        let expected = logsumexp(&[1.0, 2.0, 3.0]) - 3.0;
        assert!((tape.value(loss).get(0, 0) - expected).abs() < 1e-5);
        let nll = tape.ce_row_nll(loss);
        assert!((nll[0] - expected as f64).abs() < 1e-5);
    }

    #[test]
    fn softmax_ce_gradient_is_probs_minus_onehot() {
        let (mut store, w_id) = store_with("logits", Tensor::from_vec(1, 3, vec![0.1, 0.2, 0.3]));
        let mut tape = Tape::new();
        let w = tape.param(&store, w_id);
        let loss = tape.softmax_cross_entropy(w, &[1]);
        tape.backward(loss, &mut store);
        let row = store.value(w_id).row(0).to_vec();
        let lse = logsumexp(&row);
        let g = store.grad(w_id);
        for (j, &x) in row.iter().enumerate() {
            let p = (x - lse).exp();
            let expected = if j == 1 { p - 1.0 } else { p };
            assert!((g.get(0, j) - expected).abs() < 1e-5);
        }
    }

    #[test]
    fn kl_std_normal_zero_at_standard() {
        let mut tape = Tape::new();
        let mu = tape.input(Tensor::zeros(1, 4));
        let logvar = tape.input(Tensor::zeros(1, 4));
        let kl = tape.kl_std_normal(mu, logvar);
        assert!(tape.value(kl).get(0, 0).abs() < 1e-6);
    }

    #[test]
    fn kl_std_normal_positive_otherwise() {
        let mut tape = Tape::new();
        let mu = tape.input(Tensor::from_vec(1, 2, vec![1.0, -2.0]));
        let logvar = tape.input(Tensor::from_vec(1, 2, vec![0.5, -0.5]));
        let kl = tape.kl_std_normal(mu, logvar);
        assert!(tape.value(kl).get(0, 0) > 0.0);
    }

    #[test]
    fn logsumexp_rows_stable_for_large_inputs() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(2, 2, vec![1000.0, 1000.0, -1000.0, -1000.0]));
        let out = tape.logsumexp_rows(x);
        let expected = 1000.0 + 2f32.ln();
        assert!((tape.value(out).get(0, 0) - expected).abs() < 1e-3);
        assert!((tape.value(out).get(1, 0) + 1000.0 - 2f32.ln()).abs() < 1e-3);
    }

    #[test]
    fn concat_slice_roundtrip_gradients() {
        let (mut store, id) = store_with("x", Tensor::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]));
        let mut tape = Tape::new();
        let x = tape.param(&store, id);
        let left = tape.slice_cols(x, 0, 2);
        let right = tape.slice_cols(x, 2, 2);
        let glued = tape.concat_cols(left, right);
        let doubled = tape.scale(glued, 2.0);
        let loss = tape.sum_all(doubled);
        tape.backward(loss, &mut store);
        assert_eq!(store.grad(id).data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn broadcast_add_bias_gradient_sums_rows() {
        let (mut store, b_id) = store_with("b", Tensor::from_vec(1, 2, vec![0.0, 0.0]));
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(3, 2, vec![1.0; 6]));
        let b = tape.param(&store, b_id);
        let y = tape.add(x, b);
        let loss = tape.sum_all(y);
        tape.backward(loss, &mut store);
        assert_eq!(store.grad(b_id).data(), &[3.0, 3.0]);
    }

    #[test]
    fn reused_node_accumulates_gradient() {
        // loss = sum(x * x): d/dx = 2x
        let (mut store, id) = store_with("x", Tensor::from_vec(1, 2, vec![3.0, -4.0]));
        let mut tape = Tape::new();
        let x = tape.param(&store, id);
        let sq = tape.mul(x, x);
        let loss = tape.sum_all(sq);
        tape.backward(loss, &mut store);
        assert_eq!(store.grad(id).data(), &[6.0, -8.0]);
    }

    #[test]
    fn tape_reset_reuses_buffers() {
        let mut tape = Tape::new();
        let a = tape.scalar(1.0);
        let _ = tape.add_scalar(a, 1.0);
        assert_eq!(tape.len(), 2);
        tape.reset();
        assert!(tape.is_empty());
        let b = tape.scalar(2.0);
        assert_eq!(tape.value(b).get(0, 0), 2.0);
    }
}
