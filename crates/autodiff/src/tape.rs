//! Reverse-mode automatic differentiation tape.
//!
//! Operations execute eagerly as they are recorded, so every node's value is
//! available immediately (`Tape::value`). Calling [`Tape::backward`] walks
//! the tape once in reverse and accumulates parameter gradients into the
//! [`ParamStore`].
//!
//! The op set is exactly what the paper's models need: dense matmuls (plus
//! the `A·Bᵀ` variant used for projecting onto gathered embedding rows),
//! elementwise nonlinearities, a fused GRU recurrence step, row/column
//! slicing and concatenation for packed gates and micro-batched sequence
//! training, fused softmax cross-entropy, and a row-wise log-sum-exp for
//! mixture priors.
//!
//! ## Memory discipline
//!
//! Every forward value and every backward gradient is drawn from an
//! internal [`TensorPool`] that survives [`Tape::reset`]: after the first
//! trajectory of an epoch warms the pool, steady-state training performs no
//! heap allocation on the tape. Matmul gradients route through the
//! transpose-aware kernels ([`Tensor::matmul_t_into`],
//! [`Tensor::matmul_tn_into`]) instead of materialising `transpose()`
//! copies.

use crate::params::{ParamId, ParamStore};
use crate::pool::TensorPool;
use crate::tensor::Tensor;

/// Handle to a node on the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(u32);

impl Var {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// The recorded operation of one tape node.
#[derive(Debug)]
enum Op {
    /// Constant input; receives no gradient.
    Input,
    /// Leaf referencing a full parameter tensor.
    Param(ParamId),
    /// Leaf referencing a subset of a parameter's rows (embedding lookup).
    GatherRows {
        param: ParamId,
        ids: Vec<u32>,
    },
    /// Leaf referencing a subset of a parameter's columns (bias subset for
    /// class-restricted projections).
    GatherCols {
        param: ParamId,
        ids: Vec<u32>,
    },
    /// `C = A · B`.
    MatMul(Var, Var),
    /// `C = A · Bᵀ`.
    MatMulT(Var, Var),
    /// Elementwise `a + b`; if `b` has one row it broadcasts across `a`'s rows.
    Add(Var, Var),
    /// Elementwise `a - b` (exact shapes).
    Sub(Var, Var),
    /// Elementwise `a * b` (exact shapes).
    Mul(Var, Var),
    /// `a + c` elementwise with a scalar constant (the constant has zero
    /// gradient, so it is not stored).
    AddScalar(Var),
    /// `c * a` elementwise with a scalar constant.
    Scale(Var, f32),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    Exp(Var),
    /// Natural log; inputs must be strictly positive.
    Ln(Var),
    /// One fused GRU recurrence step `h' = GRU(x, h)` with packed gates
    /// `[z | r | n]` in `w`/`u`/`b`. `aux` caches `[z | r | n | nh]` for the
    /// backward pass.
    GruStep {
        x: Var,
        h: Var,
        w: Var,
        u: Var,
        b: Var,
    },
    /// GRU step consuming precomputed input gates: rows
    /// `[start, start + h.rows)` of `gx` already hold `x·W + b`, so the
    /// whole sequence's input projection runs as one GEMM outside the
    /// recurrence. `aux` caches `[z | r | n | nh]`.
    GruStepPregated {
        gx: Var,
        start: usize,
        h: Var,
        u: Var,
    },
    /// Fused affine projection `x·W + b` (`transposed = false`, `W: in x
    /// out`) or `x·Wᵀ + b` (`transposed = true`, `W: out x in`), with the
    /// bias added in place — no separate broadcast-add node or full-size
    /// gradient copy.
    Linear {
        x: Var,
        w: Var,
        b: Var,
        transposed: bool,
    },
    /// Horizontal concatenation `[a | b]` (same number of rows).
    ConcatCols(Var, Var),
    /// Vertical concatenation of several nodes (same number of columns).
    ConcatRows(Vec<Var>),
    /// Columns `[start, start+len)` of `a`.
    SliceCols {
        src: Var,
        start: usize,
        len: usize,
    },
    /// Row gather from another node (micro-batch shrinking / regrouping);
    /// rows may repeat. Gradients scatter-add back.
    SelectRows {
        src: Var,
        ids: Vec<u32>,
    },
    /// Sum of all elements, producing a `1 x 1` scalar.
    SumAll(Var),
    /// Mean of all elements, producing a `1 x 1` scalar.
    MeanAll(Var),
    /// Fused softmax + cross-entropy, summed over rows, producing `1 x 1`.
    /// `aux` caches the softmax probabilities for the backward pass.
    SoftmaxCrossEntropy {
        logits: Var,
        targets: Vec<u32>,
    },
    /// Grouped class-subset projection + softmax cross-entropy against a
    /// row-major (`out x in`) weight parameter and its bias, summed over
    /// rows (`1 x 1`): row `i` of `x` is scored against weight rows
    /// `cands[offsets[i]..offsets[i+1]]`, with `targets[i]` indexing into
    /// that span. One node covers every transition of a micro-batch; `aux`
    /// caches the flattened softmax probabilities.
    SubsetSoftmaxCe {
        x: Var,
        w: ParamId,
        b: ParamId,
        cands: Vec<u32>,
        offsets: Vec<u32>,
        targets: Vec<u32>,
    },
    /// Row-wise `log(sum(exp(x)))`, producing `rows x 1`.
    LogSumExpRows(Var),
    /// Row-major reinterpretation to a new shape with the same element
    /// count.
    Reshape(Var),
}

/// An eager reverse-mode autodiff tape.
pub struct Tape {
    ops: Vec<Op>,
    values: Vec<Tensor>,
    /// Cached forward by-products (`SoftmaxCrossEntropy` probabilities,
    /// `GruStep` gate activations).
    aux: Vec<Option<Tensor>>,
    /// Buffer pool feeding forward values and backward gradients; persists
    /// across [`Tape::reset`] so repeated passes reuse memory.
    pool: TensorPool,
    /// Reusable per-node gradient slots for [`Tape::backward`].
    grad_slots: Vec<Option<Tensor>>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape {
            ops: Vec::with_capacity(256),
            values: Vec::with_capacity(256),
            aux: Vec::with_capacity(256),
            pool: TensorPool::new(),
            grad_slots: Vec::new(),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Clears all recorded nodes so the tape can be reused. Value and aux
    /// buffers are recycled into the internal pool, so subsequent passes of
    /// the same model allocate nothing.
    pub fn reset(&mut self) {
        self.ops.clear();
        for t in self.values.drain(..) {
            self.pool.recycle(t);
        }
        for t in self.aux.drain(..).flatten() {
            self.pool.recycle(t);
        }
    }

    /// `(hits, misses)` of the internal buffer pool — a steady-state
    /// training loop stops missing after its first tape pass.
    pub fn pool_stats(&self) -> (u64, u64) {
        (self.pool.hits(), self.pool.misses())
    }

    /// The value computed at `v`.
    #[inline]
    pub fn value(&self, v: Var) -> &Tensor {
        &self.values[v.index()]
    }

    fn push(&mut self, op: Op, value: Tensor) -> Var {
        self.push_with_aux(op, value, None)
    }

    fn push_with_aux(&mut self, op: Op, value: Tensor, aux: Option<Tensor>) -> Var {
        let id = Var(self.ops.len() as u32);
        self.ops.push(op);
        self.values.push(value);
        self.aux.push(aux);
        id
    }

    // ----- leaves ---------------------------------------------------------

    /// Records a constant input (no gradient flows into it).
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(Op::Input, value)
    }

    /// Records a `1 x 1` scalar constant.
    pub fn scalar(&mut self, x: f32) -> Var {
        let v = self.pool.take_full(1, 1, x);
        self.push(Op::Input, v)
    }

    /// Records a parameter leaf; the current value is copied onto the tape.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let value = self.pool.take_copy(store.value(id));
        self.push(Op::Param(id), value)
    }

    /// Records an embedding lookup: rows `ids` of parameter `id`.
    /// Gradients are scatter-added back into exactly those rows.
    pub fn gather_rows(&mut self, store: &ParamStore, id: ParamId, ids: &[u32]) -> Var {
        let src = store.value(id);
        let mut out = self.pool.take_scratch(ids.len(), src.cols());
        for (i, &row_id) in ids.iter().enumerate() {
            let row_id = row_id as usize;
            assert!(row_id < src.rows(), "gather_rows: row {row_id} out of {}", src.rows());
            out.row_mut(i).copy_from_slice(src.row(row_id));
        }
        self.push(Op::GatherRows { param: id, ids: ids.to_vec() }, out)
    }

    /// Records a column-subset lookup of parameter `id`: output has the same
    /// number of rows and one column per entry of `ids`. Gradients are
    /// scatter-added back into exactly those columns.
    pub fn gather_cols(&mut self, store: &ParamStore, id: ParamId, ids: &[u32]) -> Var {
        let src = store.value(id);
        let rows = src.rows();
        let mut out = self.pool.take_scratch(rows, ids.len());
        for (i, &c) in ids.iter().enumerate() {
            let c = c as usize;
            assert!(c < src.cols(), "gather_cols: column {c} out of {}", src.cols());
            for r in 0..rows {
                out.set(r, i, src.get(r, c));
            }
        }
        self.push(Op::GatherCols { param: id, ids: ids.to_vec() }, out)
    }

    // ----- linear algebra -------------------------------------------------

    /// `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let m = self.value(a).rows();
        let n = self.value(b).cols();
        let mut out = self.pool.take_scratch(m, n);
        self.values[a.index()].matmul_into(&self.values[b.index()], &mut out);
        self.push(Op::MatMul(a, b), out)
    }

    /// `a · bᵀ`.
    pub fn matmul_t(&mut self, a: Var, b: Var) -> Var {
        let m = self.value(a).rows();
        let n = self.value(b).rows();
        let mut out = self.pool.take_scratch(m, n);
        self.values[a.index()].matmul_t_into(&self.values[b.index()], &mut out);
        self.push(Op::MatMulT(a, b), out)
    }

    /// Elementwise addition. When `b` is a single row and `a` has several,
    /// `b` is broadcast across `a`'s rows (bias addition).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (ar, ac) = self.value(a).shape();
        let (br, bc) = self.value(b).shape();
        assert_eq!(ac, bc, "add: column mismatch {ac} vs {bc}");
        assert!(br == ar || br == 1, "add: row mismatch {ar} vs {br}");
        let mut out = self.pool.take_copy(&self.values[a.index()]);
        let b_val = &self.values[b.index()];
        if br == ar {
            out.add_assign(b_val);
        } else {
            for r in 0..ar {
                for (o, &x) in out.row_mut(r).iter_mut().zip(b_val.row(0)) {
                    *o += x;
                }
            }
        }
        self.push(Op::Add(a, b), out)
    }

    /// Elementwise subtraction (shapes must match exactly).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.value(a).shape(), self.value(b).shape(), "sub: shape mismatch");
        let mut out = self.pool.take_copy(&self.values[a.index()]);
        out.add_scaled(&self.values[b.index()], -1.0);
        self.push(Op::Sub(a, b), out)
    }

    /// Elementwise product (shapes must match exactly).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.value(a).shape(), self.value(b).shape(), "mul: shape mismatch");
        let (r, c) = self.value(a).shape();
        let mut out = self.pool.take_scratch(r, c);
        for ((o, &x), &y) in out
            .data_mut()
            .iter_mut()
            .zip(self.values[a.index()].data())
            .zip(self.values[b.index()].data())
        {
            *o = x * y;
        }
        self.push(Op::Mul(a, b), out)
    }

    /// `a + c` with a scalar constant.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let out = self.pooled_map(a, |x| x + c);
        self.push(Op::AddScalar(a), out)
    }

    /// `c * a` with a scalar constant.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let out = self.pooled_map(a, |x| c * x);
        self.push(Op::Scale(a, c), out)
    }

    /// Elementwise map of `a`'s value into a pooled tensor.
    fn pooled_map(&mut self, a: Var, f: impl Fn(f32) -> f32) -> Tensor {
        let (r, c) = self.value(a).shape();
        let mut out = self.pool.take_scratch(r, c);
        for (o, &x) in out.data_mut().iter_mut().zip(self.values[a.index()].data()) {
            *o = f(x);
        }
        out
    }

    // ----- nonlinearities ---------------------------------------------------

    /// Elementwise logistic sigmoid (vectorised
    /// [`crate::math::fast_sigmoid`], absolute error < 1e-6).
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let out = self.pooled_map(a, crate::math::fast_sigmoid);
        self.push(Op::Sigmoid(a), out)
    }

    /// Elementwise hyperbolic tangent (vectorised
    /// [`crate::math::fast_tanh`], absolute error < 1e-6).
    pub fn tanh(&mut self, a: Var) -> Var {
        let out = self.pooled_map(a, crate::math::fast_tanh);
        self.push(Op::Tanh(a), out)
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let out = self.pooled_map(a, |x| x.max(0.0));
        self.push(Op::Relu(a), out)
    }

    /// Elementwise exponential (vectorised [`crate::math::fast_exp`],
    /// relative error ~1e-7).
    pub fn exp(&mut self, a: Var) -> Var {
        let out = self.pooled_map(a, crate::math::fast_exp);
        self.push(Op::Exp(a), out)
    }

    /// Elementwise natural logarithm (inputs must be positive).
    pub fn ln(&mut self, a: Var) -> Var {
        let out = self.pooled_map(a, f32::ln);
        self.push(Op::Ln(a), out)
    }

    // ----- recurrence -------------------------------------------------------

    /// One fused GRU step `h' = GRU(x, h)` with packed `[z | r | n]` gates:
    ///
    /// ```text
    /// z = sigmoid(xWz + hUz + bz)
    /// r = sigmoid(xWr + hUr + br)
    /// n = tanh  (xWn + r * (hUn) + bn)
    /// h' = n + z * (h - n)
    /// ```
    ///
    /// `w: in x 3h`, `u: h x 3h`, `b: 1 x 3h` are tape nodes (usually
    /// `Op::Param` leaves). A single node replaces the ~18 primitive ops
    /// of the composed formulation, with a hand-fused backward. The gate
    /// nonlinearities use the vectorised [`crate::math::fast_sigmoid`] /
    /// [`crate::math::fast_tanh`] kernels and the same three-pass loop
    /// structure as [`crate::nn::GruCell::infer_step`], so taped training
    /// steps and tape-free inference steps produce bit-identical hidden
    /// states.
    pub fn gru_step(&mut self, x: Var, h: Var, w: Var, u: Var, b: Var) -> Var {
        let (bsz, hd) = self.value(h).shape();
        let in_dim = self.value(x).cols();
        debug_assert_eq!(self.value(x).rows(), bsz, "gru_step: batch mismatch");
        debug_assert_eq!(self.value(w).shape(), (in_dim, 3 * hd), "gru_step: W shape");
        debug_assert_eq!(self.value(u).shape(), (hd, 3 * hd), "gru_step: U shape");
        debug_assert_eq!(self.value(b).shape(), (1, 3 * hd), "gru_step: bias shape");

        let mut gx = self.pool.take_scratch(bsz, 3 * hd);
        self.values[x.index()].matmul_into(&self.values[w.index()], &mut gx);
        {
            let bias = &self.values[b.index()];
            for r in 0..bsz {
                for (o, &bb) in gx.row_mut(r).iter_mut().zip(bias.row(0)) {
                    *o += bb;
                }
            }
        }
        let mut gh = self.pool.take_scratch(bsz, 3 * hd);
        self.values[h.index()].matmul_into(&self.values[u.index()], &mut gh);

        let mut out = self.pool.take_scratch(bsz, hd);
        // aux layout: [z | r | n | nh] per row (nh = the hUn slice, needed
        // by the backward pass of the n gate).
        let mut packed = self.pool.take_scratch(bsz, 4 * hd);
        gru_gate_forward(&gx, 0, &gh, &self.values[h.index()], &mut out, &mut packed);
        self.pool.recycle(gx);
        self.pool.recycle(gh);
        self.push_with_aux(Op::GruStep { x, h, w, u, b }, out, Some(packed))
    }

    /// [`Tape::gru_step`] with the input-gate projection hoisted out of the
    /// recurrence: rows `[start, start + h.rows)` of `gx_all` must already
    /// hold `x·W + b` for this step (typically one [`Tape::linear`] GEMM
    /// over every timestep of the sequence). Only the recurrent `h·U`
    /// product remains inside the loop. Hidden states are bit-identical to
    /// [`Tape::gru_step`] — the big GEMM row-stacks the same ascending-`k`
    /// accumulation.
    pub fn gru_step_pregated(&mut self, gx_all: Var, start: usize, h: Var, u: Var) -> Var {
        let (bsz, hd) = self.value(h).shape();
        debug_assert_eq!(self.value(gx_all).cols(), 3 * hd, "gru_step_pregated: gx width");
        debug_assert!(start + bsz <= self.value(gx_all).rows(), "gru_step_pregated: gx row range");
        debug_assert_eq!(self.value(u).shape(), (hd, 3 * hd), "gru_step_pregated: U shape");
        let mut gh = self.pool.take_scratch(bsz, 3 * hd);
        self.values[h.index()].matmul_into(&self.values[u.index()], &mut gh);
        let mut out = self.pool.take_scratch(bsz, hd);
        let mut packed = self.pool.take_scratch(bsz, 4 * hd);
        gru_gate_forward(
            &self.values[gx_all.index()],
            start,
            &gh,
            &self.values[h.index()],
            &mut out,
            &mut packed,
        );
        self.pool.recycle(gh);
        self.push_with_aux(Op::GruStepPregated { gx: gx_all, start, h, u }, out, Some(packed))
    }

    /// Fused affine projection: `x·W + b` (`transposed = false`, `W` is
    /// `in x out`) or `x·Wᵀ + b` (`transposed = true`, `W` is `out x in`,
    /// one contiguous row per output class). The bias lands in the matmul
    /// output in place, so there is no broadcast-add node and no full-size
    /// gradient copy in backward.
    pub fn linear(&mut self, x: Var, w: Var, b: Var, transposed: bool) -> Var {
        let (m, k) = self.value(x).shape();
        let (wr, wc) = self.value(w).shape();
        let out_dim = if transposed {
            assert_eq!(wc, k, "linear: transposed weight inner dim {wc} vs {k}");
            wr
        } else {
            assert_eq!(wr, k, "linear: weight inner dim {wr} vs {k}");
            wc
        };
        assert_eq!(self.value(b).shape(), (1, out_dim), "linear: bias shape");
        let mut out = self.pool.take_scratch(m, out_dim);
        if transposed {
            self.values[x.index()].matmul_t_into(&self.values[w.index()], &mut out);
        } else {
            self.values[x.index()].matmul_into(&self.values[w.index()], &mut out);
        }
        {
            let bias = &self.values[b.index()];
            for r in 0..m {
                for (o, &bb) in out.row_mut(r).iter_mut().zip(bias.row(0)) {
                    *o += bb;
                }
            }
        }
        self.push(Op::Linear { x, w, b, transposed }, out)
    }

    // ----- shape ops --------------------------------------------------------

    /// `[a | b]` concatenated along columns.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (rows, ac) = self.value(a).shape();
        let bc = self.value(b).cols();
        assert_eq!(rows, self.value(b).rows(), "concat_cols: row mismatch");
        let mut out = self.pool.take_scratch(rows, ac + bc);
        for r in 0..rows {
            let row = out.row_mut(r);
            row[..ac].copy_from_slice(self.values[a.index()].row(r));
            row[ac..].copy_from_slice(self.values[b.index()].row(r));
        }
        self.push(Op::ConcatCols(a, b), out)
    }

    /// Vertical concatenation of `parts` (all must share a column count).
    /// The backward pass slices the gradient back to each part.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows: empty part list");
        let cols = self.value(parts[0]).cols();
        let total: usize = parts
            .iter()
            .map(|&p| {
                assert_eq!(self.value(p).cols(), cols, "concat_rows: column mismatch");
                self.value(p).rows()
            })
            .sum();
        let mut out = self.pool.take_scratch(total, cols);
        let mut off = 0;
        for &p in parts {
            let v = &self.values[p.index()];
            out.data_mut()[off..off + v.len()].copy_from_slice(v.data());
            off += v.len();
        }
        self.push(Op::ConcatRows(parts.to_vec()), out)
    }

    /// Columns `[start, start + len)` of `a`.
    pub fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Var {
        let (rows, cols) = self.value(a).shape();
        assert!(start + len <= cols, "slice_cols out of range");
        let mut out = self.pool.take_scratch(rows, len);
        for r in 0..rows {
            out.row_mut(r).copy_from_slice(&self.values[a.index()].row(r)[start..start + len]);
        }
        self.push(Op::SliceCols { src: a, start, len }, out)
    }

    /// Gathers rows `ids` of node `src` (rows may repeat, order is free).
    /// This is the micro-batching workhorse: shrinking the active row set
    /// when trajectories end, and regrouping prediction rows that share a
    /// candidate set. Gradients scatter-add back into `src`.
    pub fn select_rows(&mut self, src: Var, ids: &[u32]) -> Var {
        let (rows, cols) = self.value(src).shape();
        let mut out = self.pool.take_scratch(ids.len(), cols);
        for (i, &id) in ids.iter().enumerate() {
            let id = id as usize;
            assert!(id < rows, "select_rows: row {id} out of {rows}");
            out.row_mut(i).copy_from_slice(self.values[src.index()].row(id));
        }
        self.push(Op::SelectRows { src, ids: ids.to_vec() }, out)
    }

    /// Reinterprets `a`'s row-major data as a `rows x cols` tensor.
    ///
    /// # Panics
    /// Panics when the element count changes.
    pub fn reshape(&mut self, a: Var, rows: usize, cols: usize) -> Var {
        assert_eq!(self.value(a).len(), rows * cols, "reshape: element count mismatch");
        let mut out = self.pool.take_scratch(rows, cols);
        out.data_mut().copy_from_slice(self.values[a.index()].data());
        self.push(Op::Reshape(a), out)
    }

    // ----- reductions -------------------------------------------------------

    /// Sum of all elements (`1 x 1`).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let s = self.value(a).sum() as f32;
        let out = self.pool.take_full(1, 1, s);
        self.push(Op::SumAll(a), out)
    }

    /// Mean of all elements (`1 x 1`).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = self.value(a);
        let m = (v.sum() / v.len() as f64) as f32;
        let out = self.pool.take_full(1, 1, m);
        self.push(Op::MeanAll(a), out)
    }

    /// Row-wise `log(sum_j exp(x_ij)))`, producing a `rows x 1` column.
    /// Numerically stabilised by subtracting the row max.
    pub fn logsumexp_rows(&mut self, a: Var) -> Var {
        let rows = self.value(a).rows();
        let mut out = self.pool.take_scratch(rows, 1);
        for r in 0..rows {
            let lse = logsumexp(self.values[a.index()].row(r));
            out.set(r, 0, lse);
        }
        self.push(Op::LogSumExpRows(a), out)
    }

    /// Fused softmax + cross-entropy loss, summed over rows (`1 x 1`).
    ///
    /// `targets[r]` is the class index for row `r` of `logits`. The softmax
    /// probabilities are cached for the backward pass (never recomputed).
    /// The per-row negative log-likelihoods can be recovered via
    /// [`Tape::ce_row_nll`].
    ///
    /// One [`crate::math::fast_exp`] per element (numerically stabilised by
    /// the row max, summed in `f64`, normalised by the reciprocal) replaces
    /// the two `libm` exponentials of the naive `logsumexp`-then-softmax
    /// formulation — the full-vocab heads make this the single largest
    /// training node. Values match the `std` formulation within fast-math
    /// tolerance (~3e-7 relative).
    pub fn softmax_cross_entropy(&mut self, logits: Var, targets: &[u32]) -> Var {
        let (rows, cols) = self.value(logits).shape();
        assert_eq!(rows, targets.len(), "softmax_ce: row/target mismatch");
        let mut probs = self.pool.take_scratch(rows, cols);
        let mut loss = 0.0f64;
        {
            let lv = &self.values[logits.index()];
            for (r, &target) in targets.iter().enumerate() {
                let row = lv.row(r);
                let t = target as usize;
                assert!(t < cols, "softmax_ce: target {t} out of {cols} classes");
                let max = fold_max(row);
                let p_row = probs.row_mut(r);
                let sum = stable_exp_sum_into(row, max, p_row);
                let lse = max + (sum as f32).ln();
                loss += (lse - row[t]) as f64;
                let inv = (1.0 / sum) as f32;
                for p in p_row.iter_mut() {
                    *p *= inv;
                }
            }
        }
        let out = self.pool.take_full(1, 1, loss as f32);
        self.push_with_aux(
            Op::SoftmaxCrossEntropy { logits, targets: targets.to_vec() },
            out,
            Some(probs),
        )
    }

    /// Grouped class-subset softmax cross-entropy, summed over rows
    /// (`1 x 1`).
    ///
    /// Row `i` of `x` (`rows x in`) is projected onto the weight rows
    /// `cands[offsets[i]..offsets[i+1]]` of the row-major parameter `w`
    /// (`out x in`) plus the matching entries of bias `b` (`1 x out`), and
    /// scored by a stabilised softmax CE against `targets[i]` (an index
    /// *within* the row's candidate span).
    ///
    /// This is the road-constrained decoder head as **one** tape node:
    /// candidate sets are tiny (a handful of successors), so the composed
    /// per-group formulation (row gather, weight gather, matmul, bias
    /// gather, add, CE) drowned in per-node bookkeeping. The fused backward
    /// scatter-adds straight into the parameter gradients. Per-row NLLs are
    /// bit-identical to the composed ops (same ascending-`k` dot, same
    /// stabilised softmax); only the final summation order differs (one
    /// `f64` accumulation instead of an f32 add chain).
    #[allow(clippy::too_many_arguments)]
    pub fn subset_softmax_ce(
        &mut self,
        store: &ParamStore,
        x: Var,
        w: ParamId,
        b: ParamId,
        cands: &[u32],
        offsets: &[u32],
        targets: &[u32],
    ) -> Var {
        let (rows, in_dim) = self.value(x).shape();
        assert!(rows > 0, "subset_ce: needs at least one row");
        assert_eq!(offsets.len(), rows + 1, "subset_ce: offsets length");
        assert_eq!(targets.len(), rows, "subset_ce: targets length");
        let wv = store.value(w);
        let bv = store.value(b);
        assert_eq!(wv.cols(), in_dim, "subset_ce: weight must be row-major out x in");
        assert_eq!(bv.shape(), (1, wv.rows()), "subset_ce: bias shape");
        assert_eq!(offsets[0], 0, "subset_ce: offsets must start at 0");
        assert_eq!(offsets[rows] as usize, cands.len(), "subset_ce: offsets must cover cands");

        let mut probs = self.pool.take_scratch(1, cands.len());
        let mut loss = 0.0f64;
        {
            let xv = &self.values[x.index()];
            let flat = probs.data_mut();
            for i in 0..rows {
                let span = offsets[i] as usize..offsets[i + 1] as usize;
                let width = span.len();
                assert!(width > 0, "subset_ce: empty candidate span at row {i}");
                let t = targets[i] as usize;
                assert!(t < width, "subset_ce: target {t} out of span {width}");
                let x_row = xv.row(i);
                let mut max = f32::NEG_INFINITY;
                for (slot, &c) in flat[span.clone()].iter_mut().zip(&cands[span.clone()]) {
                    let c = c as usize;
                    assert!(c < wv.rows(), "subset_ce: class {c} out of {}", wv.rows());
                    let w_row = wv.row(c);
                    let mut acc = 0.0f32;
                    for (&a, &wk) in x_row.iter().zip(w_row.iter()) {
                        acc = a.mul_add(wk, acc);
                    }
                    let logit = acc + bv.get(0, c);
                    *slot = logit;
                    max = max.max(logit);
                }
                let target_logit = flat[span.start + t];
                let mut sum = 0.0f64;
                for p in flat[span.clone()].iter_mut() {
                    let e = crate::math::fast_exp(*p - max);
                    *p = e;
                    sum += e as f64;
                }
                let lse = max + (sum as f32).ln();
                loss += (lse - target_logit) as f64;
                let inv = (1.0 / sum) as f32;
                for p in flat[span].iter_mut() {
                    *p *= inv;
                }
            }
        }
        let out = self.pool.take_full(1, 1, loss as f32);
        self.push_with_aux(
            Op::SubsetSoftmaxCe {
                x,
                w,
                b,
                cands: cands.to_vec(),
                offsets: offsets.to_vec(),
                targets: targets.to_vec(),
            },
            out,
            Some(probs),
        )
    }

    /// Per-row negative log-likelihood of the targets of a
    /// [`Tape::softmax_cross_entropy`] node.
    pub fn ce_row_nll(&self, ce: Var) -> Vec<f64> {
        match &self.ops[ce.index()] {
            Op::SoftmaxCrossEntropy { targets, .. } => {
                let probs = self.aux[ce.index()].as_ref().expect("ce aux");
                targets
                    .iter()
                    .enumerate()
                    .map(|(r, &t)| -(probs.get(r, t as usize).max(f32::MIN_POSITIVE) as f64).ln())
                    .collect()
            }
            _ => panic!("ce_row_nll called on a non-cross-entropy node"),
        }
    }

    // ----- composite helpers ----------------------------------------------

    /// KL divergence `KL(N(mu, diag(exp(logvar))) || N(0, I))`, summed over
    /// all elements, as a `1 x 1` scalar:
    /// `-0.5 * sum(1 + logvar - mu^2 - exp(logvar))`.
    pub fn kl_std_normal(&mut self, mu: Var, logvar: Var) -> Var {
        let mu_sq = self.mul(mu, mu);
        let var = self.exp(logvar);
        let t1 = self.add_scalar(logvar, 1.0);
        let t2 = self.sub(t1, mu_sq);
        let t3 = self.sub(t2, var);
        let s = self.sum_all(t3);
        self.scale(s, -0.5)
    }

    /// Reparameterised Gaussian sample `mu + exp(0.5 * logvar) * eps` where
    /// `eps` is an externally drawn standard-normal tensor.
    pub fn gaussian_sample(&mut self, mu: Var, logvar: Var, eps: Tensor) -> Var {
        assert_eq!(self.value(mu).shape(), eps.shape(), "gaussian_sample: eps shape");
        let half = self.scale(logvar, 0.5);
        let std = self.exp(half);
        let e = self.input(eps);
        let noise = self.mul(std, e);
        self.add(mu, noise)
    }

    // ----- backward ---------------------------------------------------------

    /// Runs the backward pass from scalar node `loss`, accumulating parameter
    /// gradients into `store.grads`. All intermediate gradient buffers come
    /// from (and return to) the tape's pool.
    ///
    /// # Panics
    /// Panics if `loss` is not `1 x 1`.
    pub fn backward(&mut self, loss: Var, store: &mut ParamStore) {
        assert_eq!(self.value(loss).shape(), (1, 1), "backward: loss must be scalar");
        let n = loss.index() + 1;
        let Tape { ops, values, aux, pool, grad_slots } = self;
        grad_slots.clear();
        grad_slots.resize_with(n, || None);
        grad_slots[loss.index()] = Some(pool.take_full(1, 1, 1.0));

        for idx in (0..n).rev() {
            let Some(mut g) = grad_slots[idx].take() else { continue };
            match &ops[idx] {
                Op::Input => pool.recycle(g),
                Op::Param(id) => {
                    store.grad_mut(*id).add_assign(&g);
                    pool.recycle(g);
                }
                Op::GatherRows { param, ids } => {
                    let gp = store.grad_mut(*param);
                    for (i, &row_id) in ids.iter().enumerate() {
                        let dst = gp.row_mut(row_id as usize);
                        for (d, &x) in dst.iter_mut().zip(g.row(i)) {
                            *d += x;
                        }
                    }
                    pool.recycle(g);
                }
                Op::GatherCols { param, ids } => {
                    let gp = store.grad_mut(*param);
                    for (i, &col_id) in ids.iter().enumerate() {
                        let c = col_id as usize;
                        for r in 0..g.rows() {
                            let cur = gp.get(r, c);
                            gp.set(r, c, cur + g.get(r, i));
                        }
                    }
                    pool.recycle(g);
                }
                Op::MatMul(a, b) => {
                    // dA += g · Bᵀ ; dB += Aᵀ · g — both through the
                    // transpose-aware kernels, no transposed copies.
                    let av = &values[a.index()];
                    let bv = &values[b.index()];
                    let mut da = pool.take_scratch(g.rows(), bv.rows());
                    g.matmul_t_into(bv, &mut da);
                    let mut db = pool.take_scratch(av.cols(), g.cols());
                    av.matmul_tn_into(&g, &mut db);
                    accumulate(grad_slots, pool, *a, da);
                    accumulate(grad_slots, pool, *b, db);
                    pool.recycle(g);
                }
                Op::MatMulT(a, b) => {
                    // C = A·Bᵀ : dA += g · B ; dB += gᵀ · A
                    let av = &values[a.index()];
                    let bv = &values[b.index()];
                    let mut da = pool.take_scratch(g.rows(), bv.cols());
                    g.matmul_into(bv, &mut da);
                    let mut db = pool.take_scratch(g.cols(), av.cols());
                    g.matmul_tn_into(av, &mut db);
                    accumulate(grad_slots, pool, *a, da);
                    accumulate(grad_slots, pool, *b, db);
                    pool.recycle(g);
                }
                Op::Add(a, b) => {
                    let ar = values[a.index()].rows();
                    let (br, bc) = values[b.index()].shape();
                    if br == ar {
                        let db = pool.take_copy(&g);
                        accumulate(grad_slots, pool, *b, db);
                    } else {
                        // Broadcast bias: sum gradient over rows.
                        let mut db = pool.take_zeroed(1, bc);
                        for r in 0..g.rows() {
                            for (d, &x) in db.row_mut(0).iter_mut().zip(g.row(r)) {
                                *d += x;
                            }
                        }
                        accumulate(grad_slots, pool, *b, db);
                    }
                    accumulate(grad_slots, pool, *a, g);
                }
                Op::Sub(a, b) => {
                    let mut db = pool.take_scratch(g.rows(), g.cols());
                    for (d, &x) in db.data_mut().iter_mut().zip(g.data()) {
                        *d = -x;
                    }
                    accumulate(grad_slots, pool, *b, db);
                    accumulate(grad_slots, pool, *a, g);
                }
                Op::Mul(a, b) => {
                    let mut da = pool.take_scratch(g.rows(), g.cols());
                    for ((d, &x), &y) in
                        da.data_mut().iter_mut().zip(g.data()).zip(values[b.index()].data())
                    {
                        *d = x * y;
                    }
                    // Reuse g in place for dB = g * A.
                    for (x, &y) in g.data_mut().iter_mut().zip(values[a.index()].data()) {
                        *x *= y;
                    }
                    accumulate(grad_slots, pool, *a, da);
                    accumulate(grad_slots, pool, *b, g);
                }
                Op::AddScalar(a) => accumulate(grad_slots, pool, *a, g),
                Op::Scale(a, c) => {
                    for x in g.data_mut() {
                        *x *= c;
                    }
                    accumulate(grad_slots, pool, *a, g);
                }
                Op::Sigmoid(a) => {
                    for (x, &y) in g.data_mut().iter_mut().zip(values[idx].data()) {
                        *x = *x * y * (1.0 - y);
                    }
                    accumulate(grad_slots, pool, *a, g);
                }
                Op::Tanh(a) => {
                    for (x, &y) in g.data_mut().iter_mut().zip(values[idx].data()) {
                        *x *= 1.0 - y * y;
                    }
                    accumulate(grad_slots, pool, *a, g);
                }
                Op::Relu(a) => {
                    for (x, &y) in g.data_mut().iter_mut().zip(values[idx].data()) {
                        if y <= 0.0 {
                            *x = 0.0;
                        }
                    }
                    accumulate(grad_slots, pool, *a, g);
                }
                Op::Exp(a) => {
                    for (x, &y) in g.data_mut().iter_mut().zip(values[idx].data()) {
                        *x *= y;
                    }
                    accumulate(grad_slots, pool, *a, g);
                }
                Op::Ln(a) => {
                    for (x, &y) in g.data_mut().iter_mut().zip(values[a.index()].data()) {
                        *x /= y;
                    }
                    accumulate(grad_slots, pool, *a, g);
                }
                Op::GruStep { x, h, w, u, b } => {
                    gru_step_backward(values, aux, pool, grad_slots, idx, &g, *x, *h, *w, *u, *b);
                    pool.recycle(g);
                }
                Op::GruStepPregated { gx, start, h, u } => {
                    gru_pregated_backward(
                        values, aux, pool, grad_slots, idx, &g, *gx, *start, *h, *u,
                    );
                    pool.recycle(g);
                }
                Op::Linear { x, w, b, transposed } => {
                    let xv = &values[x.index()];
                    let wv = &values[w.index()];
                    // db = column sums of g.
                    let bc = values[b.index()].cols();
                    let mut db = pool.take_zeroed(1, bc);
                    for r in 0..g.rows() {
                        for (d, &v) in db.row_mut(0).iter_mut().zip(g.row(r)) {
                            *d += v;
                        }
                    }
                    let mut dw = pool.take_scratch(wv.rows(), wv.cols());
                    let dx = if *transposed {
                        // y = x·Wᵀ: dx = g·W ; dW = gᵀ·x
                        let mut d = pool.take_scratch(g.rows(), wv.cols());
                        g.matmul_into(wv, &mut d);
                        g.matmul_tn_into(xv, &mut dw);
                        d
                    } else {
                        // y = x·W: dx = g·Wᵀ ; dW = xᵀ·g
                        let mut d = pool.take_scratch(g.rows(), wv.rows());
                        g.matmul_t_into(wv, &mut d);
                        xv.matmul_tn_into(&g, &mut dw);
                        d
                    };
                    accumulate(grad_slots, pool, *x, dx);
                    accumulate(grad_slots, pool, *w, dw);
                    accumulate(grad_slots, pool, *b, db);
                    pool.recycle(g);
                }
                Op::ConcatCols(a, b) => {
                    let (rows, ac) = values[a.index()].shape();
                    let bc = values[b.index()].cols();
                    let mut da = pool.take_scratch(rows, ac);
                    let mut db = pool.take_scratch(rows, bc);
                    for r in 0..rows {
                        da.row_mut(r).copy_from_slice(&g.row(r)[..ac]);
                        db.row_mut(r).copy_from_slice(&g.row(r)[ac..]);
                    }
                    accumulate(grad_slots, pool, *a, da);
                    accumulate(grad_slots, pool, *b, db);
                    pool.recycle(g);
                }
                Op::ConcatRows(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let (rows, cols) = values[p.index()].shape();
                        let mut dp = pool.take_scratch(rows, cols);
                        dp.data_mut().copy_from_slice(&g.data()[off..off + rows * cols]);
                        off += rows * cols;
                        accumulate(grad_slots, pool, p, dp);
                    }
                    pool.recycle(g);
                }
                Op::SliceCols { src, start, len } => {
                    let (rows, cols) = values[src.index()].shape();
                    let mut da = pool.take_zeroed(rows, cols);
                    for r in 0..rows {
                        da.row_mut(r)[*start..start + len].copy_from_slice(g.row(r));
                    }
                    accumulate(grad_slots, pool, *src, da);
                    pool.recycle(g);
                }
                Op::SelectRows { src, ids } => {
                    let (rows, cols) = values[src.index()].shape();
                    let mut da = pool.take_zeroed(rows, cols);
                    for (i, &id) in ids.iter().enumerate() {
                        for (d, &x) in da.row_mut(id as usize).iter_mut().zip(g.row(i)) {
                            *d += x;
                        }
                    }
                    accumulate(grad_slots, pool, *src, da);
                    pool.recycle(g);
                }
                Op::SumAll(a) => {
                    let gv = g.get(0, 0);
                    let (r, c) = values[a.index()].shape();
                    let da = pool.take_full(r, c, gv);
                    accumulate(grad_slots, pool, *a, da);
                    pool.recycle(g);
                }
                Op::MeanAll(a) => {
                    let (r, c) = values[a.index()].shape();
                    let gv = g.get(0, 0) / (r * c) as f32;
                    let da = pool.take_full(r, c, gv);
                    accumulate(grad_slots, pool, *a, da);
                    pool.recycle(g);
                }
                Op::SoftmaxCrossEntropy { logits, targets } => {
                    let gv = g.get(0, 0);
                    let probs = aux[idx].as_ref().expect("ce aux missing");
                    let mut da = pool.take_scratch(probs.rows(), probs.cols());
                    for (d, &p) in da.data_mut().iter_mut().zip(probs.data()) {
                        *d = p * gv;
                    }
                    for (r, &t) in targets.iter().enumerate() {
                        let p = probs.get(r, t as usize);
                        da.row_mut(r)[t as usize] = (p - 1.0) * gv;
                    }
                    accumulate(grad_slots, pool, *logits, da);
                    pool.recycle(g);
                }
                Op::SubsetSoftmaxCe { x, w, b, cands, offsets, targets } => {
                    let gv = g.get(0, 0);
                    let probs = aux[idx].as_ref().expect("subset ce aux missing");
                    let xv = &values[x.index()];
                    let (rows, in_dim) = xv.shape();
                    // dlogits (flattened) = (p - onehot) * gv.
                    let mut dl = pool.take_scratch(1, cands.len());
                    for (d, &p) in dl.data_mut().iter_mut().zip(probs.data()) {
                        *d = p * gv;
                    }
                    for (i, &t) in targets.iter().enumerate() {
                        let at = offsets[i] as usize + t as usize;
                        dl.data_mut()[at] = (probs.data()[at] - 1.0) * gv;
                    }
                    // dx rows + dW scatter share one pass over the spans.
                    let mut dx = pool.take_zeroed(rows, in_dim);
                    {
                        let (wv, wg) = store.value_and_grad_mut(*w);
                        for i in 0..rows {
                            let span = offsets[i] as usize..offsets[i + 1] as usize;
                            let x_row = xv.row(i);
                            let dx_row = dx.row_mut(i);
                            for (&c, &d) in cands[span.clone()].iter().zip(&dl.data()[span]) {
                                let w_row = wv.row(c as usize);
                                let g_row = wg.row_mut(c as usize);
                                for k in 0..in_dim {
                                    dx_row[k] = d.mul_add(w_row[k], dx_row[k]);
                                    g_row[k] = d.mul_add(x_row[k], g_row[k]);
                                }
                            }
                        }
                    }
                    {
                        let bg = store.grad_mut(*b);
                        for (&c, &d) in cands.iter().zip(dl.data()) {
                            bg.data_mut()[c as usize] += d;
                        }
                    }
                    accumulate(grad_slots, pool, *x, dx);
                    pool.recycle(dl);
                    pool.recycle(g);
                }
                Op::Reshape(a) => {
                    let (r, c) = values[a.index()].shape();
                    accumulate(grad_slots, pool, *a, Tensor::from_vec(r, c, g.into_data()));
                }
                Op::LogSumExpRows(a) => {
                    let x = &values[a.index()];
                    let (rows, cols) = x.shape();
                    let mut da = pool.take_scratch(rows, cols);
                    for r in 0..rows {
                        let lse = values[idx].get(r, 0);
                        let gr = g.get(r, 0);
                        for (d, &xi) in da.row_mut(r).iter_mut().zip(x.row(r)) {
                            *d = gr * (xi - lse).exp();
                        }
                    }
                    accumulate(grad_slots, pool, *a, da);
                    pool.recycle(g);
                }
            }
        }
    }
}

/// Shared fused-GRU gate pass: reads pregated inputs from rows
/// `[gx_start, gx_start + batch)` of `gx`, the recurrent projection from
/// `gh`, and fills `out` (`h'`) plus `packed` (`[z | r | n | nh]`). Same
/// three-pass loop structure as `GruCell::infer_step_rows`, so taped and
/// tape-free steps produce bit-identical hidden states.
fn gru_gate_forward(
    gx: &Tensor,
    gx_start: usize,
    gh: &Tensor,
    hv: &Tensor,
    out: &mut Tensor,
    packed: &mut Tensor,
) {
    let (bsz, hd) = hv.shape();
    for r in 0..bsz {
        let gx_row = gx.row(gx_start + r);
        let gh_row = gh.row(r);
        let h_row = hv.row(r);
        let (z_buf, rest) = packed.row_mut(r).split_at_mut(hd);
        let (r_buf, rest) = rest.split_at_mut(hd);
        let (n_buf, nh_buf) = rest.split_at_mut(hd);
        for (c, o) in z_buf.iter_mut().enumerate() {
            *o = crate::math::fast_sigmoid(gx_row[c] + gh_row[c]);
        }
        for (c, o) in r_buf.iter_mut().enumerate() {
            *o = crate::math::fast_sigmoid(gx_row[hd + c] + gh_row[hd + c]);
        }
        nh_buf.copy_from_slice(&gh_row[2 * hd..3 * hd]);
        let out_row = out.row_mut(r);
        for (c, o) in out_row.iter_mut().enumerate() {
            let n = crate::math::fast_tanh(gx_row[2 * hd + c] + r_buf[c] * nh_buf[c]);
            n_buf[c] = n;
            *o = n + z_buf[c] * (h_row[c] - n);
        }
    }
}

/// Per-row chain rule of the fused GRU gates, shared by both backward
/// variants (the delicate dn/dz/dr derivation lives once, mirroring
/// [`gru_gate_forward`]): fills the input-gate gradients
/// `dgx_row = [dzx | drx | dnx]` (`ACC_GX` selects plain writes vs
/// accumulation into a shared slot row, for the pregated variant), writes
/// the recurrent-gate gradients `dgh_row = [dz_in | dr_in | dn_in·r]`, and
/// adds the direct `g⊙z` term into `dh_row`.
fn gru_gate_backward_row<const ACC_GX: bool>(
    pk: &[f32],
    g_row: &[f32],
    h_row: &[f32],
    hd: usize,
    dgx_row: &mut [f32],
    dgh_row: &mut [f32],
    dh_row: &mut [f32],
) {
    let (z, rest) = pk.split_at(hd);
    let (rg, rest) = rest.split_at(hd);
    let (nn, nh) = rest.split_at(hd);
    let (dzx, rest) = dgx_row.split_at_mut(hd);
    let (drx, dnx) = rest.split_at_mut(hd);
    let (ghz, rest) = dgh_row.split_at_mut(hd);
    let (ghr, ghn) = rest.split_at_mut(hd);
    for c in 0..hd {
        let gv = g_row[c];
        let zc = z[c];
        let nc = nn[c];
        let rc = rg[c];
        // h' = n + z (h - n)
        let dn = gv * (1.0 - zc);
        let dz = gv * (h_row[c] - nc);
        let dn_in = dn * (1.0 - nc * nc);
        let dz_in = dz * zc * (1.0 - zc);
        let dr = dn_in * nh[c];
        let dr_in = dr * rc * (1.0 - rc);
        if ACC_GX {
            dzx[c] += dz_in;
            drx[c] += dr_in;
            dnx[c] += dn_in;
        } else {
            dzx[c] = dz_in;
            drx[c] = dr_in;
            dnx[c] = dn_in;
        }
        ghz[c] = dz_in;
        ghr[c] = dr_in;
        ghn[c] = dn_in * rc;
        dh_row[c] += gv * zc;
    }
}

/// Mutable access to two distinct gradient slots at once.
fn two_slots_mut(
    slots: &mut [Option<Tensor>],
    a: usize,
    b: usize,
) -> (&mut Option<Tensor>, &mut Option<Tensor>) {
    debug_assert_ne!(a, b, "two_slots_mut: aliasing slots");
    if a < b {
        let (left, right) = slots.split_at_mut(b);
        (&mut left[a], &mut right[0])
    } else {
        let (left, right) = slots.split_at_mut(a);
        (&mut right[0], &mut left[b])
    }
}

/// Backward of the fused GRU step: recovers the gate gradients from the
/// cached `[z | r | n | nh]` activations, then routes the input / recurrent
/// weight gradients through the transpose-aware matmul kernels.
#[allow(clippy::too_many_arguments)]
fn gru_step_backward(
    values: &[Tensor],
    aux: &[Option<Tensor>],
    pool: &mut TensorPool,
    grad_slots: &mut [Option<Tensor>],
    idx: usize,
    g: &Tensor,
    x: Var,
    h: Var,
    w: Var,
    u: Var,
    b: Var,
) {
    let packed = aux[idx].as_ref().expect("gru aux missing");
    let hv = &values[h.index()];
    let (bsz, hd) = hv.shape();

    // The recurrence reuses h / w / u / b across every step of a sequence,
    // so their gradient slots almost always exist already — accumulate
    // straight into them with the `*_acc_into` kernels instead of
    // materialising per-step products plus an add pass.
    let ensure =
        |grad_slots: &mut [Option<Tensor>], pool: &mut TensorPool, v: Var, r: usize, c: usize| {
            if grad_slots[v.index()].is_none() {
                grad_slots[v.index()] = Some(pool.take_zeroed(r, c));
            }
        };

    let mut dgx = pool.take_scratch(bsz, 3 * hd);
    let mut dgh = pool.take_scratch(bsz, 3 * hd);
    ensure(grad_slots, pool, h, bsz, hd);
    {
        let dh = grad_slots[h.index()].as_mut().expect("h slot");
        for row in 0..bsz {
            gru_gate_backward_row::<false>(
                packed.row(row),
                g.row(row),
                hv.row(row),
                hd,
                dgx.row_mut(row),
                dgh.row_mut(row),
                dh.row_mut(row),
            );
        }
    }

    let wv = &values[w.index()];
    let uv = &values[u.index()];
    let xv = &values[x.index()];

    // dx = dgx · Wᵀ (x is a per-step embedding gather — fresh slot).
    let mut dx = pool.take_scratch(bsz, wv.rows());
    dgx.matmul_t_into(wv, &mut dx);
    // dh += dgh · Uᵀ (the direct g·z part is already in the slot).
    dgh.matmul_t_acc_into(uv, grad_slots[h.index()].as_mut().expect("h slot"));
    // dW += Xᵀ · dgx
    ensure(grad_slots, pool, w, wv.rows(), wv.cols());
    xv.matmul_tn_acc_into(&dgx, grad_slots[w.index()].as_mut().expect("w slot"));
    // dU += Hᵀ · dgh
    ensure(grad_slots, pool, u, uv.rows(), uv.cols());
    hv.matmul_tn_acc_into(&dgh, grad_slots[u.index()].as_mut().expect("u slot"));
    // db += column sums of dgx
    ensure(grad_slots, pool, b, 1, 3 * hd);
    {
        let db = grad_slots[b.index()].as_mut().expect("b slot");
        for row in 0..bsz {
            for (d, &v) in db.row_mut(0).iter_mut().zip(dgx.row(row)) {
                *d += v;
            }
        }
    }

    pool.recycle(dgx);
    pool.recycle(dgh);
    accumulate(grad_slots, pool, x, dx);
}

/// Backward of the pregated GRU step: gate input gradients land directly
/// in the matching rows of the `gx` slot (the hoisted input-projection
/// GEMM's own backward handles `W`/`b`); the recurrent terms accumulate in
/// place like [`gru_step_backward`].
#[allow(clippy::too_many_arguments)]
fn gru_pregated_backward(
    values: &[Tensor],
    aux: &[Option<Tensor>],
    pool: &mut TensorPool,
    grad_slots: &mut [Option<Tensor>],
    idx: usize,
    g: &Tensor,
    gx: Var,
    start: usize,
    h: Var,
    u: Var,
) {
    let packed = aux[idx].as_ref().expect("gru aux missing");
    let hv = &values[h.index()];
    let (bsz, hd) = hv.shape();
    let (gxr, gxc) = values[gx.index()].shape();

    let mut dgh = pool.take_scratch(bsz, 3 * hd);
    {
        let (gx_slot, h_slot) = two_slots_mut(grad_slots, gx.index(), h.index());
        if gx_slot.is_none() {
            *gx_slot = Some(pool.take_zeroed(gxr, gxc));
        }
        if h_slot.is_none() {
            *h_slot = Some(pool.take_zeroed(bsz, hd));
        }
        let dgx = gx_slot.as_mut().expect("gx slot");
        let dh = h_slot.as_mut().expect("h slot");
        for row in 0..bsz {
            gru_gate_backward_row::<true>(
                packed.row(row),
                g.row(row),
                hv.row(row),
                hd,
                dgx.row_mut(start + row),
                dgh.row_mut(row),
                dh.row_mut(row),
            );
        }
    }

    let uv = &values[u.index()];
    // dh += dgh · Uᵀ
    dgh.matmul_t_acc_into(uv, grad_slots[h.index()].as_mut().expect("h slot"));
    // dU += Hᵀ · dgh
    if grad_slots[u.index()].is_none() {
        grad_slots[u.index()] = Some(pool.take_zeroed(uv.rows(), uv.cols()));
    }
    hv.matmul_tn_acc_into(&dgh, grad_slots[u.index()].as_mut().expect("u slot"));
    pool.recycle(dgh);
}

/// Exact maximum of a slice via 8 parallel lanes. `max` is associative, so
/// the result is identical to a serial fold — the lanes only break the
/// loop-carried dependency so the compiler can vectorise.
fn fold_max(xs: &[f32]) -> f32 {
    let mut lanes = [f32::NEG_INFINITY; 8];
    let mut chunks = xs.chunks_exact(8);
    for ch in chunks.by_ref() {
        for (l, &x) in lanes.iter_mut().zip(ch) {
            *l = l.max(x);
        }
    }
    let mut m = f32::NEG_INFINITY;
    for &x in chunks.remainder() {
        m = m.max(x);
    }
    for &l in &lanes {
        m = m.max(l);
    }
    m
}

/// Writes `fast_exp(x - max)` into `out` and returns the sum of the written
/// values. Two passes so each vectorises: a pure-`f32` exponential sweep,
/// then a 4-lane `f64` reduction (the sum reassociation is inside the CE
/// node's documented fast-math tolerance).
fn stable_exp_sum_into(xs: &[f32], max: f32, out: &mut [f32]) -> f64 {
    debug_assert_eq!(xs.len(), out.len());
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = crate::math::fast_exp(x - max);
    }
    let mut lanes = [0.0f64; 4];
    let mut chunks = out.chunks_exact(4);
    for ch in chunks.by_ref() {
        for (l, &e) in lanes.iter_mut().zip(ch) {
            *l += e as f64;
        }
    }
    for &e in chunks.remainder() {
        lanes[0] += e as f64;
    }
    lanes.iter().sum()
}

/// Numerically stable `log(sum(exp(xs)))` over a slice.
pub fn logsumexp(xs: &[f32]) -> f32 {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f64 = xs.iter().map(|&x| ((x - max) as f64).exp()).sum();
    max + (sum as f32).ln()
}

/// Adds `g` into the gradient slot of `v`, recycling `g` when the slot is
/// already occupied.
fn accumulate(grad_slots: &mut [Option<Tensor>], pool: &mut TensorPool, v: Var, g: Tensor) {
    match &mut grad_slots[v.index()] {
        Some(existing) => {
            existing.add_assign(&g);
            pool.recycle(g);
        }
        slot @ None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(name: &str, t: Tensor) -> (ParamStore, ParamId) {
        let mut s = ParamStore::new();
        let id = s.add(name, t);
        (s, id)
    }

    #[test]
    fn forward_matmul_add_values() {
        let mut tape = Tape::new();
        let a = tape.input(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let w = tape.input(Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]));
        let b = tape.input(Tensor::from_vec(1, 2, vec![0.5, -0.5]));
        let h = tape.matmul(a, w);
        let y = tape.add(h, b);
        assert_eq!(tape.value(y).data(), &[1.5, 1.5]);
    }

    #[test]
    fn backward_linear_gradient() {
        // loss = sum(x · W); dW = xᵀ · 1
        let (mut store, w_id) = store_with("w", Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(1, 2, vec![5.0, 7.0]));
        let w = tape.param(&store, w_id);
        let y = tape.matmul(x, w);
        let loss = tape.sum_all(y);
        tape.backward(loss, &mut store);
        assert_eq!(store.grad(w_id).data(), &[5.0, 5.0, 7.0, 7.0]);
    }

    #[test]
    fn backward_gather_rows_scatters() {
        let (mut store, e_id) = store_with("emb", Tensor::from_vec(3, 2, vec![0.0; 6]));
        let mut tape = Tape::new();
        let rows = tape.gather_rows(&store, e_id, &[2, 2, 0]);
        let loss = tape.sum_all(rows);
        tape.backward(loss, &mut store);
        // Row 2 used twice, row 0 once, row 1 never.
        assert_eq!(store.grad(e_id).data(), &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn softmax_ce_matches_manual() {
        let mut tape = Tape::new();
        let logits = tape.input(Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let loss = tape.softmax_cross_entropy(logits, &[2]);
        let expected = logsumexp(&[1.0, 2.0, 3.0]) - 3.0;
        assert!((tape.value(loss).get(0, 0) - expected).abs() < 1e-5);
        let nll = tape.ce_row_nll(loss);
        assert!((nll[0] - expected as f64).abs() < 1e-5);
    }

    #[test]
    fn softmax_ce_gradient_is_probs_minus_onehot() {
        let (mut store, w_id) = store_with("logits", Tensor::from_vec(1, 3, vec![0.1, 0.2, 0.3]));
        let mut tape = Tape::new();
        let w = tape.param(&store, w_id);
        let loss = tape.softmax_cross_entropy(w, &[1]);
        tape.backward(loss, &mut store);
        let row = store.value(w_id).row(0).to_vec();
        let lse = logsumexp(&row);
        let g = store.grad(w_id);
        for (j, &x) in row.iter().enumerate() {
            let p = (x - lse).exp();
            let expected = if j == 1 { p - 1.0 } else { p };
            assert!((g.get(0, j) - expected).abs() < 1e-5);
        }
    }

    #[test]
    fn kl_std_normal_zero_at_standard() {
        let mut tape = Tape::new();
        let mu = tape.input(Tensor::zeros(1, 4));
        let logvar = tape.input(Tensor::zeros(1, 4));
        let kl = tape.kl_std_normal(mu, logvar);
        assert!(tape.value(kl).get(0, 0).abs() < 1e-6);
    }

    #[test]
    fn kl_std_normal_positive_otherwise() {
        let mut tape = Tape::new();
        let mu = tape.input(Tensor::from_vec(1, 2, vec![1.0, -2.0]));
        let logvar = tape.input(Tensor::from_vec(1, 2, vec![0.5, -0.5]));
        let kl = tape.kl_std_normal(mu, logvar);
        assert!(tape.value(kl).get(0, 0) > 0.0);
    }

    #[test]
    fn logsumexp_rows_stable_for_large_inputs() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(2, 2, vec![1000.0, 1000.0, -1000.0, -1000.0]));
        let out = tape.logsumexp_rows(x);
        let expected = 1000.0 + 2f32.ln();
        assert!((tape.value(out).get(0, 0) - expected).abs() < 1e-3);
        assert!((tape.value(out).get(1, 0) + 1000.0 - 2f32.ln()).abs() < 1e-3);
    }

    #[test]
    fn concat_slice_roundtrip_gradients() {
        let (mut store, id) = store_with("x", Tensor::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]));
        let mut tape = Tape::new();
        let x = tape.param(&store, id);
        let left = tape.slice_cols(x, 0, 2);
        let right = tape.slice_cols(x, 2, 2);
        let glued = tape.concat_cols(left, right);
        let doubled = tape.scale(glued, 2.0);
        let loss = tape.sum_all(doubled);
        tape.backward(loss, &mut store);
        assert_eq!(store.grad(id).data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn broadcast_add_bias_gradient_sums_rows() {
        let (mut store, b_id) = store_with("b", Tensor::from_vec(1, 2, vec![0.0, 0.0]));
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(3, 2, vec![1.0; 6]));
        let b = tape.param(&store, b_id);
        let y = tape.add(x, b);
        let loss = tape.sum_all(y);
        tape.backward(loss, &mut store);
        assert_eq!(store.grad(b_id).data(), &[3.0, 3.0]);
    }

    #[test]
    fn reused_node_accumulates_gradient() {
        // loss = sum(x * x): d/dx = 2x
        let (mut store, id) = store_with("x", Tensor::from_vec(1, 2, vec![3.0, -4.0]));
        let mut tape = Tape::new();
        let x = tape.param(&store, id);
        let sq = tape.mul(x, x);
        let loss = tape.sum_all(sq);
        tape.backward(loss, &mut store);
        assert_eq!(store.grad(id).data(), &[6.0, -8.0]);
    }

    #[test]
    fn tape_reset_reuses_buffers() {
        let mut tape = Tape::new();
        let a = tape.scalar(1.0);
        let _ = tape.add_scalar(a, 1.0);
        assert_eq!(tape.len(), 2);
        tape.reset();
        assert!(tape.is_empty());
        let b = tape.scalar(2.0);
        assert_eq!(tape.value(b).get(0, 0), 2.0);
    }

    #[test]
    fn repeated_passes_stop_allocating() {
        let (mut store, w_id) =
            store_with("w", Tensor::from_vec(3, 3, (0..9).map(|i| i as f32 * 0.1).collect()));
        let mut tape = Tape::new();
        let run = |tape: &mut Tape, store: &mut ParamStore| {
            tape.reset();
            let x = tape.input(Tensor::from_vec(2, 3, vec![0.5; 6]));
            let w = tape.param(store, w_id);
            let y = tape.matmul(x, w);
            let s = tape.sigmoid(y);
            let loss = tape.softmax_cross_entropy(s, &[0, 2]);
            tape.backward(loss, store);
        };
        run(&mut tape, &mut store);
        run(&mut tape, &mut store); // second pass may still grow the pool
        let (_, misses_after_warmup) = tape.pool_stats();
        for _ in 0..5 {
            run(&mut tape, &mut store);
        }
        let (hits, misses) = tape.pool_stats();
        assert_eq!(misses, misses_after_warmup, "steady-state pass allocated");
        assert!(hits > 0);
    }

    #[test]
    fn concat_rows_stacks_and_routes_gradients() {
        let (mut store, id) = store_with("x", Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let mut tape = Tape::new();
        let x = tape.param(&store, id);
        let y = tape.scale(x, 2.0);
        let stacked = tape.concat_rows(&[x, y]);
        assert_eq!(tape.value(stacked).shape(), (4, 2));
        assert_eq!(tape.value(stacked).data(), &[1.0, 2.0, 3.0, 4.0, 2.0, 4.0, 6.0, 8.0]);
        let loss = tape.sum_all(stacked);
        tape.backward(loss, &mut store);
        // d/dx of sum(x) + sum(2x) = 1 + 2.
        assert_eq!(store.grad(id).data(), &[3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn select_rows_gathers_and_scatter_adds() {
        let (mut store, id) =
            store_with("x", Tensor::from_vec(3, 2, vec![0., 1., 10., 11., 20., 21.]));
        let mut tape = Tape::new();
        let x = tape.param(&store, id);
        let picked = tape.select_rows(x, &[2, 0, 2]);
        assert_eq!(tape.value(picked).data(), &[20., 21., 0., 1., 20., 21.]);
        let loss = tape.sum_all(picked);
        tape.backward(loss, &mut store);
        assert_eq!(store.grad(id).data(), &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn gru_step_matches_composed_ops() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(17);
        let hd = 5;
        let in_dim = 3;
        let bsz = 4;
        let mut store = ParamStore::new();
        let w_id = store.add("w", Tensor::rand_uniform(in_dim, 3 * hd, -0.7, 0.7, &mut rng));
        let u_id = store.add("u", Tensor::rand_uniform(hd, 3 * hd, -0.7, 0.7, &mut rng));
        let b_id = store.add("b", Tensor::rand_uniform(1, 3 * hd, -0.3, 0.3, &mut rng));
        let x_t = Tensor::rand_uniform(bsz, in_dim, -1.0, 1.0, &mut rng);
        let h_t = Tensor::rand_uniform(bsz, hd, -0.9, 0.9, &mut rng);

        // Composed reference: the op-by-op GRU formulation.
        let composed = |tape: &mut Tape, store: &ParamStore| -> Var {
            let x = tape.input(x_t.clone());
            let h = tape.input(h_t.clone());
            let w = tape.param(store, w_id);
            let u = tape.param(store, u_id);
            let b = tape.param(store, b_id);
            let gx0 = tape.matmul(x, w);
            let gx = tape.add(gx0, b);
            let gh = tape.matmul(h, u);
            let zx = tape.slice_cols(gx, 0, hd);
            let zh = tape.slice_cols(gh, 0, hd);
            let z_in = tape.add(zx, zh);
            let z = tape.sigmoid(z_in);
            let rx = tape.slice_cols(gx, hd, hd);
            let rh = tape.slice_cols(gh, hd, hd);
            let r_in = tape.add(rx, rh);
            let r = tape.sigmoid(r_in);
            let nx = tape.slice_cols(gx, 2 * hd, hd);
            let nh = tape.slice_cols(gh, 2 * hd, hd);
            let rnh = tape.mul(r, nh);
            let n_in = tape.add(nx, rnh);
            let n = tape.tanh(n_in);
            let h_minus_n = tape.sub(h, n);
            let gated = tape.mul(z, h_minus_n);
            tape.add(n, gated)
        };

        let mut tape_ref = Tape::new();
        let out_ref = composed(&mut tape_ref, &store);
        let loss_ref = tape_ref.sum_all(out_ref);
        let mut store_ref = store.clone();
        tape_ref.backward(loss_ref, &mut store_ref);

        let mut tape_fused = Tape::new();
        let x = tape_fused.input(x_t.clone());
        let h = tape_fused.input(h_t.clone());
        let w = tape_fused.param(&store, w_id);
        let u = tape_fused.param(&store, u_id);
        let b = tape_fused.param(&store, b_id);
        let out = tape_fused.gru_step(x, h, w, u, b);
        let loss = tape_fused.sum_all(out);
        let mut store_fused = store.clone();
        tape_fused.backward(loss, &mut store_fused);

        // Values: fast-math gates vs std gates, abs error < 1e-6 each.
        for (a, b) in tape_fused.value(out).data().iter().zip(tape_ref.value(out_ref).data()) {
            assert!((a - b).abs() < 1e-5, "forward {a} vs {b}");
        }
        // Gradients agree to combined fast-math + reassociation tolerance.
        for id in store.ids() {
            for (a, b) in store_fused.grad(id).data().iter().zip(store_ref.grad(id).data()) {
                assert!((a - b).abs() < 1e-4, "grad {}: {a} vs {b}", store.name(id));
            }
        }
    }
}
