//! Shape-keyed tensor buffer pool.
//!
//! The tape's forward pass and `backward()` both churn through short-lived
//! tensors whose shapes repeat every trajectory (gate activations, logits,
//! gradients). [`TensorPool`] keeps the freed buffers keyed by element
//! count so steady-state training performs no heap allocation: the pool
//! warms up on the first tape pass of an epoch and is hit-only afterwards.
//!
//! Buffers are keyed by *element count*, not `(rows, cols)` — a freed
//! `4 x 12` gradient can come back as a `1 x 48` bias row. Small counts
//! (training shapes repeat exactly) key by their exact size; large counts
//! share power-of-two buckets, so the ragged micro-batch sizes of the
//! vocab-wide CE buffers (a different `tokens x vocab` every chunk) reuse
//! one buffer family instead of parking a new multi-MB allocation per
//! distinct size. Each bucket also caps its idle list, bounding worst-case
//! retention. Contents of a recycled buffer are arbitrary;
//! [`TensorPool::take_scratch`] hands them out as-is for callers that
//! overwrite every element, while [`TensorPool::take_zeroed`] /
//! [`TensorPool::take_full`] clear them first.

use std::collections::HashMap;

use crate::tensor::Tensor;

/// Element counts up to this size use exact-size buckets; larger buffers
/// share power-of-two buckets (and get resized on take).
const EXACT_BUCKET_MAX: usize = 4096;
/// Idle buffers retained per bucket; excess recycles are dropped.
const BUCKET_CAP: usize = 32;

/// Bucket key for an element count.
#[inline]
fn bucket(n: usize) -> usize {
    if n <= EXACT_BUCKET_MAX {
        n
    } else {
        n.next_power_of_two()
    }
}

/// Reusable buffer pool for [`Tensor`]s, keyed by bucketed element count.
#[derive(Debug, Default)]
pub struct TensorPool {
    free: HashMap<usize, Vec<Vec<f32>>>,
    hits: u64,
    misses: u64,
}

impl TensorPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A `rows x cols` tensor with **arbitrary contents** (recycled data or
    /// zeros). Only use when every element is overwritten before being read.
    pub fn take_scratch(&mut self, rows: usize, cols: usize) -> Tensor {
        let n = rows * cols;
        match self.free.get_mut(&bucket(n)).and_then(Vec::pop) {
            Some(mut buf) => {
                self.hits += 1;
                // Large buckets hold mixed sizes within one power of two;
                // the resize stays inside the buffer's capacity family and
                // settles after the first few chunks.
                if buf.len() != n {
                    buf.resize(n, 0.0);
                }
                Tensor::from_vec(rows, cols, buf)
            }
            None => {
                self.misses += 1;
                Tensor::zeros(rows, cols)
            }
        }
    }

    /// A zero-filled `rows x cols` tensor.
    pub fn take_zeroed(&mut self, rows: usize, cols: usize) -> Tensor {
        let mut t = self.take_scratch(rows, cols);
        t.fill_zero();
        t
    }

    /// A `rows x cols` tensor with every element set to `value`.
    pub fn take_full(&mut self, rows: usize, cols: usize, value: f32) -> Tensor {
        let mut t = self.take_scratch(rows, cols);
        t.data_mut().iter_mut().for_each(|x| *x = value);
        t
    }

    /// A pooled copy of `src`.
    pub fn take_copy(&mut self, src: &Tensor) -> Tensor {
        let mut t = self.take_scratch(src.rows(), src.cols());
        t.data_mut().copy_from_slice(src.data());
        t
    }

    /// Returns a tensor's buffer to the pool for reuse. Buffers beyond the
    /// per-bucket cap are dropped, so idle retention stays bounded even
    /// under adversarial shape sequences.
    pub fn recycle(&mut self, t: Tensor) {
        let n = t.len();
        if n == 0 {
            return;
        }
        let idle = self.free.entry(bucket(n)).or_default();
        if idle.len() < BUCKET_CAP {
            idle.push(t.into_data());
        }
    }

    /// Number of times a take was served from the free list.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of times a take had to allocate.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of buffers currently parked in the pool.
    pub fn idle_buffers(&self) -> usize {
        self.free.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycle_then_take_reuses_buffer() {
        let mut pool = TensorPool::new();
        let t = pool.take_zeroed(2, 3);
        assert_eq!(pool.misses(), 1);
        pool.recycle(t);
        assert_eq!(pool.idle_buffers(), 1);
        // Same element count, different shape: still a hit.
        let t2 = pool.take_zeroed(3, 2);
        assert_eq!(pool.hits(), 1);
        assert_eq!(t2.shape(), (3, 2));
        assert!(t2.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn take_full_and_copy_initialise() {
        let mut pool = TensorPool::new();
        let dirty = pool.take_full(1, 4, 7.5);
        assert!(dirty.data().iter().all(|&x| x == 7.5));
        pool.recycle(dirty);
        let ones = pool.take_full(2, 2, 1.0);
        assert!(ones.data().iter().all(|&x| x == 1.0));
        let copy = pool.take_copy(&ones);
        assert_eq!(copy.data(), ones.data());
    }

    #[test]
    fn zero_sized_tensors_are_not_pooled() {
        let mut pool = TensorPool::new();
        pool.recycle(Tensor::zeros(0, 5));
        assert_eq!(pool.idle_buffers(), 0);
    }

    #[test]
    fn large_ragged_sizes_share_one_bucket() {
        // Ragged micro-batch CE shapes (tokens x vocab) differ every chunk;
        // power-of-two bucketing must reuse the same buffer family instead
        // of parking one buffer per distinct size.
        let mut pool = TensorPool::new();
        let t = pool.take_zeroed(130, 514);
        pool.recycle(t);
        // Different element count, same power-of-two class.
        let t2 = pool.take_zeroed(140, 514);
        assert_eq!(pool.hits(), 1, "ragged large take should hit the bucket");
        assert_eq!(t2.shape(), (140, 514));
        assert!(t2.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn bucket_cap_bounds_idle_retention() {
        let mut pool = TensorPool::new();
        for _ in 0..(BUCKET_CAP + 10) {
            pool.recycle(Tensor::zeros(1, 8));
        }
        assert_eq!(pool.idle_buffers(), BUCKET_CAP);
    }
}
