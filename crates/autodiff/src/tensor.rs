//! Dense row-major 2-D `f32` tensor.
//!
//! This is the single value type flowing through the autodiff [`crate::Tape`].
//! Vectors are represented as `1 x n` tensors. The three matmul layouts the
//! models need — `A·B` ([`Tensor::matmul_into`]), `A·Bᵀ`
//! ([`Tensor::matmul_t_into`]) and `Aᵀ·B` ([`Tensor::matmul_tn_into`]) — all
//! share the same register-tiled, panel-packed FMA micro-kernel for
//! multi-row shapes and fall back to streaming `ikj`-style loops otherwise.
//!
//! Every kernel accumulates each output element over the inner dimension in
//! ascending order with `mul_add`, in both the tiled and the scalar paths,
//! so results are **bit-identical** across paths and across batch
//! row-stacking (verified by the `matmul_kernels` proptest battery).

use rand::Rng;

/// Row-tile height of the register-tiled matmul micro-kernel.
const MR: usize = 4;
/// Column-tile width of the register-tiled matmul micro-kernel (two
/// 256-bit vectors of `f32`; with `MR = 4` the 8 accumulators fit the
/// AVX2 register file without spills).
const NR: usize = 16;

std::thread_local! {
    /// Reusable packing panel for the tiled kernels. Training issues
    /// thousands of small tiled matmuls per epoch (GRU steps, head
    /// gradients); a per-call `vec![0.0; k * NR]` was measurable churn.
    static PACK_PANEL: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Runs `f` with a zero-free scratch panel of at least `len` floats
/// (contents arbitrary; the packing loops overwrite what they read).
fn with_panel<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    PACK_PANEL.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        f(&mut buf[..len])
    })
}

/// A dense, row-major `rows x cols` matrix of `f32`.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a `rows x cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` tensor with every element set to `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor { rows, cols, data: vec![value; rows * cols] }
    }

    /// Builds a tensor from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Tensor::from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Tensor { rows, cols, data }
    }

    /// Builds a `1 x n` row vector from a slice.
    pub fn row_vector(data: &[f32]) -> Self {
        Tensor { rows: 1, cols: data.len(), data: data.to_vec() }
    }

    /// Samples every element i.i.d. uniformly from `[lo, hi)`.
    pub fn rand_uniform<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        lo: f32,
        hi: f32,
        rng: &mut R,
    ) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { rows, cols, data }
    }

    /// Samples every element i.i.d. from a normal distribution
    /// `N(mean, std^2)` using the Box-Muller transform (avoids a dependency
    /// on `rand_distr`, which is not on the allowed crate list).
    pub fn randn<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        mean: f32,
        std: f32,
        rng: &mut R,
    ) -> Self {
        let n = rows * cols;
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let (z0, z1) = box_muller(rng);
            data.push(mean + std * z0);
            if data.len() < n {
                data.push(mean + std * z1);
            }
        }
        Tensor { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data vector.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Sets every element to zero without reallocating.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// `self += other` (shapes must match).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += scale * other` (shapes must match).
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Sum of all elements (accumulated in `f64` for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Squared L2 norm of all elements (accumulated in `f64`, four
    /// parallel lanes so the reduction vectorises — gradient clipping
    /// walks every parameter once per optimiser step).
    pub fn sq_norm(&self) -> f64 {
        let mut lanes = [0.0f64; 4];
        let mut chunks = self.data.chunks_exact(4);
        for ch in chunks.by_ref() {
            for (l, &x) in lanes.iter_mut().zip(ch) {
                *l += (x as f64) * (x as f64);
            }
        }
        for &x in chunks.remainder() {
            lanes[0] += (x as f64) * (x as f64);
        }
        lanes.iter().sum()
    }

    /// Returns the transposed tensor.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// `out = self * other` where `self` is `m x k` and `other` is `k x n`.
    ///
    /// Multi-row inputs go through a register-tiled micro-kernel
    /// (`MR x NR` output tiles accumulated in registers, `k` innermost);
    /// single rows use the `ikj` streaming loop. Both accumulate each
    /// output element over `p = 0..k` in ascending order, so results are
    /// bit-identical between the two paths — batched inference that stacks
    /// rows gives exactly the per-row results.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        let (m, k) = self.shape();
        let (k2, n) = other.shape();
        assert_eq!(k, k2, "matmul: inner dimensions {k} vs {k2}");
        assert_eq!(out.shape(), (m, n), "matmul: bad output shape");
        if m >= MR && n >= NR {
            return self.matmul_into_tiled(other, out);
        }
        out.fill_zero();
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o = a.mul_add(b, *o);
                }
            }
        }
    }

    /// Register-tiled matmul: full `MR x NR` tiles keep their accumulators
    /// in registers across the whole `k` loop (the inner `NR` loop
    /// vectorises; `b`'s row slice is reused by all `MR` rows), edges fall
    /// back to scalar loops with the same per-element accumulation order.
    fn matmul_into_tiled(&self, other: &Tensor, out: &mut Tensor) {
        let (m, k) = self.shape();
        let n = other.cols();
        let a = &self.data;
        let b = &other.data;
        let main_m = m - m % MR;
        let main_n = n - n % NR;

        // `j0` outer / `i0` inner: the packed `k x NR` panel of `b` stays
        // hot in L1 across the whole sweep over `a`'s rows, so total cache
        // traffic is one read of `a` per column panel instead of one read
        // of `b` per row block (`b` is the large operand in the batched
        // GRU/projection shapes). Packing makes the panel's loads
        // contiguous and cache-line aligned regardless of `n`.
        with_panel(k * NR, |panel| {
            let mut j0 = 0;
            while j0 < main_n {
                for p in 0..k {
                    panel[p * NR..(p + 1) * NR].copy_from_slice(&b[p * n + j0..p * n + j0 + NR]);
                }
                let mut i0 = 0;
                while i0 < main_m {
                    // Fixed-length row views let the compiler elide bounds
                    // checks in the p-loop below.
                    let a_rows: [&[f32]; MR] =
                        std::array::from_fn(|di| &a[(i0 + di) * k..(i0 + di) * k + k]);
                    let mut acc = [[0.0f32; NR]; MR];
                    for (p, b_chunk) in panel.chunks_exact(NR).enumerate() {
                        let b_chunk: &[f32; NR] = b_chunk.try_into().expect("NR-wide");
                        for (di, acc_row) in acc.iter_mut().enumerate() {
                            let av = a_rows[di][p];
                            for (o, &bv) in acc_row.iter_mut().zip(b_chunk) {
                                *o = av.mul_add(bv, *o);
                            }
                        }
                    }
                    for (di, acc_row) in acc.iter().enumerate() {
                        out.data[(i0 + di) * n + j0..(i0 + di) * n + j0 + NR]
                            .copy_from_slice(acc_row);
                    }
                    i0 += MR;
                }
                j0 += NR;
            }
        });

        // Right edge (all rows, trailing columns) and bottom edge
        // (trailing rows, all columns): plain k-ascending loops.
        for i in 0..m {
            let (j_start, j_end) = if i < main_m { (main_n, n) } else { (0, n) };
            if j_start == j_end {
                continue;
            }
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n + j_start..i * n + j_end];
            out_row.iter_mut().for_each(|o| *o = 0.0);
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[p * n + j_start..p * n + j_end];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o = av.mul_add(bv, *o);
                }
            }
        }
    }

    /// Convenience allocating wrapper around [`Tensor::matmul_into`].
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `out = self * other^T` where `self` is `m x k` and `other` is `n x k`.
    ///
    /// Both operands are walked along contiguous rows, so this is the
    /// preferred kernel when the right operand is naturally stored row-major
    /// per output class (e.g. projecting onto a subset of embedding rows).
    /// Multi-row inputs go through the same register-tiled micro-kernel as
    /// [`Tensor::matmul_into`] (the `NR`-wide panel of `other` is packed
    /// transposed); single rows keep the streaming dot-product loop. Both
    /// paths accumulate over `k` in ascending order, so results are
    /// bit-identical.
    pub fn matmul_t_into(&self, other: &Tensor, out: &mut Tensor) {
        let (m, k) = self.shape();
        let (n, k2) = other.shape();
        assert_eq!(k, k2, "matmul_t: inner dimensions {k} vs {k2}");
        assert_eq!(out.shape(), (m, n), "matmul_t: bad output shape");
        if m >= MR && n >= NR {
            return self.matmul_t_into_tiled::<false>(other, out);
        }
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc = a.mul_add(b, acc);
                }
                out.data[i * n + j] = acc;
            }
        }
    }

    /// Register-tiled `A·Bᵀ`: identical tile structure to
    /// [`Tensor::matmul_into_tiled`], except the `k x NR` panel is packed
    /// from `NR` *rows* of `other` (a small transpose) instead of `NR`
    /// columns. The packing is the only difference — the micro-kernel and
    /// its accumulation order are shared, so `a.matmul_t(b)` equals
    /// `a.matmul(&b.transpose())` bit for bit.
    fn matmul_t_into_tiled<const ACC: bool>(&self, other: &Tensor, out: &mut Tensor) {
        let (m, k) = self.shape();
        let n = other.rows();
        let a = &self.data;
        let b = &other.data;
        let main_m = m - m % MR;
        let main_n = n - n % NR;

        with_panel(k * NR, |panel| {
            let mut j0 = 0;
            while j0 < main_n {
                // panel[p][jj] = b[(j0 + jj)][p]: transpose NR rows of
                // `other` into the k-major layout the shared micro-kernel
                // streams.
                for jj in 0..NR {
                    let b_row = &b[(j0 + jj) * k..(j0 + jj + 1) * k];
                    for (p, &bv) in b_row.iter().enumerate() {
                        panel[p * NR + jj] = bv;
                    }
                }
                let mut i0 = 0;
                while i0 < main_m {
                    let a_rows: [&[f32]; MR] =
                        std::array::from_fn(|di| &a[(i0 + di) * k..(i0 + di) * k + k]);
                    let mut acc = [[0.0f32; NR]; MR];
                    if ACC {
                        for (di, acc_row) in acc.iter_mut().enumerate() {
                            acc_row.copy_from_slice(
                                &out.data[(i0 + di) * n + j0..(i0 + di) * n + j0 + NR],
                            );
                        }
                    }
                    for (p, b_chunk) in panel.chunks_exact(NR).enumerate() {
                        let b_chunk: &[f32; NR] = b_chunk.try_into().expect("NR-wide");
                        for (di, acc_row) in acc.iter_mut().enumerate() {
                            let av = a_rows[di][p];
                            for (o, &bv) in acc_row.iter_mut().zip(b_chunk) {
                                *o = av.mul_add(bv, *o);
                            }
                        }
                    }
                    for (di, acc_row) in acc.iter().enumerate() {
                        out.data[(i0 + di) * n + j0..(i0 + di) * n + j0 + NR]
                            .copy_from_slice(acc_row);
                    }
                    i0 += MR;
                }
                j0 += NR;
            }
        });

        // Right edge (all rows, trailing columns of `out` = trailing rows of
        // `other`) and bottom edge: contiguous-row dot products, identical
        // accumulation order to the single-row path.
        for i in 0..m {
            let (j_start, j_end) = if i < main_m { (main_n, n) } else { (0, n) };
            let a_row = &a[i * k..(i + 1) * k];
            for j in j_start..j_end {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = if ACC { out.data[i * n + j] } else { 0.0f32 };
                for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                    acc = av.mul_add(bv, acc);
                }
                out.data[i * n + j] = acc;
            }
        }
    }

    /// Convenience allocating wrapper around [`Tensor::matmul_t_into`].
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.rows);
        self.matmul_t_into(other, &mut out);
        out
    }

    /// `out += self * other^T` (accumulating [`Tensor::matmul_t_into`]).
    ///
    /// Gradient accumulation form: recurrent backward steps add straight
    /// into the shared gradient slot instead of materialising a fresh
    /// product and an extra add pass. The running value continues the same
    /// ascending-`k` `mul_add` chain.
    pub fn matmul_t_acc_into(&self, other: &Tensor, out: &mut Tensor) {
        let (m, k) = self.shape();
        let (n, k2) = other.shape();
        assert_eq!(k, k2, "matmul_t_acc: inner dimensions {k} vs {k2}");
        assert_eq!(out.shape(), (m, n), "matmul_t_acc: bad output shape");
        if m >= MR && n >= NR {
            return self.matmul_t_into_tiled::<true>(other, out);
        }
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = out.data[i * n + j];
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc = a.mul_add(b, acc);
                }
                out.data[i * n + j] = acc;
            }
        }
    }

    /// `out += self^T * other` (accumulating [`Tensor::matmul_tn_into`]).
    /// Same outer-product loop; the existing `out` contents seed the
    /// accumulators.
    pub fn matmul_tn_acc_into(&self, other: &Tensor, out: &mut Tensor) {
        let (p, m) = self.shape();
        let (p2, n) = other.shape();
        assert_eq!(p, p2, "matmul_tn_acc: outer dimensions {p} vs {p2}");
        assert_eq!(out.shape(), (m, n), "matmul_tn_acc: bad output shape");
        if m >= MR && n >= NR {
            return self.matmul_tn_into_tiled::<true>(other, out);
        }
        for q in 0..p {
            let a_row = &self.data[q * m..(q + 1) * m];
            let b_row = &other.data[q * n..(q + 1) * n];
            for (i, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o = av.mul_add(bv, *o);
                }
            }
        }
    }

    /// `out = self^T * other` where `self` is `p x m` and `other` is `p x n`.
    ///
    /// This is the gradient kernel of the tape's matmul rules
    /// (`dB = Aᵀ·g`, `dBᵀ = gᵀ·A`): it reads both operands in their stored
    /// row-major layout, so the backward pass never materialises an explicit
    /// [`Tensor::transpose`] copy. Accumulation per output element runs over
    /// `p` in ascending order with `mul_add` in every path, making the
    /// result bit-identical to `self.transpose().matmul(other)`.
    pub fn matmul_tn_into(&self, other: &Tensor, out: &mut Tensor) {
        let (p, m) = self.shape();
        let (p2, n) = other.shape();
        assert_eq!(p, p2, "matmul_tn: outer dimensions {p} vs {p2}");
        assert_eq!(out.shape(), (m, n), "matmul_tn: bad output shape");
        if m >= MR && n >= NR {
            return self.matmul_tn_into_tiled::<false>(other, out);
        }
        out.fill_zero();
        // Outer-product accumulation: each `p`-row of `self` scales the
        // matching row of `other` into `m` output rows (inner axpy over `n`
        // vectorises; `p` stays outermost so the per-element order is
        // `p`-ascending).
        for q in 0..p {
            let a_row = &self.data[q * m..(q + 1) * m];
            let b_row = &other.data[q * n..(q + 1) * n];
            for (i, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o = av.mul_add(bv, *o);
                }
            }
        }
    }

    /// Register-tiled `Aᵀ·B`: `MR x NR` output tiles accumulate in
    /// registers over the whole shared dimension `p`; the `p x NR` panel of
    /// `other` is packed once per column block and reused by every row
    /// block, and `out` is written exactly once (the untiled loop would
    /// re-stream the whole output `p` times). Edges fall back to scalar
    /// `p`-ascending dots.
    fn matmul_tn_into_tiled<const ACC: bool>(&self, other: &Tensor, out: &mut Tensor) {
        let (p, m) = self.shape();
        let n = other.cols();
        let a = &self.data;
        let b = &other.data;
        let main_m = m - m % MR;
        let main_n = n - n % NR;

        with_panel(p * NR, |panel| {
            let mut j0 = 0;
            while j0 < main_n {
                for q in 0..p {
                    panel[q * NR..(q + 1) * NR].copy_from_slice(&b[q * n + j0..q * n + j0 + NR]);
                }
                let mut i0 = 0;
                while i0 < main_m {
                    let mut acc = [[0.0f32; NR]; MR];
                    if ACC {
                        for (di, acc_row) in acc.iter_mut().enumerate() {
                            acc_row.copy_from_slice(
                                &out.data[(i0 + di) * n + j0..(i0 + di) * n + j0 + NR],
                            );
                        }
                    }
                    for (q, b_chunk) in panel.chunks_exact(NR).enumerate() {
                        let b_chunk: &[f32; NR] = b_chunk.try_into().expect("NR-wide");
                        // a[q][i0 + di]: one strided load per tile row.
                        let a_row = &a[q * m + i0..q * m + i0 + MR];
                        for (di, acc_row) in acc.iter_mut().enumerate() {
                            let av = a_row[di];
                            for (o, &bv) in acc_row.iter_mut().zip(b_chunk) {
                                *o = av.mul_add(bv, *o);
                            }
                        }
                    }
                    for (di, acc_row) in acc.iter().enumerate() {
                        out.data[(i0 + di) * n + j0..(i0 + di) * n + j0 + NR]
                            .copy_from_slice(acc_row);
                    }
                    i0 += MR;
                }
                j0 += NR;
            }
        });

        // Edges: scalar dots over `p` (both loads strided; edge areas are
        // at most `MR - 1` rows / `NR - 1` columns wide).
        for i in 0..m {
            let (j_start, j_end) = if i < main_m { (main_n, n) } else { (0, n) };
            for j in j_start..j_end {
                let mut acc = if ACC { out.data[i * n + j] } else { 0.0f32 };
                for q in 0..p {
                    acc = a[q * m + i].mul_add(b[q * n + j], acc);
                }
                out.data[i * n + j] = acc;
            }
        }
    }

    /// Convenience allocating wrapper around [`Tensor::matmul_tn_into`].
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.cols, other.cols);
        self.matmul_tn_into(other, &mut out);
        out
    }

    /// Gathers the given rows into a new `ids.len() x cols` tensor.
    pub fn gather_rows(&self, ids: &[u32]) -> Tensor {
        let mut out = Tensor::zeros(ids.len(), self.cols);
        for (i, &id) in ids.iter().enumerate() {
            let id = id as usize;
            assert!(id < self.rows, "gather_rows: row {id} out of {}", self.rows);
            out.row_mut(i).copy_from_slice(self.row(id));
        }
        out
    }

    /// True if every element is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

/// One draw of the Box-Muller transform: two independent `N(0, 1)` samples.
fn box_muller<R: Rng + ?Sized>(rng: &mut R) -> (f32, f32) {
    // Avoid u1 == 0 which would make ln(u1) = -inf.
    let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f32::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(3, 4);
        assert_eq!(t.shape(), (3, 4));
        assert_eq!(t.len(), 12);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(1, 2), 6.0);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_bad_len_panics() {
        let _ = Tensor::from_vec(2, 3, vec![1.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_t_matches_matmul_with_transpose() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::rand_uniform(3, 5, -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(4, 5, -1.0, 1.0, &mut rng);
        let via_t = a.matmul(&b.transpose());
        let direct = a.matmul_t(&b);
        for (x, y) in via_t.data().iter().zip(direct.data().iter()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_t_tiled_matches_naive_bitwise() {
        // Shapes straddling the MR/NR boundaries force both the tiled main
        // loop and its edge paths; the naive single-row path must agree
        // exactly.
        let mut rng = StdRng::seed_from_u64(11);
        for (m, k, n) in [(4, 3, 16), (5, 7, 17), (8, 1, 33), (4, 9, 16), (7, 5, 19)] {
            let a = Tensor::rand_uniform(m, k, -1.0, 1.0, &mut rng);
            let b = Tensor::rand_uniform(n, k, -1.0, 1.0, &mut rng);
            let tiled = a.matmul_t(&b);
            for i in 0..m {
                let row = Tensor::from_vec(1, k, a.row(i).to_vec());
                let naive = row.matmul_t(&b);
                assert_eq!(tiled.row(i), naive.row(0), "({m},{k},{n}) row {i}");
            }
        }
    }

    #[test]
    fn matmul_tn_matches_transpose_matmul_bitwise() {
        let mut rng = StdRng::seed_from_u64(12);
        for (p, m, n) in [(3, 2, 2), (5, 4, 16), (7, 5, 17), (1, 4, 16), (6, 3, 33)] {
            let a = Tensor::rand_uniform(p, m, -1.0, 1.0, &mut rng);
            let b = Tensor::rand_uniform(p, n, -1.0, 1.0, &mut rng);
            let direct = a.matmul_tn(&b);
            let via_t = a.transpose().matmul(&b);
            assert_eq!(direct.shape(), (m, n));
            assert_eq!(direct.data(), via_t.data(), "({p},{m},{n})");
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::rand_uniform(4, 6, -1.0, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gather_rows_picks_expected() {
        let t = Tensor::from_vec(3, 2, vec![0., 1., 10., 11., 20., 21.]);
        let g = t.gather_rows(&[2, 0, 2]);
        assert_eq!(g.data(), &[20., 21., 0., 1., 20., 21.]);
    }

    #[test]
    fn randn_moments_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::randn(100, 100, 0.5, 2.0, &mut rng);
        let n = t.len() as f64;
        let mean = t.sum() / n;
        let var = t.data().iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        // n = 10_000 draws of N(0.5, 2^2): the sample mean has std 0.02, the
        // sample variance std ~0.057; allow ±5 sigma.
        assert!((mean - 0.5).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::full(2, 2, 1.0);
        let b = Tensor::full(2, 2, 2.0);
        a.add_scaled(&b, 0.5);
        assert!(a.data().iter().all(|&x| (x - 2.0).abs() < 1e-6));
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::zeros(1, 3);
        assert!(t.all_finite());
        t.set(0, 1, f32::NAN);
        assert!(!t.all_finite());
    }
}
