//! Parameter storage shared across tapes.
//!
//! All learnable tensors of a model live in one [`ParamStore`]; the tape
//! references them by [`ParamId`] and `backward` accumulates gradients into
//! the store. Optimisers then consume `grads` and reset them.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::tensor::Tensor;

/// Dense handle to a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) u32);

impl ParamId {
    /// Index into the store's internal vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Owns every learnable tensor of a model together with its gradient buffer.
#[derive(Clone, Debug, Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its handle. Names are used for
    /// diagnostics and serialization and must be unique.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let name = name.into();
        assert!(!self.names.iter().any(|n| n == &name), "duplicate parameter name {name:?}");
        let (r, c) = value.shape();
        self.names.push(name);
        self.values.push(value);
        self.grads.push(Tensor::zeros(r, c));
        ParamId((self.values.len() - 1) as u32)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Parameter value.
    #[inline]
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.index()]
    }

    /// Mutable parameter value (used by optimisers).
    #[inline]
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.index()]
    }

    /// Accumulated gradient.
    #[inline]
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.index()]
    }

    /// Mutable gradient buffer.
    #[inline]
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.grads[id.index()]
    }

    /// Split borrow for optimisers: the mutable value and the (shared)
    /// gradient of `id` at once, so update loops need no gradient clone.
    #[inline]
    pub fn value_grad_mut(&mut self, id: ParamId) -> (&mut Tensor, &Tensor) {
        (&mut self.values[id.index()], &self.grads[id.index()])
    }

    /// Split borrow for scatter-style backward rules: the (shared) value
    /// and the mutable gradient of `id` at once.
    #[inline]
    pub fn value_and_grad_mut(&mut self, id: ParamId) -> (&Tensor, &mut Tensor) {
        (&self.values[id.index()], &mut self.grads[id.index()])
    }

    /// Parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.index()]
    }

    /// Iterate over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len() as u32).map(ParamId)
    }

    /// Resets every gradient buffer to zero.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f64 {
        self.grads.iter().map(Tensor::sq_norm).sum::<f64>().sqrt()
    }

    /// Rescales all gradients so their global L2 norm is at most `max_norm`.
    /// Returns the pre-clipping norm.
    pub fn clip_grad_norm(&mut self, max_norm: f64) -> f64 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = (max_norm / norm) as f32;
            for g in &mut self.grads {
                for x in g.data_mut() {
                    *x *= scale;
                }
            }
        }
        norm
    }

    /// True when every parameter value is finite.
    pub fn all_finite(&self) -> bool {
        self.values.iter().all(Tensor::all_finite)
    }

    /// Serialises names, shapes and values (not gradients) into a compact
    /// little-endian binary blob. Format:
    /// `u32 count, then per param: u32 name_len, name bytes, u32 rows,
    /// u32 cols, rows*cols f32`.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.num_scalars() * 4);
        buf.put_u32_le(self.values.len() as u32);
        for (name, value) in self.names.iter().zip(self.values.iter()) {
            buf.put_u32_le(name.len() as u32);
            buf.put_slice(name.as_bytes());
            buf.put_u32_le(value.rows() as u32);
            buf.put_u32_le(value.cols() as u32);
            for &x in value.data() {
                buf.put_f32_le(x);
            }
        }
        buf.freeze()
    }

    /// Deserialises a store written by [`ParamStore::to_bytes`].
    pub fn from_bytes(mut bytes: Bytes) -> Result<Self, CodecError> {
        let mut store = ParamStore::new();
        if bytes.remaining() < 4 {
            return Err(CodecError::Truncated("param count"));
        }
        let count = bytes.get_u32_le() as usize;
        for _ in 0..count {
            if bytes.remaining() < 4 {
                return Err(CodecError::Truncated("name length"));
            }
            let name_len = bytes.get_u32_le() as usize;
            if bytes.remaining() < name_len {
                return Err(CodecError::Truncated("name bytes"));
            }
            let name_bytes = bytes.copy_to_bytes(name_len);
            let name = String::from_utf8(name_bytes.to_vec()).map_err(|_| CodecError::BadUtf8)?;
            if bytes.remaining() < 8 {
                return Err(CodecError::Truncated("shape"));
            }
            let rows = bytes.get_u32_le() as usize;
            let cols = bytes.get_u32_le() as usize;
            let n = rows * cols;
            if bytes.remaining() < n * 4 {
                return Err(CodecError::Truncated("values"));
            }
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(bytes.get_f32_le());
            }
            store.add(name, Tensor::from_vec(rows, cols, data));
        }
        Ok(store)
    }

    /// Overwrites this store's values from another store with identical
    /// layout (same names, same order, same shapes). Used to restore the
    /// best checkpoint after training.
    pub fn copy_values_from(&mut self, other: &ParamStore) {
        assert_eq!(self.names, other.names, "param layout mismatch");
        for (dst, src) in self.values.iter_mut().zip(other.values.iter()) {
            assert_eq!(dst.shape(), src.shape(), "param shape mismatch");
            dst.data_mut().copy_from_slice(src.data());
        }
    }
}

/// Errors produced when decoding a serialized [`ParamStore`].
#[derive(Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the named field could be read.
    Truncated(&'static str),
    /// A parameter name was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated(what) => write!(f, "truncated input while reading {what}"),
            CodecError::BadUtf8 => write!(f, "parameter name is not valid UTF-8"),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ParamStore {
        let mut s = ParamStore::new();
        s.add("w", Tensor::from_vec(2, 2, vec![1.0, -2.0, 3.5, 0.25]));
        s.add("b", Tensor::from_vec(1, 3, vec![0.5, 0.0, -0.5]));
        s
    }

    #[test]
    fn add_and_lookup() {
        let s = sample_store();
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_scalars(), 7);
        let ids: Vec<_> = s.ids().collect();
        assert_eq!(s.name(ids[0]), "w");
        assert_eq!(s.value(ids[1]).shape(), (1, 3));
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_name_panics() {
        let mut s = sample_store();
        s.add("w", Tensor::zeros(1, 1));
    }

    #[test]
    fn roundtrip_codec() {
        let s = sample_store();
        let restored = ParamStore::from_bytes(s.to_bytes()).unwrap();
        assert_eq!(restored.len(), s.len());
        for id in s.ids() {
            assert_eq!(restored.name(id), s.name(id));
            assert_eq!(restored.value(id), s.value(id));
        }
    }

    #[test]
    fn truncated_codec_errors() {
        let s = sample_store();
        let bytes = s.to_bytes();
        let cut = bytes.slice(0..bytes.len() - 3);
        assert!(matches!(ParamStore::from_bytes(cut), Err(CodecError::Truncated(_))));
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut s = sample_store();
        let id = s.ids().next().unwrap();
        s.grad_mut(id).data_mut().copy_from_slice(&[3.0, 4.0, 0.0, 0.0]);
        let before = s.clip_grad_norm(1.0);
        assert!((before - 5.0).abs() < 1e-6);
        assert!((s.grad_norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_grads_resets() {
        let mut s = sample_store();
        let id = s.ids().next().unwrap();
        s.grad_mut(id).set(0, 0, 9.0);
        s.zero_grads();
        assert_eq!(s.grad(id).get(0, 0), 0.0);
    }
}
