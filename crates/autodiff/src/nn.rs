//! Neural-network layers built on the autodiff tape.
//!
//! Layers own only [`ParamId`]s; the actual tensors live in the shared
//! [`ParamStore`], so a model is a plain struct of layers plus one store.

use rand::Rng;

use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Xavier/Glorot uniform initialisation for a `fan_in x fan_out` matrix.
pub fn xavier_uniform<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(fan_in, fan_out, -limit, limit, rng)
}

/// Activation applied between MLP layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    Relu,
    Tanh,
    Sigmoid,
    /// No nonlinearity.
    Identity,
}

impl Activation {
    fn apply(self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Activation::Relu => tape.relu(x),
            Activation::Tanh => tape.tanh(x),
            Activation::Sigmoid => tape.sigmoid(x),
            Activation::Identity => x,
        }
    }
}

/// Fully connected layer `y = x · W + b` with `W: in x out`, `b: 1 x out`.
#[derive(Clone, Debug)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a new layer's parameters under `name.w` / `name.b`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let w = store.add(format!("{name}.w"), xavier_uniform(in_dim, out_dim, rng));
        let b = store.add(format!("{name}.b"), Tensor::zeros(1, out_dim));
        Linear { w, b, in_dim, out_dim }
    }

    /// Applies the layer to a `batch x in_dim` input (one fused
    /// matmul+bias node).
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        debug_assert_eq!(tape.value(x).cols(), self.in_dim, "Linear: input dim");
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        tape.linear(x, w, b, false)
    }

    /// Projects onto a *subset* of output classes: gathers rows `classes` of
    /// `Wᵀ` (plus matching bias entries) and returns `batch x classes.len()`
    /// logits. This is the road-constrained prediction kernel: cost is
    /// `O(in_dim * classes.len())` instead of `O(in_dim * out_dim)`.
    ///
    /// Requires the layer to have been created with [`Linear::new_rowmajor`]
    /// so that `W` is stored `out x in`.
    pub fn forward_subset(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        classes: &[u32],
    ) -> Var {
        debug_assert_eq!(
            store.value(self.w).cols(),
            self.in_dim,
            "forward_subset requires a row-major (out x in) weight; use new_rowmajor"
        );
        let w_rows = tape.gather_rows(store, self.w, classes); // k x in
        let logits = tape.matmul_t(x, w_rows); // batch x k
        let b = tape.gather_cols(store, self.b, classes);
        tape.add(logits, b)
    }

    /// Grouped class-subset softmax cross-entropy for a row-major layer:
    /// row `i` of `x` is scored against classes
    /// `cands[offsets[i]..offsets[i+1]]` with `targets[i]` indexing into
    /// its span; returns the summed CE loss as one fused tape node
    /// ([`Tape::subset_softmax_ce`]). This is the batched training-side
    /// counterpart of [`Linear::forward_subset`]: a micro-batch's entire
    /// road-constrained head records one node instead of several per
    /// transition.
    pub fn subset_cross_entropy(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        cands: &[u32],
        offsets: &[u32],
        targets: &[u32],
    ) -> Var {
        debug_assert_eq!(
            store.value(self.w).cols(),
            self.in_dim,
            "subset_cross_entropy requires a row-major (out x in) weight; use new_rowmajor"
        );
        tape.subset_softmax_ce(store, x, self.w, self.b, cands, offsets, targets)
    }

    /// Full projection for a layer created with [`Linear::new_rowmajor`]:
    /// `y = x · Wᵀ + b` with `W: out x in` (one fused matmul+bias node —
    /// the full-vocab heads produce `batch x vocab` outputs, so skipping
    /// the separate broadcast-add node saves a full-size copy in both
    /// passes).
    pub fn forward_rowmajor(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        tape.linear(x, w, b, true)
    }

    /// Registers a layer whose weight is stored `out x in` (one contiguous
    /// row per output class), enabling [`Linear::forward_subset`].
    pub fn new_rowmajor<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let w = store.add(format!("{name}.w"), xavier_uniform_out_in(in_dim, out_dim, rng));
        let b = store.add(format!("{name}.b"), Tensor::zeros(1, out_dim));
        Linear { w, b, in_dim, out_dim }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Weight parameter handle.
    pub fn weight(&self) -> ParamId {
        self.w
    }

    /// Bias parameter handle.
    pub fn bias(&self) -> ParamId {
        self.b
    }

    /// Forward pass without a tape (inference only): `x · W + b`.
    pub fn infer(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let mut out = x.matmul(store.value(self.w));
        add_bias_rows(&mut out, store.value(self.b));
        out
    }

    /// Tape-free forward for a row-major (`out x in`) layer: `x · Wᵀ + b`.
    pub fn infer_rowmajor(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let mut out = x.matmul_t(store.value(self.w));
        add_bias_rows(&mut out, store.value(self.b));
        out
    }

    /// Tape-free class-subset projection for a row-major layer; returns
    /// `batch x classes.len()` logits at `O(in_dim * classes.len())` cost.
    pub fn infer_subset(&self, store: &ParamStore, x: &Tensor, classes: &[u32]) -> Tensor {
        let w_rows = store.value(self.w).gather_rows(classes);
        let mut out = x.matmul_t(&w_rows);
        let bias = store.value(self.b);
        for r in 0..out.rows() {
            for (o, &c) in out.row_mut(r).iter_mut().zip(classes.iter()) {
                *o += bias.get(0, c as usize);
            }
        }
        out
    }
}

/// Adds a `1 x n` bias row to every row of `out`.
fn add_bias_rows(out: &mut Tensor, bias: &Tensor) {
    debug_assert_eq!(bias.rows(), 1);
    debug_assert_eq!(bias.cols(), out.cols());
    for r in 0..out.rows() {
        for (o, &b) in out.row_mut(r).iter_mut().zip(bias.row(0)) {
            *o += b;
        }
    }
}

fn xavier_uniform_out_in<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(fan_out, fan_in, -limit, limit, rng)
}

/// Token embedding table of shape `vocab x dim`.
#[derive(Clone, Debug)]
pub struct Embedding {
    table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Registers a new embedding table initialised `N(0, 0.1^2)`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let table = store.add(format!("{name}.table"), Tensor::randn(vocab, dim, 0.0, 0.1, rng));
        Embedding { table, vocab, dim }
    }

    /// Looks up `ids`, returning an `ids.len() x dim` tensor on the tape.
    pub fn lookup(&self, tape: &mut Tape, store: &ParamStore, ids: &[u32]) -> Var {
        debug_assert!(ids.iter().all(|&i| (i as usize) < self.vocab), "Embedding: id out of vocab");
        tape.gather_rows(store, self.table, ids)
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The underlying table parameter.
    pub fn table(&self) -> ParamId {
        self.table
    }

    /// Tape-free lookup for inference.
    pub fn embed(&self, store: &ParamStore, ids: &[u32]) -> Tensor {
        store.value(self.table).gather_rows(ids)
    }
}

/// Gated recurrent unit cell with packed gates.
///
/// `W: in x 3h`, `U: h x 3h`, `b: 1 x 3h`, gate order `[z | r | n]`:
/// ```text
/// z = sigmoid(xWz + hUz + bz)
/// r = sigmoid(xWr + hUr + br)
/// n = tanh  (xWn + r * (hUn) + bn)
/// h' = n + z * (h - n)
/// ```
#[derive(Clone, Debug)]
pub struct GruCell {
    w: ParamId,
    u: ParamId,
    b: ParamId,
    in_dim: usize,
    hidden: usize,
}

impl GruCell {
    /// Registers a new GRU cell.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        let w = store.add(format!("{name}.w"), xavier_uniform(in_dim, 3 * hidden, rng));
        let u = store.add(format!("{name}.u"), xavier_uniform(hidden, 3 * hidden, rng));
        let b = store.add(format!("{name}.b"), Tensor::zeros(1, 3 * hidden));
        GruCell { w, u, b, in_dim, hidden }
    }

    /// Hidden state width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Records the parameter leaves once per tape so repeated steps reuse
    /// the same nodes instead of copying weights every step.
    pub fn bind(&self, tape: &mut Tape, store: &ParamStore) -> BoundGru {
        BoundGru {
            w: tape.param(store, self.w),
            u: tape.param(store, self.u),
            b: tape.param(store, self.b),
            hidden: self.hidden,
        }
    }

    /// Tape-free recurrence step for inference. Bit-identical to
    /// [`BoundGru::step`]: both use the vectorised
    /// [`crate::math::fast_sigmoid`]/[`crate::math::fast_tanh`] gate
    /// kernels with the same three-pass loop structure.
    pub fn infer_step(&self, store: &ParamStore, x: &Tensor, h: &Tensor) -> Tensor {
        let mut gx = x.matmul(store.value(self.w));
        add_bias_rows(&mut gx, store.value(self.b));
        self.infer_step_pregated(store, &gx, h)
    }

    /// Tape-free recurrence step given the already-computed input gates
    /// `gx = x · W + b` (`batch x 3h`). This is the kernel behind batched
    /// fleet stepping: callers that cache the per-token input projection
    /// skip the `x · W` matmul entirely and pay only `h · U`.
    pub fn infer_step_pregated(&self, store: &ParamStore, gx: &Tensor, h: &Tensor) -> Tensor {
        debug_assert_eq!(gx.rows(), h.rows(), "GruCell: batch mismatch");
        self.infer_step_rows(store, |r| gx.row(r), h)
    }

    /// Batched recurrence step reading each row's pregated input through
    /// `gx_of` — e.g. straight out of a precomputed per-token projection
    /// table, skipping any gather copy.
    pub fn infer_step_rows<'a>(
        &self,
        store: &ParamStore,
        gx_of: impl Fn(usize) -> &'a [f32],
        h: &Tensor,
    ) -> Tensor {
        let hd = self.hidden;
        let gh = h.matmul(store.value(self.u));
        let rows = h.rows();
        let mut out = Tensor::zeros(rows, hd);
        // Row-reused scratch for the z and r gates. Three separate
        // elementwise passes (z, r, then n + blend) vectorise much better
        // than one fused loop: each pass inlines a single polynomial and
        // stays within the register budget.
        let mut z_buf = vec![0.0f32; hd];
        let mut r_buf = vec![0.0f32; hd];
        for r in 0..rows {
            let gx_row = gx_of(r);
            debug_assert_eq!(gx_row.len(), 3 * hd, "GruCell: pregated input width");
            let (zx, gx_rest) = gx_row.split_at(hd);
            let (rx, nx) = gx_rest.split_at(hd);
            let gh_row = gh.row(r);
            let (zh, gh_rest) = gh_row.split_at(hd);
            let (rh, nh) = gh_rest.split_at(hd);
            let h_row = h.row(r);
            for (o, (&x, &g)) in z_buf.iter_mut().zip(zx.iter().zip(zh)) {
                *o = crate::math::fast_sigmoid(x + g);
            }
            for (o, (&x, &g)) in r_buf.iter_mut().zip(rx.iter().zip(rh)) {
                *o = crate::math::fast_sigmoid(x + g);
            }
            for (c, o) in out.row_mut(r).iter_mut().enumerate() {
                let n = crate::math::fast_tanh(nx[c] + r_buf[c] * nh[c]);
                *o = n + z_buf[c] * (h_row[c] - n);
            }
        }
        out
    }

    /// Input-gate weight parameter handle (`in x 3h`).
    pub fn input_weight(&self) -> ParamId {
        self.w
    }

    /// Gate bias parameter handle (`1 x 3h`).
    pub fn gate_bias(&self) -> ParamId {
        self.b
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// A [`GruCell`] whose weights are already on a tape.
#[derive(Clone, Copy, Debug)]
pub struct BoundGru {
    w: Var,
    u: Var,
    b: Var,
    hidden: usize,
}

impl BoundGru {
    /// One recurrence step: `x` is `batch x in_dim`, `h` is `batch x hidden`.
    ///
    /// Records a single fused [`Tape::gru_step`] node (vectorised gate
    /// kernels, hand-fused backward) instead of the ~18 primitive ops of
    /// [`BoundGru::step_unfused`]. Hidden states are bit-identical to
    /// [`GruCell::infer_step`] and match the unfused formulation within the
    /// fast-math gate tolerance (absolute error < 1e-6 per element).
    pub fn step(&self, tape: &mut Tape, x: Var, h: Var) -> Var {
        tape.gru_step(x, h, self.w, self.u, self.b)
    }

    /// Computes the input-gate projections `x·W + b` for a whole
    /// row-stacked sequence in one fused GEMM — the training-side
    /// counterpart of the inference `StepCache`. Feed slices of the result
    /// to [`BoundGru::step_pregated`].
    pub fn input_gates(&self, tape: &mut Tape, x_all: Var) -> Var {
        tape.linear(x_all, self.w, self.b, false)
    }

    /// One recurrence step consuming rows `[start, start + h.rows)` of a
    /// precomputed [`BoundGru::input_gates`] block: only the `h·U` product
    /// runs inside the recurrence. Bit-identical to [`BoundGru::step`].
    pub fn step_pregated(&self, tape: &mut Tape, gx_all: Var, start: usize, h: Var) -> Var {
        tape.gru_step_pregated(gx_all, start, h, self.u)
    }

    /// The op-by-op GRU formulation using only primitive tape ops. Kept as
    /// the scalar reference path for equivalence tests and benchmarks of
    /// the fused step.
    pub fn step_unfused(&self, tape: &mut Tape, x: Var, h: Var) -> Var {
        let hd = self.hidden;
        let gx0 = tape.matmul(x, self.w);
        let gx = tape.add(gx0, self.b);
        let gh = tape.matmul(h, self.u);

        let zx = tape.slice_cols(gx, 0, hd);
        let zh = tape.slice_cols(gh, 0, hd);
        let z_in = tape.add(zx, zh);
        let z = tape.sigmoid(z_in);

        let rx = tape.slice_cols(gx, hd, hd);
        let rh = tape.slice_cols(gh, hd, hd);
        let r_in = tape.add(rx, rh);
        let r = tape.sigmoid(r_in);

        let nx = tape.slice_cols(gx, 2 * hd, hd);
        let nh = tape.slice_cols(gh, 2 * hd, hd);
        let rnh = tape.mul(r, nh);
        let n_in = tape.add(nx, rnh);
        let n = tape.tanh(n_in);

        // h' = n + z * (h - n)
        let h_minus_n = tape.sub(h, n);
        let gated = tape.mul(z, h_minus_n);
        tape.add(n, gated)
    }
}

/// Multi-layer perceptron with a shared hidden activation and linear output.
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[in, hidden, out]`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        dims: &[usize],
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp needs at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{name}.l{i}"), w[0], w[1], rng))
            .collect();
        Mlp { layers, activation }
    }

    /// Forward pass: activation between layers, linear final layer.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, mut x: Var) -> Var {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(tape, store, x);
            if i < last {
                x = self.activation.apply(tape, x);
            }
        }
        x
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Tape-free forward pass for inference.
    pub fn infer(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let mut cur = self.layers[0].infer(store, x);
        for layer in self.layers.iter().skip(1) {
            apply_activation(self.activation, &mut cur);
            cur = layer.infer(store, &cur);
        }
        cur
    }
}

fn apply_activation(act: Activation, t: &mut Tensor) {
    match act {
        Activation::Relu => t.data_mut().iter_mut().for_each(|x| *x = x.max(0.0)),
        Activation::Tanh => t.data_mut().iter_mut().for_each(|x| *x = x.tanh()),
        Activation::Sigmoid => t.data_mut().iter_mut().for_each(|x| *x = sigmoid(*x)),
        Activation::Identity => {}
    }
}

/// Head producing the parameters of a diagonal Gaussian posterior.
#[derive(Clone, Debug)]
pub struct GaussianHead {
    mu: Linear,
    logvar: Linear,
}

impl GaussianHead {
    /// Registers `mu`/`logvar` projections from `in_dim` to `latent_dim`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        latent_dim: usize,
        rng: &mut R,
    ) -> Self {
        GaussianHead {
            mu: Linear::new(store, &format!("{name}.mu"), in_dim, latent_dim, rng),
            logvar: Linear::new(store, &format!("{name}.logvar"), in_dim, latent_dim, rng),
        }
    }

    /// Returns `(mu, logvar)` for input `x`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> (Var, Var) {
        (self.mu.forward(tape, store, x), self.logvar.forward(tape, store, x))
    }

    /// Latent width.
    pub fn latent_dim(&self) -> usize {
        self.mu.out_dim()
    }

    /// Tape-free forward for inference: `(mu, logvar)`.
    pub fn infer(&self, store: &ParamStore, x: &Tensor) -> (Tensor, Tensor) {
        (self.mu.infer(store, x), self.logvar.infer(store, x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, "fc", 3, 5, &mut rng);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::zeros(2, 3));
        let y = layer.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (2, 5));
        // Zero input => output equals bias (zero-initialised).
        assert!(tape.value(y).data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rowmajor_subset_matches_full_projection() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let layer = Linear::new_rowmajor(&mut store, "proj", 4, 7, &mut rng);
        // Give the bias some structure.
        store
            .value_mut(layer.bias())
            .data_mut()
            .iter_mut()
            .enumerate()
            .for_each(|(i, b)| *b = i as f32 * 0.1);
        let x_t = Tensor::rand_uniform(1, 4, -1.0, 1.0, &mut rng);

        let mut tape = Tape::new();
        let x = tape.input(x_t.clone());
        let full = layer.forward_rowmajor(&mut tape, &store, x);
        let subset = layer.forward_subset(&mut tape, &store, x, &[6, 0, 3]);
        let fv = tape.value(full).clone();
        let sv = tape.value(subset).clone();
        for (i, &c) in [6usize, 0, 3].iter().enumerate() {
            assert!((fv.get(0, c) - sv.get(0, i)).abs() < 1e-5);
        }
    }

    #[test]
    fn embedding_lookup_rows() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "emb", 10, 4, &mut rng);
        let mut tape = Tape::new();
        let e = emb.lookup(&mut tape, &store, &[7, 1]);
        assert_eq!(tape.value(e).shape(), (2, 4));
        assert_eq!(tape.value(e).row(0), store.value(emb.table()).row(7));
    }

    #[test]
    fn gru_step_shape_and_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, "gru", 3, 6, &mut rng);
        let mut tape = Tape::new();
        let bound = gru.bind(&mut tape, &store);
        let x = tape.input(Tensor::rand_uniform(1, 3, -1.0, 1.0, &mut rng));
        let h0 = tape.input(Tensor::zeros(1, 6));
        let h1 = bound.step(&mut tape, x, h0);
        let h2 = bound.step(&mut tape, x, h1);
        assert_eq!(tape.value(h2).shape(), (1, 6));
        // GRU output is a convex combination of tanh outputs and prior state.
        assert!(tape.value(h2).data().iter().all(|&v| v > -1.0 && v < 1.0));
    }

    #[test]
    fn gru_zero_update_gate_keeps_interpolating() {
        // With all weights zero, z = sigmoid(0) = 0.5, n = 0, so h' = 0.5 h.
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, "gru", 2, 2, &mut rng);
        for id in store.ids() {
            store.value_mut(id).fill_zero();
        }
        let mut tape = Tape::new();
        let bound = gru.bind(&mut tape, &store);
        let x = tape.input(Tensor::zeros(1, 2));
        let h0 = tape.input(Tensor::from_vec(1, 2, vec![1.0, -1.0]));
        let h1 = bound.step(&mut tape, x, h0);
        assert!((tape.value(h1).get(0, 0) - 0.5).abs() < 1e-6);
        assert!((tape.value(h1).get(0, 1) + 0.5).abs() < 1e-6);
    }

    #[test]
    fn mlp_forward_dims() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "mlp", &[4, 8, 3], Activation::Relu, &mut rng);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::rand_uniform(5, 4, -1.0, 1.0, &mut rng));
        let y = mlp.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (5, 3));
        assert_eq!(mlp.out_dim(), 3);
    }

    #[test]
    fn infer_paths_match_tape_paths() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "lin", 4, 3, &mut rng);
        let row = Linear::new_rowmajor(&mut store, "row", 4, 6, &mut rng);
        let gru = GruCell::new(&mut store, "gru", 4, 5, &mut rng);
        let mlp = Mlp::new(&mut store, "mlp", &[4, 6, 2], Activation::Relu, &mut rng);
        let x_t = Tensor::rand_uniform(2, 4, -1.0, 1.0, &mut rng);
        let h_t = Tensor::rand_uniform(2, 5, -1.0, 1.0, &mut rng);

        let mut tape = Tape::new();
        let x = tape.input(x_t.clone());
        let h = tape.input(h_t.clone());
        let lin_taped = lin.forward(&mut tape, &store, x);
        let row_taped = row.forward_rowmajor(&mut tape, &store, x);
        let sub_taped = row.forward_subset(&mut tape, &store, x, &[5, 2]);
        let bound = gru.bind(&mut tape, &store);
        let gru_taped = bound.step(&mut tape, x, h);
        let mlp_taped = mlp.forward(&mut tape, &store, x);

        let close = |a: &Tensor, b: &Tensor| {
            assert_eq!(a.shape(), b.shape());
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() < 1e-5, "{x} vs {y}");
            }
        };
        close(tape.value(lin_taped), &lin.infer(&store, &x_t));
        close(tape.value(row_taped), &row.infer_rowmajor(&store, &x_t));
        close(tape.value(sub_taped), &row.infer_subset(&store, &x_t, &[5, 2]));
        close(tape.value(gru_taped), &gru.infer_step(&store, &x_t, &h_t));
        close(tape.value(mlp_taped), &mlp.infer(&store, &x_t));
    }

    #[test]
    fn gaussian_head_outputs() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let head = GaussianHead::new(&mut store, "g", 4, 2, &mut rng);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::rand_uniform(1, 4, -1.0, 1.0, &mut rng));
        let (mu, logvar) = head.forward(&mut tape, &store, x);
        assert_eq!(tape.value(mu).shape(), (1, 2));
        assert_eq!(tape.value(logvar).shape(), (1, 2));
        assert_eq!(head.latent_dim(), 2);
    }
}
