//! Optimisers consuming the gradients accumulated in a [`ParamStore`].

use crate::params::ParamStore;
use crate::tensor::Tensor;

/// Adam optimiser (Kingma & Ba, ICLR 2015) — the optimiser the paper uses.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical fuzz added to the denominator.
    pub eps: f32,
    /// Decoupled weight decay (0 disables).
    pub weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimiser with moment buffers sized for `store`.
    pub fn new(store: &ParamStore, lr: f32) -> Self {
        let m = store
            .ids()
            .map(|id| {
                let (r, c) = store.value(id).shape();
                Tensor::zeros(r, c)
            })
            .collect::<Vec<_>>();
        let v = m.clone();
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0, t: 0, m, v }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update from the gradients currently in `store`, then
    /// zeroes them.
    pub fn step(&mut self, store: &mut ParamStore) {
        assert_eq!(self.m.len(), store.len(), "Adam: store layout changed");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, id) in store.ids().enumerate().collect::<Vec<_>>() {
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            // Split borrow: read grad, write value — no gradient clone.
            let (value, grad) = store.value_grad_mut(id);
            for (((p, g), mi), vi) in value
                .data_mut()
                .iter_mut()
                .zip(grad.data())
                .zip(m.data_mut().iter_mut())
                .zip(v.data_mut().iter_mut())
            {
                let g = g + self.weight_decay * *p;
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
        store.zero_grads();
    }
}

/// Plain stochastic gradient descent, used as a comparison point and in
/// adversarial inner loops (FactorVAE's discriminator).
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates an SGD optimiser.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Applies one update from the gradients in `store`, then zeroes them.
    pub fn step(&self, store: &mut ParamStore) {
        for id in store.ids().collect::<Vec<_>>() {
            let (value, grad) = store.value_grad_mut(id);
            value.add_scaled(grad, -self.lr);
        }
        store.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimise f(x) = (x - 3)^2 and check convergence.
    fn quadratic_loss(store: &ParamStore, id: crate::params::ParamId) -> (Tape, crate::tape::Var) {
        let mut tape = Tape::new();
        let x = tape.param(store, id);
        let shifted = tape.add_scalar(x, -3.0);
        let sq = tape.mul(shifted, shifted);
        let loss = tape.sum_all(sq);
        (tape, loss)
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let id = store.add("x", Tensor::from_vec(1, 1, vec![-5.0]));
        let mut adam = Adam::new(&store, 0.2);
        for _ in 0..200 {
            let (mut tape, loss) = quadratic_loss(&store, id);
            tape.backward(loss, &mut store);
            adam.step(&mut store);
        }
        let x = store.value(id).get(0, 0);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
        assert_eq!(adam.steps(), 200);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let id = store.add("x", Tensor::from_vec(1, 1, vec![10.0]));
        let sgd = Sgd::new(0.1);
        for _ in 0..100 {
            let (mut tape, loss) = quadratic_loss(&store, id);
            tape.backward(loss, &mut store);
            sgd.step(&mut store);
        }
        let x = store.value(id).get(0, 0);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_zeroes_grads_after_step() {
        let mut store = ParamStore::new();
        let id = store.add("x", Tensor::from_vec(1, 1, vec![1.0]));
        let mut adam = Adam::new(&store, 0.1);
        let (mut tape, loss) = quadratic_loss(&store, id);
        tape.backward(loss, &mut store);
        assert!(store.grad_norm() > 0.0);
        adam.step(&mut store);
        assert_eq!(store.grad_norm(), 0.0);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut store = ParamStore::new();
        let id = store.add("x", Tensor::from_vec(1, 1, vec![4.0]));
        let mut adam = Adam::new(&store, 0.05);
        adam.weight_decay = 1.0;
        // Loss gradient is zero; only decay acts.
        for _ in 0..50 {
            adam.step(&mut store);
        }
        assert!(store.value(id).get(0, 0).abs() < 4.0);
    }
}
