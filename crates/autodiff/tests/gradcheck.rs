//! Finite-difference gradient checks for every differentiable op.
//!
//! Strategy: build a scalar loss as a function of the parameters in a
//! [`ParamStore`], run `Tape::backward`, then perturb each scalar parameter
//! by ±h and compare the central difference against the analytic gradient.
//! Tolerances are loose because the engine computes in `f32`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tad_autodiff::nn::{Activation, Embedding, GaussianHead, GruCell, Linear, Mlp};
use tad_autodiff::{ParamStore, Tape, Tensor};

/// Evaluates `f` as a pure function of the store's current parameter values.
fn eval_loss(store: &ParamStore, f: &dyn Fn(&mut Tape, &ParamStore) -> tad_autodiff::Var) -> f64 {
    let mut tape = Tape::new();
    let loss = f(&mut tape, store);
    tape.value(loss).get(0, 0) as f64
}

/// Runs backward once, then checks every parameter scalar against a central
/// finite difference. `h` is the perturbation, `tol` the mixed tolerance:
/// `|analytic - numeric| <= tol * (1 + |analytic| + |numeric|)`.
fn gradcheck(
    store: &mut ParamStore,
    f: impl Fn(&mut Tape, &ParamStore) -> tad_autodiff::Var,
    h: f32,
    tol: f64,
) {
    store.zero_grads();
    let mut tape = Tape::new();
    let loss = f(&mut tape, store);
    assert!(tape.value(loss).all_finite(), "loss is not finite");
    tape.backward(loss, store);

    let ids: Vec<_> = store.ids().collect();
    for id in ids {
        for k in 0..store.value(id).len() {
            let orig = store.value(id).data()[k];

            store.value_mut(id).data_mut()[k] = orig + h;
            let up = eval_loss(store, &f);
            store.value_mut(id).data_mut()[k] = orig - h;
            let down = eval_loss(store, &f);
            store.value_mut(id).data_mut()[k] = orig;

            let numeric = (up - down) / (2.0 * h as f64);
            let analytic = store.grad(id).data()[k] as f64;
            let err = (analytic - numeric).abs();
            let bound = tol * (1.0 + analytic.abs() + numeric.abs());
            assert!(
                err <= bound,
                "param {} [{k}]: analytic {analytic:.6} vs numeric {numeric:.6} (err {err:.2e} > {bound:.2e})",
                store.name(id)
            );
        }
    }
}

fn seeded_store(seed: u64, shapes: &[(&str, usize, usize)]) -> ParamStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    for &(name, r, c) in shapes {
        store.add(name, Tensor::rand_uniform(r, c, -0.9, 0.9, &mut rng));
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn matmul_chain_gradients(seed in 0u64..1000) {
        let mut store = seeded_store(seed, &[("a", 2, 3), ("b", 3, 2)]);
        gradcheck(&mut store, |tape, store| {
            let ids: Vec<_> = store.ids().collect();
            let a = tape.param(store, ids[0]);
            let b = tape.param(store, ids[1]);
            let c = tape.matmul(a, b);
            let t = tape.tanh(c);
            tape.sum_all(t)
        }, 1e-3, 2e-2);
    }

    #[test]
    fn matmul_t_gradients(seed in 0u64..1000) {
        let mut store = seeded_store(seed, &[("a", 2, 4), ("b", 3, 4)]);
        gradcheck(&mut store, |tape, store| {
            let ids: Vec<_> = store.ids().collect();
            let a = tape.param(store, ids[0]);
            let b = tape.param(store, ids[1]);
            let c = tape.matmul_t(a, b);
            let s = tape.sigmoid(c);
            tape.sum_all(s)
        }, 1e-3, 2e-2);
    }

    #[test]
    fn elementwise_mix_gradients(seed in 0u64..1000) {
        let mut store = seeded_store(seed, &[("x", 2, 3), ("y", 2, 3)]);
        gradcheck(&mut store, |tape, store| {
            let ids: Vec<_> = store.ids().collect();
            let x = tape.param(store, ids[0]);
            let y = tape.param(store, ids[1]);
            let p = tape.mul(x, y);
            let d = tape.sub(p, y);
            let e = tape.exp(d);
            let sc = tape.scale(e, 0.5);
            let sh = tape.add_scalar(sc, 1.0);
            let l = tape.ln(sh);
            tape.mean_all(l)
        }, 1e-3, 2e-2);
    }

    #[test]
    fn softmax_ce_gradients(seed in 0u64..1000, target in 0u32..4) {
        let mut store = seeded_store(seed, &[("logits", 2, 4)]);
        gradcheck(&mut store, move |tape, store| {
            let id = store.ids().next().unwrap();
            let logits = tape.param(store, id);
            tape.softmax_cross_entropy(logits, &[target, 3 - target])
        }, 1e-3, 2e-2);
    }

    #[test]
    fn logsumexp_gradients(seed in 0u64..1000) {
        let mut store = seeded_store(seed, &[("x", 3, 5)]);
        gradcheck(&mut store, |tape, store| {
            let id = store.ids().next().unwrap();
            let x = tape.param(store, id);
            let lse = tape.logsumexp_rows(x);
            tape.sum_all(lse)
        }, 1e-3, 2e-2);
    }

    #[test]
    fn kl_and_reparam_gradients(seed in 0u64..1000) {
        let mut store = seeded_store(seed, &[("mu", 1, 4), ("logvar", 1, 4)]);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        let eps = Tensor::randn(1, 4, 0.0, 1.0, &mut rng);
        gradcheck(&mut store, move |tape, store| {
            let ids: Vec<_> = store.ids().collect();
            let mu = tape.param(store, ids[0]);
            let logvar = tape.param(store, ids[1]);
            let kl = tape.kl_std_normal(mu, logvar);
            let z = tape.gaussian_sample(mu, logvar, eps.clone());
            let zsq = tape.mul(z, z);
            let rec = tape.sum_all(zsq);
            tape.add(kl, rec)
        }, 1e-3, 2e-2);
    }

    #[test]
    fn gather_subset_projection_gradients(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "emb", 6, 3, &mut rng);
        let proj = Linear::new_rowmajor(&mut store, "proj", 3, 6, &mut rng);
        gradcheck(&mut store, move |tape, store| {
            let x = emb.lookup(tape, store, &[4, 1]);
            let logits = proj.forward_subset(tape, store, x, &[0, 2, 5]);
            tape.softmax_cross_entropy(logits, &[1, 2])
        }, 1e-3, 2e-2);
    }

    #[test]
    fn mlp_gradients(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "mlp", &[3, 5, 2], Activation::Tanh, &mut rng);
        let x_t = Tensor::rand_uniform(2, 3, -1.0, 1.0, &mut rng);
        gradcheck(&mut store, move |tape, store| {
            let x = tape.input(x_t.clone());
            let y = mlp.forward(tape, store, x);
            tape.softmax_cross_entropy(y, &[0, 1])
        }, 1e-3, 3e-2);
    }

    #[test]
    fn gru_two_step_gradients(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, "gru", 2, 3, &mut rng);
        let x1 = Tensor::rand_uniform(1, 2, -1.0, 1.0, &mut rng);
        let x2 = Tensor::rand_uniform(1, 2, -1.0, 1.0, &mut rng);
        gradcheck(&mut store, move |tape, store| {
            let bound = gru.bind(tape, store);
            let h0 = tape.input(Tensor::zeros(1, 3));
            let a = tape.input(x1.clone());
            let b = tape.input(x2.clone());
            let h1 = bound.step(tape, a, h0);
            let h2 = bound.step(tape, b, h1);
            let sq = tape.mul(h2, h2);
            tape.sum_all(sq)
        }, 1e-3, 3e-2);
    }

    #[test]
    fn gaussian_head_vae_loss_gradients(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let head = GaussianHead::new(&mut store, "head", 3, 2, &mut rng);
        let dec = Linear::new(&mut store, "dec", 2, 4, &mut rng);
        let x_t = Tensor::rand_uniform(1, 3, -1.0, 1.0, &mut rng);
        let eps = Tensor::randn(1, 2, 0.0, 1.0, &mut rng);
        gradcheck(&mut store, move |tape, store| {
            let x = tape.input(x_t.clone());
            let (mu, logvar) = head.forward(tape, store, x);
            let z = tape.gaussian_sample(mu, logvar, eps.clone());
            let logits = dec.forward(tape, store, z);
            let rec = tape.softmax_cross_entropy(logits, &[2]);
            let kl = tape.kl_std_normal(mu, logvar);
            let kl_w = tape.scale(kl, 0.1);
            tape.add(rec, kl_w)
        }, 1e-3, 3e-2);
    }

    #[test]
    fn subset_softmax_ce_gradients(seed in 0u64..1000) {
        // The fused road-constrained head: x rows scored against ragged
        // candidate spans of a row-major projection. x, W and b all get
        // finite-difference-checked.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let head = Linear::new_rowmajor(&mut store, "head", 3, 6, &mut rng);
        let x_init = Tensor::rand_uniform(3, 3, -1.0, 1.0, &mut rng);
        let x_id = store.add("x", x_init);
        gradcheck(&mut store, move |tape, store| {
            let x = tape.param(store, x_id);
            // Spans of width 3 / 2 / 4 with repeated classes across rows.
            head.subset_cross_entropy(
                tape,
                store,
                x,
                &[0, 2, 5, 1, 3, 5, 4, 0, 2],
                &[0, 3, 5, 9],
                &[1, 0, 2],
            )
        }, 1e-3, 3e-2);
    }

    #[test]
    fn subset_softmax_ce_matches_composed_ops(seed in 0u64..1000) {
        // Fused node vs the composed formulation (subset projection +
        // per-row CE): values and parameter gradients must agree.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xcafe);
        let mut store = ParamStore::new();
        let head = Linear::new_rowmajor(&mut store, "head", 4, 7, &mut rng);
        let x_t = Tensor::rand_uniform(2, 4, -1.0, 1.0, &mut rng);
        let spans: [&[u32]; 2] = [&[1, 4, 6], &[0, 2]];
        let targets = [2u32, 1];

        let mut fused_store = store.clone();
        let mut tape_f = Tape::new();
        let x = tape_f.input(x_t.clone());
        let fused = head.subset_cross_entropy(
            &mut tape_f, &store, x, &[1, 4, 6, 0, 2], &[0, 3, 5], &targets,
        );
        tape_f.backward(fused, &mut fused_store);

        let mut composed_store = store.clone();
        let mut tape_c = Tape::new();
        let x = tape_c.input(x_t.clone());
        let mut total = None;
        for (i, (cands, &t)) in spans.iter().zip(&targets).enumerate() {
            let row = tape_c.select_rows(x, &[i as u32]);
            let logits = head.forward_subset(&mut tape_c, &store, row, cands);
            let ce = tape_c.softmax_cross_entropy(logits, &[t]);
            total = Some(match total {
                None => ce,
                Some(acc) => tape_c.add(acc, ce),
            });
        }
        let total = total.unwrap();
        tape_c.backward(total, &mut composed_store);

        let fv = tape_f.value(fused).get(0, 0) as f64;
        let cv = tape_c.value(total).get(0, 0) as f64;
        prop_assert!((fv - cv).abs() < 1e-5 * cv.abs().max(1.0), "loss {fv} vs {cv}");
        for id in store.ids() {
            for (a, b) in fused_store.grad(id).data().iter().zip(composed_store.grad(id).data()) {
                prop_assert!((a - b).abs() < 1e-4, "grad {}: {a} vs {b}", store.name(id));
            }
        }
    }

    #[test]
    fn reshape_and_gather_cols_gradients(seed in 0u64..1000) {
        let mut store = seeded_store(seed, &[("x", 2, 6), ("bias", 1, 5)]);
        gradcheck(&mut store, |tape, store| {
            let ids: Vec<_> = store.ids().collect();
            let x = tape.param(store, ids[0]);
            let wide = tape.reshape(x, 3, 4);
            let t = tape.tanh(wide);
            let flat = tape.reshape(t, 1, 12);
            let picked = tape.gather_cols(store, ids[1], &[4, 0, 2]);
            let sq = tape.mul(picked, picked);
            let a = tape.sum_all(flat);
            let b = tape.sum_all(sq);
            tape.add(a, b)
        }, 1e-3, 2e-2);
    }

    #[test]
    fn gmvsae_style_mixture_prior_gradients(seed in 0u64..1000) {
        // The exact op composition GM-VSAE uses for log p_mix(z).
        let mut store = seeded_store(seed, &[("z", 1, 4), ("means", 3, 4)]);
        gradcheck(&mut store, |tape, store| {
            let ids: Vec<_> = store.ids().collect();
            let z = tape.param(store, ids[0]);
            let means = tape.param(store, ids[1]);
            let ones = tape.input(Tensor::full(3, 1, 1.0));
            let z_rep = tape.matmul(ones, z);
            let diff = tape.sub(z_rep, means);
            let sq = tape.mul(diff, diff);
            let col = tape.input(Tensor::full(4, 1, 1.0));
            let sums = tape.matmul(sq, col);
            let neg = tape.scale(sums, -0.5);
            let row = tape.reshape(neg, 1, 3);
            let lse = tape.logsumexp_rows(row);
            tape.scale(lse, -1.0)
        }, 1e-3, 2e-2);
    }

    #[test]
    fn concat_slice_broadcast_gradients(seed in 0u64..1000) {
        let mut store = seeded_store(seed, &[("x", 3, 2), ("y", 3, 2), ("bias", 1, 4)]);
        gradcheck(&mut store, |tape, store| {
            let ids: Vec<_> = store.ids().collect();
            let x = tape.param(store, ids[0]);
            let y = tape.param(store, ids[1]);
            let b = tape.param(store, ids[2]);
            let xy = tape.concat_cols(x, y);
            let shifted = tape.add(xy, b);
            let left = tape.slice_cols(shifted, 1, 2);
            let r = tape.relu(left);
            tape.sum_all(r)
        }, 1e-3, 2e-2);
    }
}

#[test]
fn embedding_rows_not_in_batch_get_no_gradient() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let emb = Embedding::new(&mut store, "emb", 8, 2, &mut rng);
    let mut tape = Tape::new();
    let x = emb.lookup(&mut tape, &store, &[3]);
    let loss = tape.sum_all(x);
    tape.backward(loss, &mut store);
    let g = store.grad(emb.table());
    for r in 0..8 {
        let expected = if r == 3 { 1.0 } else { 0.0 };
        assert!(g.row(r).iter().all(|&v| v == expected), "row {r}");
    }
}
