//! Algebraic property tests for the tensor engine and tape ops — identities
//! that must hold for arbitrary inputs, complementing the finite-difference
//! gradient checks.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tad_autodiff::{logsumexp, ParamStore, Tape, Tensor};

fn rand_tensor(seed: u64, rows: usize, cols: usize) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::rand_uniform(rows, cols, -2.0, 2.0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// (A · B) · C == A · (B · C) within f32 tolerance.
    #[test]
    fn matmul_is_associative(seed in 0u64..1000, m in 1usize..5, k in 1usize..5, n in 1usize..5, p in 1usize..5) {
        let a = rand_tensor(seed, m, k);
        let b = rand_tensor(seed ^ 1, k, n);
        let c = rand_tensor(seed ^ 2, n, p);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// (A · B)ᵀ == Bᵀ · Aᵀ.
    #[test]
    fn matmul_transpose_identity(seed in 0u64..1000, m in 1usize..5, k in 1usize..5, n in 1usize..5) {
        let a = rand_tensor(seed, m, k);
        let b = rand_tensor(seed ^ 3, k, n);
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// A · Bᵀ computed by the fused kernel equals the two-step version.
    #[test]
    fn matmul_t_consistency(seed in 0u64..1000, m in 1usize..6, k in 1usize..6, n in 1usize..6) {
        let a = rand_tensor(seed, m, k);
        let b = rand_tensor(seed ^ 4, n, k);
        let fused = a.matmul_t(&b);
        let two_step = a.matmul(&b.transpose());
        for (x, y) in fused.data().iter().zip(two_step.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Softmax probabilities cached by the fused CE sum to one per row.
    #[test]
    fn softmax_ce_probs_normalise(seed in 0u64..1000, rows in 1usize..5, cols in 2usize..8) {
        let logits = rand_tensor(seed, rows, cols);
        let mut tape = Tape::new();
        let x = tape.input(logits.clone());
        let targets: Vec<u32> = (0..rows as u32).map(|r| r % cols as u32).collect();
        let ce = tape.softmax_cross_entropy(x, &targets);
        // The loss must be at least the NLL of a uniform prediction when
        // logits are equal; generally: ce >= 0 and finite.
        let v = tape.value(ce).get(0, 0);
        prop_assert!(v.is_finite() && v >= 0.0);
        // Per-row NLL equals lse - logit[target].
        let nll = tape.ce_row_nll(ce);
        for (r, &t) in targets.iter().enumerate() {
            let expected = (logsumexp(logits.row(r)) - logits.get(r, t as usize)) as f64;
            prop_assert!((nll[r] - expected).abs() < 1e-4);
        }
    }

    /// logsumexp upper/lower bounds: max <= lse <= max + ln(n).
    #[test]
    fn logsumexp_bounds(values in prop::collection::vec(-50.0f32..50.0, 1..20)) {
        let lse = logsumexp(&values);
        let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(lse >= max - 1e-4);
        prop_assert!(lse <= max + (values.len() as f32).ln() + 1e-4);
    }

    /// backward() is additive: running it twice doubles the gradient.
    #[test]
    fn backward_accumulates_across_calls(seed in 0u64..1000) {
        let mut store = ParamStore::new();
        let id = store.add("w", rand_tensor(seed, 2, 3));
        let mut tape = Tape::new();
        let w = tape.param(&store, id);
        let sq = tape.mul(w, w);
        let loss = tape.sum_all(sq);
        tape.backward(loss, &mut store);
        let once = store.grad(id).clone();
        tape.backward(loss, &mut store);
        for (g1, g2) in once.data().iter().zip(store.grad(id).data()) {
            prop_assert!((2.0 * g1 - g2).abs() < 1e-5);
        }
    }

    /// Reshape round-trip is the identity for values and gradients.
    #[test]
    fn reshape_roundtrip_identity(seed in 0u64..1000) {
        let t = rand_tensor(seed, 3, 4);
        let mut store = ParamStore::new();
        let id = store.add("x", t.clone());
        let mut tape = Tape::new();
        let x = tape.param(&store, id);
        let there = tape.reshape(x, 4, 3);
        let back = tape.reshape(there, 3, 4);
        prop_assert_eq!(tape.value(back).data(), t.data());
        let loss = tape.sum_all(back);
        tape.backward(loss, &mut store);
        prop_assert!(store.grad(id).data().iter().all(|&g| (g - 1.0).abs() < 1e-6));
    }

    /// Tensor codec: ParamStore round-trips arbitrary shapes bit-exactly.
    #[test]
    fn param_store_codec_roundtrip(seed in 0u64..1000, r in 1usize..6, c in 1usize..6) {
        let mut store = ParamStore::new();
        store.add("a", rand_tensor(seed, r, c));
        store.add("b", rand_tensor(seed ^ 9, c, r));
        let restored = ParamStore::from_bytes(store.to_bytes()).unwrap();
        for id in store.ids() {
            prop_assert_eq!(restored.value(id).data(), store.value(id).data());
        }
    }
}
