//! Equivalence battery for every matmul kernel variant.
//!
//! All three layouts (`A·B`, `A·Bᵀ`, `Aᵀ·B`) pin the same accumulation
//! order: each output element accumulates over the shared dimension in
//! ascending order with `mul_add`, in the register-tiled paths, the
//! streaming fallbacks, and the scalar references below. That makes the
//! kernels **exactly** equal (bit for bit) to the naive reference — the
//! property the batched inference/training equivalence guarantees build on.
//!
//! Shapes are drawn to straddle the tile boundaries (`MR = 4` rows,
//! `NR = 16` columns): degenerate 1×1 / one-row / one-column operands,
//! sizes just below/at/above the tile edges, and ragged combinations.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tad_autodiff::Tensor;

/// Scalar reference for `A·B`: ascending-k `mul_add`, one accumulator per
/// output element.
fn reference_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc = a.get(i, p).mul_add(b.get(p, j), acc);
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// Scalar reference for `A·Bᵀ` (`b` is `n x k`).
fn reference_matmul_t(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let n = b.rows();
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc = a.get(i, p).mul_add(b.get(j, p), acc);
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// Scalar reference for `Aᵀ·B` (`a` is `p x m`, `b` is `p x n`).
fn reference_matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (p, m) = a.shape();
    let n = b.cols();
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for q in 0..p {
                acc = a.get(q, i).mul_add(b.get(q, j), acc);
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// Dimension values straddling the MR (4) and NR (16) tile boundaries plus
/// degenerate sizes.
const DIMS: [usize; 10] = [1, 2, 3, 4, 5, 8, 15, 16, 17, 33];

fn rand_tensor(seed: u64, rows: usize, cols: usize) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::rand_uniform(rows, cols, -2.0, 2.0, &mut rng)
}

fn assert_bits_equal(got: &Tensor, want: &Tensor, what: &str) -> Result<(), TestCaseError> {
    prop_assert!(
        got.shape() == want.shape(),
        "{what}: shape {:?} vs {:?}",
        got.shape(),
        want.shape()
    );
    for (i, (x, y)) in got.data().iter().zip(want.data()).enumerate() {
        prop_assert!(x.to_bits() == y.to_bits(), "{what}: element {i} differs: {x} vs {y}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `matmul_into` (tiled + streaming paths) is bit-exact vs the scalar
    /// reference for every shape class.
    #[test]
    fn matmul_matches_reference_exactly(seed in 0u64..10_000, mi in 0usize..10, ki in 0usize..10, ni in 0usize..10) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let a = rand_tensor(seed, m, k);
        let b = rand_tensor(seed ^ 0xa5a5, k, n);
        assert_bits_equal(&a.matmul(&b), &reference_matmul(&a, &b), "matmul")?;
    }

    /// `matmul_t_into` (tiled + dot-product paths) is bit-exact vs the
    /// scalar reference.
    #[test]
    fn matmul_t_matches_reference_exactly(seed in 0u64..10_000, mi in 0usize..10, ki in 0usize..10, ni in 0usize..10) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let a = rand_tensor(seed, m, k);
        let b = rand_tensor(seed ^ 0x5a5a, n, k);
        assert_bits_equal(&a.matmul_t(&b), &reference_matmul_t(&a, &b), "matmul_t")?;
    }

    /// `matmul_tn_into` (tiled + outer-product paths) is bit-exact vs the
    /// scalar reference.
    #[test]
    fn matmul_tn_matches_reference_exactly(seed in 0u64..10_000, pi in 0usize..10, mi in 0usize..10, ni in 0usize..10) {
        let (p, m, n) = (DIMS[pi], DIMS[mi], DIMS[ni]);
        let a = rand_tensor(seed, p, m);
        let b = rand_tensor(seed ^ 0x3c3c, p, n);
        assert_bits_equal(&a.matmul_tn(&b), &reference_matmul_tn(&a, &b), "matmul_tn")?;
    }

    /// The three layouts agree with each other through explicit transposes
    /// — exactly, because they share the accumulation order.
    #[test]
    fn layouts_agree_through_transposes(seed in 0u64..10_000, mi in 0usize..10, ki in 0usize..10, ni in 0usize..10) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let a = rand_tensor(seed, m, k);
        let b = rand_tensor(seed ^ 0x7171, k, n);
        let plain = a.matmul(&b);
        assert_bits_equal(&a.matmul_t(&b.transpose()), &plain, "matmul_t vs matmul")?;
        assert_bits_equal(&a.transpose().matmul_tn(&b), &plain, "matmul_tn vs matmul")?;
    }

    /// Row-stacking invariance: row `i` of a batched product equals the
    /// product of row `i` alone (the property batched training and fleet
    /// inference rely on).
    #[test]
    fn batched_rows_match_single_rows(seed in 0u64..10_000, mi in 0usize..10, ki in 0usize..10, ni in 0usize..10) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let a = rand_tensor(seed, m, k);
        let b = rand_tensor(seed ^ 0x1b1b, k, n);
        let bt = rand_tensor(seed ^ 0x2d2d, n, k);
        let full = a.matmul(&b);
        let full_t = a.matmul_t(&bt);
        for i in 0..m {
            let row = Tensor::from_vec(1, k, a.row(i).to_vec());
            let single = row.matmul(&b);
            assert_bits_equal(&Tensor::from_vec(1, n, full.row(i).to_vec()), &single, "matmul row")?;
            let single_t = row.matmul_t(&bt);
            assert_bits_equal(&Tensor::from_vec(1, n, full_t.row(i).to_vec()), &single_t, "matmul_t row")?;
        }
    }
}
