//! The assembled CausalTAD model.
//!
//! Holds the shared [`ParamStore`], the two VAEs, the cached road-network
//! successor sets, and (after training) the precomputed
//! [`ScalingTable`]. Scoring follows Eq. (10) of the paper:
//!
//! ```text
//! score(t, c) = -log P(c, t) − λ Σ_i log E_{e_i ~ P(E_i|t_i)}[1 / P(t_i|e_i)]
//!             ≈ (KL + sd_nll + Σ step_nll) − λ Σ_i log_scale(t_i)
//! ```
//!
//! The offline [`CausalTad::score`] replays the online scorer so that the
//! two paths cannot diverge (verified by integration tests).

use rand::rngs::StdRng;
use rand::SeedableRng;

use tad_autodiff::{ParamStore, Tape};
use tad_roadnet::RoadNetwork;
use tad_trajsim::Trajectory;

use crate::config::CausalTadConfig;
use crate::online::OnlineScorer;
use crate::rpvae::RpVae;
use crate::scaling::ScalingTable;
use crate::tgvae::TgVae;
use crate::train::{TrainReport, Trainer};

/// The CausalTAD detector (paper §V).
#[derive(Clone, Debug)]
pub struct CausalTad {
    pub(crate) cfg: CausalTadConfig,
    pub(crate) store: ParamStore,
    pub(crate) tg: TgVae,
    pub(crate) rp: RpVae,
    pub(crate) scaling: Option<ScalingTable>,
    /// Successor lists per segment, cached from the road network.
    pub(crate) successors: Vec<Vec<u32>>,
    vocab: usize,
}

impl CausalTad {
    /// Builds an untrained model for a road network.
    pub fn new(net: &RoadNetwork, cfg: CausalTadConfig) -> Self {
        let vocab = net.num_segments();
        assert!(vocab > 0, "road network has no segments");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let tg = TgVae::new(&mut store, vocab, &cfg, &mut rng);
        let rp = RpVae::new(&mut store, vocab, &cfg, &mut rng);
        let successors = net.segment_ids().map(|s| net.successor_ids(s)).collect();
        CausalTad { cfg, store, tg, rp, scaling: None, successors, vocab }
    }

    /// Model vocabulary (number of road segments).
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &CausalTadConfig {
        &self.cfg
    }

    /// Overrides λ (Eq. 10) without retraining — Fig. 8's sweep re-scores
    /// the same trained model under different λ.
    pub fn set_lambda(&mut self, lambda: f64) {
        self.cfg.lambda = lambda;
    }

    /// Shared parameter store (read access, e.g. for persistence).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable parameter store for custom optimisation loops (benches, the
    /// scalar reference trainer). After changing parameters, call
    /// [`CausalTad::precompute_scaling`] before scoring — the scaling table
    /// caches values derived from them.
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Successor segments of `seg`.
    pub fn successors_of(&self, seg: u32) -> &[u32] {
        &self.successors[seg as usize]
    }

    /// Builds the summed joint training loss `Σ_i (L1 + L2)` (Eq. 9) for a
    /// micro-batch of trajectories in one tape pass, returning the loss
    /// node.
    ///
    /// The TG-VAE runs with row-stacked hidden states
    /// ([`TgVae::loss_batch`]); the RP-VAE sees every trajectory's tokens
    /// as one batch. Reparameterisation noise is drawn per trajectory in
    /// batch order (TG then RP), so a micro-batch of size 1 consumes the
    /// rng stream exactly like [`CausalTad::trajectory_loss_reference`] and
    /// larger micro-batches draw the same values for the same
    /// trajectories.
    pub fn trajectory_loss_batch(
        &self,
        tape: &mut Tape,
        batch: &[&Trajectory],
        rng: &mut StdRng,
    ) -> tad_autodiff::Var {
        assert!(!batch.is_empty(), "trajectory_loss_batch: empty micro-batch");
        let b = batch.len();
        let dl = self.cfg.latent_dim;
        let rp_dl = self.cfg.rp_latent_dim;
        let total_tokens: usize = batch.iter().map(|t| t.len()).sum();
        let mut tg_eps = tad_autodiff::Tensor::zeros(b, dl);
        let mut rp_eps = tad_autodiff::Tensor::zeros(total_tokens, rp_dl);
        let mut rp_tokens: Vec<u32> = Vec::with_capacity(total_tokens);
        let mut seg_lists: Vec<Vec<u32>> = Vec::with_capacity(b);
        let mut off = 0usize;
        for (i, t) in batch.iter().enumerate() {
            let e = tad_autodiff::Tensor::randn(1, dl, 0.0, 1.0, rng);
            tg_eps.row_mut(i).copy_from_slice(e.row(0));
            let re = tad_autodiff::Tensor::randn(t.len(), rp_dl, 0.0, 1.0, rng);
            rp_eps.data_mut()[off * rp_dl..(off + t.len()) * rp_dl].copy_from_slice(re.data());
            off += t.len();
            rp_tokens.extend(t.segments.iter().map(|s| self.rp.token(s.0, t.time_slot)));
            seg_lists.push(t.segments.iter().map(|s| s.0).collect());
        }
        let seg_slices: Vec<&[u32]> = seg_lists.iter().map(Vec::as_slice).collect();
        let tg =
            self.tg.loss_batch(tape, &self.store, &seg_slices, tg_eps, &self.successors, &self.cfg);
        let rp = self.rp.loss_with_eps(tape, &self.store, &rp_tokens, rp_eps);
        tape.add(tg.total, rp)
    }

    /// The pre-vectorisation scalar training loss for one trajectory:
    /// unfused GRU steps, one tape node per primitive op, per-transition
    /// CE. Exposed so the training bench and the equivalence tests can
    /// compare the micro-batched trainer against the original formulation
    /// (identical rng consumption per trajectory).
    pub fn trajectory_loss_reference(
        &self,
        tape: &mut Tape,
        segments: &[u32],
        time_slot: u8,
        rng: &mut StdRng,
    ) -> tad_autodiff::Var {
        let tg_loss =
            self.tg.loss_reference(tape, &self.store, segments, &self.successors, &self.cfg, rng);
        let tokens: Vec<u32> = segments.iter().map(|&s| self.rp.token(s, time_slot)).collect();
        let rp_loss = self.rp.loss(tape, &self.store, &tokens, rng);
        tape.add(tg_loss.total, rp_loss)
    }

    /// Trains both VAEs jointly (Eq. 9) and precomputes the scaling table.
    pub fn fit(&mut self, train: &[Trajectory]) -> TrainReport {
        let report = Trainer::new(self.cfg.clone()).fit(self, train);
        self.precompute_scaling();
        report
    }

    /// (Re)computes the per-token scaling table (§V-D). Called by
    /// [`CausalTad::fit`]; exposed for tests and for refreshing after
    /// manual parameter updates.
    pub fn precompute_scaling(&mut self) {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x5ca1ab1e);
        self.scaling = Some(ScalingTable::compute(
            &self.rp,
            &self.store,
            self.cfg.scaling_mc_samples,
            &mut rng,
        ));
    }

    /// The precomputed scaling table, if available.
    pub fn scaling(&self) -> Option<&ScalingTable> {
        self.scaling.as_ref()
    }

    /// Overwrites parameters and scaling table (used by the model codec
    /// when restoring a persisted model).
    pub(crate) fn replace_state(&mut self, store: ParamStore, scaling: Option<ScalingTable>) {
        self.store.copy_values_from(&store);
        self.scaling = scaling;
    }

    /// Starts an online scorer for a trip with the given SD pair and
    /// departure slot. Each [`OnlineScorer::push`] costs O(1) in trajectory
    /// length.
    ///
    /// # Panics
    /// Panics if the scaling table has not been computed
    /// (call [`CausalTad::fit`] or [`CausalTad::precompute_scaling`] first).
    pub fn online(&self, source: u32, dest: u32, time_slot: u8) -> OnlineScorer<'_> {
        OnlineScorer::new(self, source, dest, time_slot)
    }

    /// Fallible variant of [`CausalTad::online`]: returns an error instead
    /// of panicking when the model is not ready or the SD pair is not on
    /// the road network, so serving layers can reject bad requests without
    /// crashing a worker.
    ///
    /// # Errors
    /// [`OnlineError::MissingScalingTable`] when the scaling table has not
    /// been computed yet, [`OnlineError::SegmentOutOfRange`] when an SD
    /// endpoint is not a segment of the model's road network.
    ///
    /// [`OnlineError::MissingScalingTable`]: crate::OnlineError::MissingScalingTable
    /// [`OnlineError::SegmentOutOfRange`]: crate::OnlineError::SegmentOutOfRange
    pub fn try_online(
        &self,
        source: u32,
        dest: u32,
        time_slot: u8,
    ) -> Result<OnlineScorer<'_>, crate::online::OnlineError> {
        OnlineScorer::try_new(self, source, dest, time_slot)
    }

    /// Debiased anomaly score of a full trajectory (Eq. 10). Higher means
    /// more anomalous.
    pub fn score(&self, traj: &Trajectory) -> f64 {
        self.score_prefix(traj, traj.len())
    }

    /// Score after observing only the first `prefix_len` segments (online
    /// evaluation, §VI-E). The SD pair — known upfront in ride-hailing — is
    /// always available to the model.
    pub fn score_prefix(&self, traj: &Trajectory, prefix_len: usize) -> f64 {
        let sd = traj.sd_pair();
        let mut scorer = self.online(sd.source.0, sd.dest.0, traj.time_slot);
        let n = prefix_len.clamp(1, traj.len());
        for &seg in &traj.segments[..n] {
            scorer.push(seg.0);
        }
        scorer.score()
    }

    /// Ablation score using only the TG-VAE likelihood (λ = 0): the
    /// "TG-VAE" row of Table III.
    pub fn score_tg_only(&self, traj: &Trajectory) -> f64 {
        let sd = traj.sd_pair();
        let mut scorer = self.online(sd.source.0, sd.dest.0, traj.time_slot);
        for &seg in &traj.segments {
            scorer.push(seg.0);
        }
        scorer.likelihood_nll()
    }

    /// Ablation score using only the RP-VAE segment likelihoods: the
    /// "RP-VAE" row of Table III (`-Σ_i ELBO log P(t_i)`).
    pub fn score_rp_only(&self, traj: &Trajectory) -> f64 {
        let table = self.scaling.as_ref().expect("scaling table not computed; call fit()");
        traj.segments.iter().map(|&s| -table.elbo(s.0, traj.time_slot)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use tad_trajsim::{generate_city, CityConfig};

    fn small_city() -> tad_trajsim::City {
        generate_city(&CityConfig::test_scale(100))
    }

    fn quick_model(city: &tad_trajsim::City) -> CausalTad {
        let mut cfg = CausalTadConfig::test_scale();
        cfg.epochs = 3;
        let mut model = CausalTad::new(&city.net, cfg);
        model.fit(&city.data.train);
        model
    }

    #[test]
    fn fit_produces_finite_scores() {
        let city = small_city();
        let model = quick_model(&city);
        for t in city.data.test_id.iter().take(5) {
            let s = model.score(t);
            assert!(s.is_finite(), "score {s}");
        }
    }

    #[test]
    fn anomalies_score_higher_on_average() {
        let city = small_city();
        let model = quick_model(&city);
        let mean =
            |ts: &[Trajectory]| ts.iter().map(|t| model.score(t)).sum::<f64>() / ts.len() as f64;
        let normal = mean(&city.data.test_id);
        let detour = mean(&city.data.detour);
        assert!(
            detour > normal,
            "detour anomalies should score higher: {detour:.2} vs {normal:.2}"
        );
    }

    #[test]
    fn online_equals_offline() {
        let city = small_city();
        let model = quick_model(&city);
        for t in city.data.test_id.iter().take(5) {
            let offline = model.score(t);
            let sd = t.sd_pair();
            let mut scorer = model.online(sd.source.0, sd.dest.0, t.time_slot);
            let mut last = f64::NAN;
            for &seg in &t.segments {
                last = scorer.push(seg.0);
            }
            assert!((offline - last).abs() < 1e-9, "{offline} vs {last}");
        }
    }

    #[test]
    fn prefix_scores_are_monotone_in_information() {
        // Not strictly monotone in value, but must be finite and defined for
        // every prefix, and the full-prefix score must match score().
        let city = small_city();
        let model = quick_model(&city);
        let t = &city.data.test_id[0];
        for len in 1..=t.len() {
            assert!(model.score_prefix(t, len).is_finite());
        }
        assert_eq!(model.score_prefix(t, t.len()), model.score(t));
    }

    #[test]
    fn lambda_zero_equals_tg_only() {
        let city = small_city();
        let mut model = quick_model(&city);
        let t = &city.data.test_id[0];
        model.set_lambda(0.0);
        let s = model.score(t);
        let tg = model.score_tg_only(t);
        assert!((s - tg).abs() < 1e-9, "{s} vs {tg}");
    }

    #[test]
    fn tied_embedding_shares_parameters() {
        let city = small_city();
        let mut tied_cfg = CausalTadConfig::test_scale();
        tied_cfg.tie_sd_embedding = true;
        let tied = CausalTad::new(&city.net, tied_cfg);
        let mut untied_cfg = CausalTadConfig::test_scale();
        untied_cfg.tie_sd_embedding = false;
        let untied = CausalTad::new(&city.net, untied_cfg);
        // The untied model has one extra embedding table's worth of params.
        let extra = city.net.num_segments() * untied.config().embed_dim;
        assert_eq!(untied.store().num_scalars(), tied.store().num_scalars() + extra);
    }

    #[test]
    fn sd_nll_flag_changes_score_for_unseen_pairs() {
        let city = small_city();
        let mut with_cfg = CausalTadConfig::test_scale();
        with_cfg.epochs = 2;
        with_cfg.score_includes_sd_nll = true;
        let mut without_cfg = with_cfg.clone();
        without_cfg.score_includes_sd_nll = false;
        let mut with_sd = CausalTad::new(&city.net, with_cfg);
        with_sd.fit(&city.data.train);
        let mut without_sd = CausalTad::new(&city.net, without_cfg);
        without_sd.fit(&city.data.train);
        // Same training (same seed/config except the score flag), so the
        // score difference is exactly the SD reconstruction NLL >= 0.
        let t = &city.data.test_ood[0];
        let diff = with_sd.score(t) - without_sd.score(t);
        assert!(diff > 0.0, "SD NLL must add a positive term, diff {diff}");
    }

    #[test]
    fn rp_only_scores_defined() {
        let city = small_city();
        let model = quick_model(&city);
        let mut rng = StdRng::seed_from_u64(0);
        let idx = rng.gen_range(0..city.data.test_id.len());
        let s = model.score_rp_only(&city.data.test_id[idx]);
        assert!(s.is_finite());
    }
}
