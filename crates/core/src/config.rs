//! Model and training configuration.

/// Hyper-parameters of CausalTAD.
///
/// Paper defaults (§VI-A5): hidden dimension 128, 200 epochs, initial
/// learning rate 0.01, λ = 0.1 after grid search. The defaults here are
/// scaled for CPU-only synthetic cities; `paper_scale` restores dimensions
/// closer to the paper's.
#[derive(Clone, Debug)]
pub struct CausalTadConfig {
    /// Road-segment embedding width (`E_c`, `E_r`, `E_s`).
    pub embed_dim: usize,
    /// GRU/MLP hidden width (`d` in the paper).
    pub hidden_dim: usize,
    /// Latent width of the TG-VAE posterior `R`.
    pub latent_dim: usize,
    /// Latent width of the RP-VAE posterior `E_i`.
    pub rp_latent_dim: usize,
    /// Balance λ between likelihood and scaling factor (Eq. 10).
    pub lambda: f64,
    /// Adam learning rate.
    pub lr: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Trajectories per optimiser step.
    pub batch_size: usize,
    /// Trajectories packed into one tape pass with row-stacked hidden
    /// states (micro-batching). `1` replays the sequential per-trajectory
    /// path; values above `batch_size` are effectively clamped to it.
    /// Micro-batched losses match the sequential ones within f32
    /// reassociation tolerance (~1e-6 relative) — the reductions regroup,
    /// the randomness does not.
    pub micro_batch: usize,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f64,
    /// Monte-Carlo samples when precomputing scaling factors (§V-D).
    pub scaling_mc_samples: usize,
    /// §V-E.3 future-work extension: factorise the scaling factor per
    /// `(segment, time slot)` instead of per segment.
    pub time_factorised_scaling: bool,
    /// Number of departure-time slots (must match the dataset).
    pub num_time_slots: usize,
    /// Ablation: drop the SD decoder (invites posterior collapse).
    pub disable_sd_decoder: bool,
    /// Share one segment-embedding table between the SD encoder and the
    /// trajectory decoder (ablation; the paper and this implementation
    /// default to separate `E_c`/`E_r` tables, which the `ablation_design`
    /// experiment confirms is slightly better out of distribution).
    pub tie_sd_embedding: bool,
    /// Include `-log P(c|r)` (the SD decoder's reconstruction) in the
    /// anomaly score. The SD decoder's stated purpose is preventing
    /// posterior collapse during training; for *unseen* SD pairs its
    /// reconstruction NLL is a large constant unrelated to route quality,
    /// so scoring without it is more robust out of distribution.
    pub score_includes_sd_nll: bool,
    /// Ablation: decode over the full vocabulary instead of the road
    /// network's successor sets.
    pub disable_road_constraint: bool,
    /// Parameter-init and training-shuffle seed.
    pub seed: u64,
}

impl Default for CausalTadConfig {
    fn default() -> Self {
        CausalTadConfig {
            embed_dim: 24,
            hidden_dim: 48,
            latent_dim: 24,
            rp_latent_dim: 16,
            lambda: 0.1,
            lr: 1e-3,
            epochs: 12,
            batch_size: 8,
            micro_batch: 8,
            grad_clip: 5.0,
            scaling_mc_samples: 16,
            time_factorised_scaling: false,
            num_time_slots: 4,
            disable_sd_decoder: false,
            tie_sd_embedding: false,
            score_includes_sd_nll: false,
            disable_road_constraint: false,
            seed: 0,
        }
    }
}

impl CausalTadConfig {
    /// Dimensions closer to the paper's (d = 128); substantially slower on
    /// CPU.
    pub fn paper_scale() -> Self {
        CausalTadConfig {
            embed_dim: 64,
            hidden_dim: 128,
            latent_dim: 64,
            rp_latent_dim: 32,
            epochs: 50,
            ..Default::default()
        }
    }

    /// A tiny configuration for unit tests.
    pub fn test_scale() -> Self {
        CausalTadConfig {
            embed_dim: 12,
            hidden_dim: 20,
            latent_dim: 12,
            rp_latent_dim: 8,
            epochs: 4,
            scaling_mc_samples: 8,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = CausalTadConfig::default();
        assert!(cfg.lambda > 0.0 && cfg.lambda < 1.0);
        assert!(cfg.hidden_dim >= cfg.latent_dim);
        assert!(cfg.epochs > 0 && cfg.batch_size > 0);
    }

    #[test]
    fn paper_scale_is_larger() {
        let quick = CausalTadConfig::default();
        let paper = CausalTadConfig::paper_scale();
        assert!(paper.hidden_dim > quick.hidden_dim);
        assert_eq!(paper.hidden_dim, 128);
    }
}
