//! The workspace's shared binary envelope: magic + version + checksummed,
//! length-prefixed payload.
//!
//! Every binary format in this workspace — the session codec here in
//! `causaltad` (magic `TADC`), `tad-serve`'s fleet-snapshot codec
//! (`TADF`), and `tad-net`'s wire frames (`TADN`) — wraps its payload in
//! the same envelope so one pair of helpers carries the hostile-input
//! guarantees for all of them:
//!
//! * **Layout** (little-endian): 4 magic bytes, `u16` version, `u64`
//!   payload length, the payload, then a FNV-1a 64 checksum of the
//!   payload ([`checksum64`]).
//! * **Totality**: [`open_envelope`] does checked length arithmetic on
//!   every field, so no input — truncated, bit-flipped, or with a crafted
//!   near-`u64::MAX` length — can panic the decoder. Codecs built on it
//!   inherit that guarantee for their headers.
//! * **One taxonomy per format**: failures surface as [`EnvelopeError`],
//!   which each codec converts into its own error type (e.g.
//!   [`crate::StateCodecError`]) so callers see a single error enum per
//!   format.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// FNV-1a 64-bit checksum used by every checksummed-envelope codec in the
/// workspace (session states, fleet snapshots, wire frames).
pub fn checksum64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Failures shared by every checksummed-envelope codec (the session codec
/// in this crate, `tad-serve`'s fleet-snapshot codec, and `tad-net`'s
/// frame codec). Each codec maps these into its own error type so callers
/// see one taxonomy per format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnvelopeError {
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Input ended before the named field could be read.
    Truncated(&'static str),
    /// The payload checksum did not match (bit rot or tampering).
    ChecksumMismatch,
    /// Bytes followed the checksum.
    TrailingBytes,
}

impl std::fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvelopeError::BadMagic => write!(f, "bad envelope magic bytes"),
            EnvelopeError::BadVersion(v) => write!(f, "unsupported envelope version {v}"),
            EnvelopeError::Truncated(what) => write!(f, "truncated envelope at {what}"),
            EnvelopeError::ChecksumMismatch => write!(f, "envelope payload checksum mismatch"),
            EnvelopeError::TrailingBytes => write!(f, "trailing bytes after envelope checksum"),
        }
    }
}

impl std::error::Error for EnvelopeError {}

/// Byte length the envelope adds around a payload (header + checksum).
pub const ENVELOPE_OVERHEAD: usize = ENVELOPE_HEADER_LEN + 8;

/// Byte length of the fixed envelope header (magic, version, payload
/// length) — what a streaming reader must fetch before it knows how many
/// payload bytes follow.
pub const ENVELOPE_HEADER_LEN: usize = 4 + 2 + 8;

/// Wraps `payload` in the workspace's standard binary envelope
/// (little-endian): `magic`, `version` u16, u64 payload length, the
/// payload, then a FNV-1a 64 checksum of the payload.
pub fn seal_envelope(magic: &[u8; 4], version: u16, payload: Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(payload.len() + ENVELOPE_OVERHEAD);
    buf.put_slice(magic);
    buf.put_u16_le(version);
    buf.put_u64_le(payload.len() as u64);
    buf.put_slice(&payload);
    buf.put_u64_le(checksum64(&payload));
    buf.freeze()
}

/// Opens an envelope written by [`seal_envelope`], returning the verified
/// payload. The whole input must be one envelope (trailing bytes are
/// rejected); all length arithmetic is checked, so no input can panic —
/// the guarantee every codec built on this inherits.
///
/// # Errors
/// Returns the [`EnvelopeError`] naming what failed: wrong magic or
/// version, a truncation point, a checksum mismatch, or trailing bytes.
pub fn open_envelope(
    magic: &[u8; 4],
    version: u16,
    mut bytes: Bytes,
) -> Result<Bytes, EnvelopeError> {
    if bytes.remaining() < ENVELOPE_HEADER_LEN {
        return Err(EnvelopeError::Truncated("header"));
    }
    let mut found = [0u8; 4];
    bytes.copy_to_slice(&mut found);
    if &found != magic {
        return Err(EnvelopeError::BadMagic);
    }
    let found_version = bytes.get_u16_le();
    if found_version != version {
        return Err(EnvelopeError::BadVersion(found_version));
    }
    let plen = bytes.get_u64_le();
    // Checked arithmetic: a crafted plen near u64::MAX must fail the
    // guard, not wrap it.
    if plen.checked_add(8).is_none_or(|need| (bytes.remaining() as u64) < need) {
        return Err(EnvelopeError::Truncated("payload"));
    }
    let payload = bytes.copy_to_bytes(plen as usize);
    let stored = bytes.get_u64_le();
    if bytes.remaining() != 0 {
        return Err(EnvelopeError::TrailingBytes);
    }
    if checksum64(payload.as_ref()) != stored {
        return Err(EnvelopeError::ChecksumMismatch);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 4] = b"TEST";

    #[test]
    fn checksum64_is_stable() {
        // FNV-1a 64 reference values.
        assert_eq!(checksum64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(checksum64(b"ab"), checksum64(b"ba"));
    }

    #[test]
    fn seal_open_roundtrips() {
        let payload = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let sealed = seal_envelope(MAGIC, 7, payload.clone());
        assert_eq!(sealed.len(), payload.len() + ENVELOPE_OVERHEAD);
        let opened = open_envelope(MAGIC, 7, sealed).expect("valid envelope");
        assert_eq!(opened.to_vec(), payload.to_vec());
    }

    #[test]
    fn header_mismatches_are_typed() {
        let sealed = seal_envelope(MAGIC, 7, Bytes::from(vec![9u8; 3]));
        assert_eq!(open_envelope(b"XXXX", 7, sealed.clone()), Err(EnvelopeError::BadMagic));
        assert_eq!(open_envelope(MAGIC, 8, sealed), Err(EnvelopeError::BadVersion(7)));
    }

    #[test]
    fn every_truncation_is_an_error() {
        let sealed = seal_envelope(MAGIC, 1, Bytes::from(vec![0xABu8; 9])).to_vec();
        for cut in 0..sealed.len() {
            assert!(open_envelope(MAGIC, 1, sealed[..cut].to_vec().into()).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn crafted_huge_length_fails_instead_of_wrapping() {
        let mut raw = Vec::new();
        raw.extend_from_slice(MAGIC);
        raw.extend_from_slice(&1u16.to_le_bytes());
        raw.extend_from_slice(&u64::MAX.to_le_bytes());
        raw.extend_from_slice(&[0u8; 16]);
        assert_eq!(open_envelope(MAGIC, 1, raw.into()), Err(EnvelopeError::Truncated("payload")));
    }
}
