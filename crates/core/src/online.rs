//! Online anomaly scoring with O(1) updates per road segment (§V-D).
//!
//! When the trip starts, the SD pair is known (it is the ride-hailing
//! order), so the scorer runs the SD encoder/decoder and the KL term once.
//! Each arriving segment then costs one GRU step, one successor-set
//! projection, and one scaling-table lookup — independent of how much of
//! the trajectory has been seen, which is the paper's O(1) efficiency
//! requirement.

use tad_autodiff::Tensor;

use crate::model::CausalTad;

/// Per-segment contribution to the anomaly score (Fig. 4's data).
#[derive(Clone, Copy, Debug)]
pub struct SegmentTrace {
    /// The road segment.
    pub segment: u32,
    /// `-log P(t_i | c, t_<i)` — the likelihood part.
    pub nll: f64,
    /// `log E[1/P(t_i|e_i)]` — the debiasing part (before λ).
    pub log_scale: f64,
}

impl SegmentTrace {
    /// Combined debiased contribution `nll - λ * log_scale` (Eq. 11).
    pub fn debiased(&self, lambda: f64) -> f64 {
        self.nll - lambda * self.log_scale
    }
}

/// Streaming scorer for one ongoing trajectory.
pub struct OnlineScorer<'m> {
    model: &'m CausalTad,
    /// Decoder hidden state after consuming all pushed segments.
    h: Tensor,
    /// Fixed at trip start: the KL term, plus `-log P(c|r)` when
    /// `score_includes_sd_nll` is enabled.
    base_nll: f64,
    /// Accumulated `-log P(t_i | ...)`.
    traj_nll: f64,
    /// Accumulated `log E[1/P(t_i|e_i)]`.
    scale_log_sum: f64,
    /// Previously pushed segment (None before the first push).
    last: Option<u32>,
    time_slot: u8,
    trace: Vec<SegmentTrace>,
}

impl<'m> OnlineScorer<'m> {
    pub(crate) fn new(model: &'m CausalTad, source: u32, dest: u32, time_slot: u8) -> Self {
        assert!(
            model.scaling().is_some(),
            "scaling table not computed; call fit() or precompute_scaling() first"
        );
        let (r, kl) = model.tg.encode_mean(&model.store, source, dest);
        let sd_nll = if model.config().score_includes_sd_nll {
            model.tg.sd_nll(&model.store, &r, source, dest)
        } else {
            0.0
        };
        let h = model.tg.init_hidden(&model.store, &r);
        OnlineScorer {
            model,
            h,
            base_nll: kl + sd_nll,
            traj_nll: 0.0,
            scale_log_sum: 0.0,
            last: None,
            time_slot,
            trace: Vec::new(),
        }
    }

    /// Consumes the next observed segment and returns the updated anomaly
    /// score. O(1) in the number of segments seen so far.
    pub fn push(&mut self, seg: u32) -> f64 {
        let table = self.model.scaling().expect("checked in new()");
        let nll = match self.last {
            // t_1 is the source — fixed by the condition c, so no
            // prediction loss is charged for it.
            None => 0.0,
            Some(prev) => {
                let cands = self.model.successors_of(prev);
                self.model.tg.step_nll(&self.model.store, &self.h, cands, seg)
            }
        };
        self.traj_nll += nll;
        let log_scale = table.log_scale(seg, self.time_slot);
        self.scale_log_sum += log_scale;
        self.h = self.model.tg.advance(&self.model.store, &self.h, seg);
        self.last = Some(seg);
        self.trace.push(SegmentTrace { segment: seg, nll, log_scale });
        self.score()
    }

    /// Current debiased anomaly score (Eq. 10). Higher = more anomalous.
    pub fn score(&self) -> f64 {
        self.likelihood_nll() - self.model.config().lambda * self.scale_log_sum
    }

    /// The un-debiased likelihood part `-ELBO ≈ -log P(c, t)`; this is the
    /// TG-VAE-only score used in the ablation study.
    pub fn likelihood_nll(&self) -> f64 {
        self.base_nll + self.traj_nll
    }

    /// Accumulated scaling sum `Σ_i log E[1/P(t_i|e_i)]`.
    pub fn scale_log_sum(&self) -> f64 {
        self.scale_log_sum
    }

    /// Number of segments consumed so far.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// True before the first push.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Per-segment contributions (the data behind Fig. 4).
    pub fn trace(&self) -> &[SegmentTrace] {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CausalTadConfig;
    use tad_trajsim::{generate_city, CityConfig};

    fn trained() -> (tad_trajsim::City, CausalTad) {
        let city = generate_city(&CityConfig::test_scale(200));
        let mut cfg = CausalTadConfig::test_scale();
        cfg.epochs = 2;
        let mut model = CausalTad::new(&city.net, cfg);
        model.fit(&city.data.train);
        (city, model)
    }

    #[test]
    fn push_accumulates_trace() {
        let (city, model) = trained();
        let t = &city.data.test_id[0];
        let sd = t.sd_pair();
        let mut scorer = model.online(sd.source.0, sd.dest.0, t.time_slot);
        assert!(scorer.is_empty());
        for (i, &seg) in t.segments.iter().enumerate() {
            let score = scorer.push(seg.0);
            assert!(score.is_finite());
            assert_eq!(scorer.len(), i + 1);
        }
        assert_eq!(scorer.trace().len(), t.len());
        // First segment charges no prediction loss.
        assert_eq!(scorer.trace()[0].nll, 0.0);
        // Later segments do (with overwhelming probability under a freshly
        // trained model the NLLs are strictly positive).
        assert!(scorer.trace()[1..].iter().any(|s| s.nll > 0.0));
    }

    #[test]
    fn debiased_trace_applies_lambda() {
        let step = SegmentTrace { segment: 0, nll: 3.0, log_scale: 2.0 };
        assert!((step.debiased(0.5) - 2.0).abs() < 1e-12);
        assert!((step.debiased(0.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "scaling table not computed")]
    fn online_without_fit_panics() {
        let city = generate_city(&CityConfig::test_scale(201));
        let model = CausalTad::new(&city.net, CausalTadConfig::test_scale());
        let _ = model.online(0, 1, 0);
    }

    #[test]
    fn score_components_add_up() {
        let (city, model) = trained();
        let t = &city.data.test_id[1];
        let sd = t.sd_pair();
        let mut scorer = model.online(sd.source.0, sd.dest.0, t.time_slot);
        for &seg in &t.segments {
            scorer.push(seg.0);
        }
        let recomposed =
            scorer.likelihood_nll() - model.config().lambda * scorer.scale_log_sum();
        assert!((scorer.score() - recomposed).abs() < 1e-12);
        // Trace sums must equal the accumulators.
        let nll_sum: f64 = scorer.trace().iter().map(|s| s.nll).sum();
        let scale_sum: f64 = scorer.trace().iter().map(|s| s.log_scale).sum();
        assert!((scorer.likelihood_nll() - (nll_sum + scorer.base_nll)).abs() < 1e-9);
        assert!((scorer.scale_log_sum() - scale_sum).abs() < 1e-9);
    }
}
