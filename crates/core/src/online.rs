//! Online anomaly scoring with O(1) updates per road segment (§V-D).
//!
//! When the trip starts, the SD pair is known (it is the ride-hailing
//! order), so the scorer runs the SD encoder/decoder and the KL term once.
//! Each arriving segment then costs one GRU step, one successor-set
//! projection, and one scaling-table lookup — independent of how much of
//! the trajectory has been seen, which is the paper's O(1) efficiency
//! requirement.
//!
//! Two ways to drive it:
//!
//! * [`OnlineScorer`] — the borrowing, one-trip-at-a-time API.
//! * [`ScorerState`] — the owned, snapshotable state behind it. A serving
//!   layer (see the `tad-serve` crate) keeps thousands of these alive and
//!   advances whole cohorts at once through [`CausalTad::push_batch`],
//!   turning the per-segment GRU step and successor projection into
//!   matrix-matrix products.

use tad_autodiff::Tensor;

use crate::model::CausalTad;
use crate::tgvae::StepCache;

/// Per-segment contribution to the anomaly score (Fig. 4's data).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SegmentTrace {
    /// The road segment.
    pub segment: u32,
    /// `-log P(t_i | c, t_<i)` — the likelihood part.
    pub nll: f64,
    /// `log E[1/P(t_i|e_i)]` — the debiasing part (before λ).
    pub log_scale: f64,
}

impl SegmentTrace {
    /// Combined debiased contribution `nll - λ * log_scale` (Eq. 11).
    pub fn debiased(&self, lambda: f64) -> f64 {
        self.nll - lambda * self.log_scale
    }
}

/// Why a scoring session could not be started.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OnlineError {
    /// The scaling table has not been computed yet (`fit()` /
    /// `precompute_scaling()` not called).
    MissingScalingTable,
    /// An SD endpoint is not a segment of the model's road network.
    SegmentOutOfRange {
        /// The offending segment id.
        segment: u32,
        /// The model vocabulary (number of road segments).
        vocab: usize,
    },
}

impl std::fmt::Display for OnlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnlineError::MissingScalingTable => {
                write!(f, "scaling table not computed; call fit() or precompute_scaling() first")
            }
            OnlineError::SegmentOutOfRange { segment, vocab } => {
                write!(f, "segment {segment} out of range for vocabulary of {vocab} segments")
            }
        }
    }
}

impl std::error::Error for OnlineError {}

/// Owned streaming state of one ongoing trajectory, detached from the
/// model borrow so a serving layer can store it, snapshot it, and advance
/// many of them in one batch. Persist it with
/// [`crate::state_to_bytes`] / [`crate::state_from_bytes`].
#[derive(Clone, Debug, PartialEq)]
pub struct ScorerState {
    /// Decoder hidden state (`1 x hidden`) after consuming all pushed
    /// segments.
    pub(crate) h: Tensor,
    /// Fixed at trip start: the KL term, plus `-log P(c|r)` when
    /// `score_includes_sd_nll` is enabled.
    pub(crate) base_nll: f64,
    /// Accumulated `-log P(t_i | ...)`.
    pub(crate) traj_nll: f64,
    /// Accumulated `log E[1/P(t_i|e_i)]`.
    pub(crate) scale_log_sum: f64,
    /// Previously pushed segment (None before the first push).
    pub(crate) last: Option<u32>,
    pub(crate) time_slot: u8,
    pub(crate) trace: Vec<SegmentTrace>,
}

impl Default for ScorerState {
    /// An inert placeholder (useful for `mem::take`-style slot swapping in
    /// serving code); not a valid session until replaced.
    fn default() -> Self {
        ScorerState {
            h: Tensor::zeros(1, 0),
            base_nll: 0.0,
            traj_nll: 0.0,
            scale_log_sum: 0.0,
            last: None,
            time_slot: 0,
            trace: Vec::new(),
        }
    }
}

impl AsMut<ScorerState> for ScorerState {
    fn as_mut(&mut self) -> &mut ScorerState {
        self
    }
}

impl ScorerState {
    /// Reassembles a state from its raw components (the inverse of the
    /// field-by-field view a persistence layer serialises). The hidden
    /// vector becomes a `1 x hidden.len()` row. A state built from parts is
    /// only meaningful for the model whose `start_state`/push calls
    /// produced those components — nothing is validated here.
    pub fn from_parts(
        hidden: Vec<f32>,
        base_nll: f64,
        traj_nll: f64,
        scale_log_sum: f64,
        last: Option<u32>,
        time_slot: u8,
        trace: Vec<SegmentTrace>,
    ) -> ScorerState {
        let h = Tensor::from_vec(1, hidden.len(), hidden);
        ScorerState { h, base_nll, traj_nll, scale_log_sum, last, time_slot, trace }
    }

    /// Width of the decoder hidden state (0 for the inert
    /// [`ScorerState::default`] placeholder). A serving layer uses this to
    /// check a restored state against its model's `hidden_dim` before
    /// resuming.
    pub fn hidden_width(&self) -> usize {
        self.h.cols()
    }

    /// The decoder hidden vector (row-major, `hidden_width()` floats).
    pub fn hidden(&self) -> &[f32] {
        self.h.data()
    }

    /// Fixed-at-start part of the likelihood NLL (KL term, plus the SD NLL
    /// when enabled).
    pub fn base_nll(&self) -> f64 {
        self.base_nll
    }

    /// Current debiased anomaly score (Eq. 10) under the given λ. Higher =
    /// more anomalous.
    pub fn score(&self, lambda: f64) -> f64 {
        self.likelihood_nll() - lambda * self.scale_log_sum
    }

    /// The un-debiased likelihood part `-ELBO ≈ -log P(c, t)`.
    pub fn likelihood_nll(&self) -> f64 {
        self.base_nll + self.traj_nll
    }

    /// Accumulated scaling sum `Σ_i log E[1/P(t_i|e_i)]`.
    pub fn scale_log_sum(&self) -> f64 {
        self.scale_log_sum
    }

    /// Segment most recently pushed (None before the first push).
    pub fn last_segment(&self) -> Option<u32> {
        self.last
    }

    /// Departure time slot fixed at trip start.
    pub fn time_slot(&self) -> u8 {
        self.time_slot
    }

    /// Number of segments consumed so far.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// True before the first push.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Per-segment contributions (the data behind Fig. 4).
    pub fn trace(&self) -> &[SegmentTrace] {
        &self.trace
    }

    /// Consumes the state, returning the trace.
    pub fn into_trace(self) -> Vec<SegmentTrace> {
        self.trace
    }

    /// Forgets the Markov predecessor so the next pushed segment is charged
    /// like a trip-opening one (`nll = 0`, no successor constraint) instead
    /// of an off-graph transition. The decoder hidden state and every
    /// accumulated score component are kept: the trip continues as a fresh
    /// leg anchored at the jump target, conditioned on everything already
    /// seen. This is the scoring primitive behind a serving layer's
    /// "trip reset" gap policy for off-network jumps (GPS teleports, tunnel
    /// exits, dropped sub-paths).
    pub fn reset_context(&mut self) {
        self.last = None;
    }
}

impl CausalTad {
    /// Creates the owned streaming state for a trip, validating the request
    /// instead of panicking — the entry point for serving layers.
    ///
    /// # Errors
    /// [`OnlineError::MissingScalingTable`] when `fit()` /
    /// `precompute_scaling()` has not run yet;
    /// [`OnlineError::SegmentOutOfRange`] when either SD endpoint is not a
    /// segment of the model's road network.
    pub fn start_state(
        &self,
        source: u32,
        dest: u32,
        time_slot: u8,
    ) -> Result<ScorerState, OnlineError> {
        if self.scaling().is_none() {
            return Err(OnlineError::MissingScalingTable);
        }
        let vocab = self.vocab();
        for seg in [source, dest] {
            if seg as usize >= vocab {
                return Err(OnlineError::SegmentOutOfRange { segment: seg, vocab });
            }
        }
        let (r, kl) = self.tg.encode_mean(&self.store, source, dest);
        let sd_nll = if self.config().score_includes_sd_nll {
            self.tg.sd_nll(&self.store, &r, source, dest)
        } else {
            0.0
        };
        let h = self.tg.init_hidden(&self.store, &r);
        Ok(ScorerState {
            h,
            base_nll: kl + sd_nll,
            traj_nll: 0.0,
            scale_log_sum: 0.0,
            last: None,
            time_slot,
            trace: Vec::new(),
        })
    }

    /// Consumes the next observed segment of `state`, returning the updated
    /// debiased score. O(1) in the number of segments seen so far.
    ///
    /// # Panics
    /// Panics if `seg` is outside the model vocabulary or the state was not
    /// produced by [`CausalTad::start_state`] on this model.
    pub fn push_state(&self, state: &mut ScorerState, seg: u32) -> f64 {
        let table = self.scaling().expect("state was started, so the table exists");
        let nll = match state.last {
            // t_1 is the source — fixed by the condition c, so no
            // prediction loss is charged for it.
            None => 0.0,
            Some(prev) => {
                let cands = self.successors_of(prev);
                self.tg.step_nll(&self.store, &state.h, cands, seg)
            }
        };
        state.traj_nll += nll;
        let log_scale = table.log_scale(seg, state.time_slot);
        state.scale_log_sum += log_scale;
        state.h = self.tg.advance(&self.store, &state.h, seg);
        state.last = Some(seg);
        state.trace.push(SegmentTrace { segment: seg, nll, log_scale });
        state.score(self.config().lambda)
    }

    /// Advances many live sessions by one segment each in a single
    /// micro-batch: session `i` consumes `segs[i]`. The GRU step runs as one
    /// `batch x hidden` matrix product (and, with a [`StepCache`], skips the
    /// input-gate matmul entirely); sessions sharing a successor set share
    /// one projection product. Returns the updated debiased score per
    /// session, numerically identical to calling
    /// [`CausalTad::push_state`] per session in isolation.
    ///
    /// `states` may hold the states inline (`&mut [ScorerState]`) or by
    /// mutable reference (`&mut [&mut ScorerState]`), so callers can batch
    /// sessions scattered across a store without moving them.
    ///
    /// # Panics
    /// Panics if `states` and `segs` differ in length, or any segment is
    /// outside the model vocabulary.
    pub fn push_batch<S: AsMut<ScorerState>>(
        &self,
        cache: Option<&StepCache>,
        states: &mut [S],
        segs: &[u32],
    ) -> Vec<f64> {
        assert_eq!(states.len(), segs.len(), "push_batch: states vs segs length");
        let table = self.scaling().expect("states were started, so the table exists");
        let n = states.len();
        if n == 0 {
            return Vec::new();
        }
        let hidden = states[0].as_mut().h.cols();

        // Stack hidden states: one `n x hidden` matrix.
        let mut hs = Tensor::zeros(n, hidden);
        for (i, st) in states.iter_mut().enumerate() {
            hs.row_mut(i).copy_from_slice(st.as_mut().h.row(0));
        }

        // Next-segment NLLs for sessions past their first segment.
        let live: Vec<usize> = (0..n).filter(|&i| states[i].as_mut().last.is_some()).collect();
        let mut nlls = vec![0.0f64; n];
        if !live.is_empty() {
            let idx: Vec<u32> = live.iter().map(|&i| i as u32).collect();
            let sub = hs.gather_rows(&idx);
            let cands: Vec<&[u32]> = live
                .iter()
                .map(|&i| self.successors_of(states[i].as_mut().last.expect("filtered")))
                .collect();
            let next: Vec<u32> = live.iter().map(|&i| segs[i]).collect();
            let batch_nlls = self.tg.step_nll_batch(&self.store, &sub, &cands, &next);
            for (&i, nll) in live.iter().zip(batch_nlls) {
                nlls[i] = nll;
            }
        }

        // One batched GRU advance for every session.
        let new_hs = self.tg.advance_batch(&self.store, cache, &hs, segs);

        let lambda = self.config().lambda;
        let mut scores = Vec::with_capacity(n);
        for (i, st) in states.iter_mut().enumerate() {
            let st = st.as_mut();
            let seg = segs[i];
            st.traj_nll += nlls[i];
            let log_scale = table.log_scale(seg, st.time_slot);
            st.scale_log_sum += log_scale;
            st.h.row_mut(0).copy_from_slice(new_hs.row(i));
            st.last = Some(seg);
            st.trace.push(SegmentTrace { segment: seg, nll: nlls[i], log_scale });
            scores.push(st.score(lambda));
        }
        scores
    }

    /// Precomputes the decoder's per-token input-gate projections so batched
    /// stepping skips the `x · W` matmul. Rebuild after parameter updates.
    pub fn build_step_cache(&self) -> StepCache {
        self.tg.build_step_cache(&self.store)
    }
}

/// Streaming scorer for one ongoing trajectory: a [`ScorerState`] borrowing
/// its model.
pub struct OnlineScorer<'m> {
    model: &'m CausalTad,
    state: ScorerState,
}

impl<'m> OnlineScorer<'m> {
    pub(crate) fn new(model: &'m CausalTad, source: u32, dest: u32, time_slot: u8) -> Self {
        assert!(
            model.scaling().is_some(),
            "scaling table not computed; call fit() or precompute_scaling() first"
        );
        let state = model
            .start_state(source, dest, time_slot)
            .expect("scaling checked; SD segments validated by caller");
        OnlineScorer { model, state }
    }

    pub(crate) fn try_new(
        model: &'m CausalTad,
        source: u32,
        dest: u32,
        time_slot: u8,
    ) -> Result<Self, OnlineError> {
        Ok(OnlineScorer { model, state: model.start_state(source, dest, time_slot)? })
    }

    /// Resumes a scorer from a previously detached state.
    pub fn from_state(model: &'m CausalTad, state: ScorerState) -> Self {
        OnlineScorer { model, state }
    }

    /// Detaches the owned state (e.g. to park a session).
    pub fn into_state(self) -> ScorerState {
        self.state
    }

    /// The owned state behind this scorer.
    pub fn state(&self) -> &ScorerState {
        &self.state
    }

    /// Consumes the next observed segment and returns the updated anomaly
    /// score. O(1) in the number of segments seen so far.
    pub fn push(&mut self, seg: u32) -> f64 {
        self.model.push_state(&mut self.state, seg)
    }

    /// Current debiased anomaly score (Eq. 10). Higher = more anomalous.
    pub fn score(&self) -> f64 {
        self.state.score(self.model.config().lambda)
    }

    /// The un-debiased likelihood part `-ELBO ≈ -log P(c, t)`; this is the
    /// TG-VAE-only score used in the ablation study.
    pub fn likelihood_nll(&self) -> f64 {
        self.state.likelihood_nll()
    }

    /// Accumulated scaling sum `Σ_i log E[1/P(t_i|e_i)]`.
    pub fn scale_log_sum(&self) -> f64 {
        self.state.scale_log_sum()
    }

    /// Number of segments consumed so far.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// True before the first push.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// Per-segment contributions (the data behind Fig. 4).
    pub fn trace(&self) -> &[SegmentTrace] {
        self.state.trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CausalTadConfig;
    use tad_trajsim::{generate_city, CityConfig};

    fn trained() -> (tad_trajsim::City, CausalTad) {
        let city = generate_city(&CityConfig::test_scale(200));
        let mut cfg = CausalTadConfig::test_scale();
        cfg.epochs = 2;
        let mut model = CausalTad::new(&city.net, cfg);
        model.fit(&city.data.train);
        (city, model)
    }

    #[test]
    fn push_accumulates_trace() {
        let (city, model) = trained();
        let t = &city.data.test_id[0];
        let sd = t.sd_pair();
        let mut scorer = model.online(sd.source.0, sd.dest.0, t.time_slot);
        assert!(scorer.is_empty());
        for (i, &seg) in t.segments.iter().enumerate() {
            let score = scorer.push(seg.0);
            assert!(score.is_finite());
            assert_eq!(scorer.len(), i + 1);
        }
        assert_eq!(scorer.trace().len(), t.len());
        // First segment charges no prediction loss.
        assert_eq!(scorer.trace()[0].nll, 0.0);
        // Later segments do (with overwhelming probability under a freshly
        // trained model the NLLs are strictly positive).
        assert!(scorer.trace()[1..].iter().any(|s| s.nll > 0.0));
    }

    #[test]
    fn debiased_trace_applies_lambda() {
        let step = SegmentTrace { segment: 0, nll: 3.0, log_scale: 2.0 };
        assert!((step.debiased(0.5) - 2.0).abs() < 1e-12);
        assert!((step.debiased(0.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "scaling table not computed")]
    fn online_without_fit_panics() {
        let city = generate_city(&CityConfig::test_scale(201));
        let model = CausalTad::new(&city.net, CausalTadConfig::test_scale());
        let _ = model.online(0, 1, 0);
    }

    #[test]
    fn try_online_reports_errors_instead_of_panicking() {
        let city = generate_city(&CityConfig::test_scale(202));
        let untrained = CausalTad::new(&city.net, CausalTadConfig::test_scale());
        assert_eq!(untrained.try_online(0, 1, 0).err(), Some(OnlineError::MissingScalingTable));

        let (_city, model) = trained();
        let vocab = model.vocab() as u32;
        match model.try_online(vocab + 7, 1, 0).err() {
            Some(OnlineError::SegmentOutOfRange { segment, .. }) => assert_eq!(segment, vocab + 7),
            other => panic!("expected SegmentOutOfRange, got {other:?}"),
        }
        assert!(model.try_online(0, 1, 0).is_ok());
    }

    #[test]
    fn state_detach_and_resume_matches_straight_run() {
        let (city, model) = trained();
        let t = &city.data.test_id[0];
        let sd = t.sd_pair();

        let mut straight = model.online(sd.source.0, sd.dest.0, t.time_slot);
        for &seg in &t.segments {
            straight.push(seg.0);
        }

        let mut scorer = model.online(sd.source.0, sd.dest.0, t.time_slot);
        let mid = t.len() / 2;
        for &seg in &t.segments[..mid] {
            scorer.push(seg.0);
        }
        let parked = scorer.into_state();
        let mut resumed = OnlineScorer::from_state(&model, parked);
        for &seg in &t.segments[mid..] {
            resumed.push(seg.0);
        }
        assert_eq!(resumed.score(), straight.score());
        assert_eq!(resumed.len(), straight.len());
    }

    #[test]
    fn push_batch_matches_sequential_push() {
        let (city, model) = trained();
        let cache = model.build_step_cache();
        let trips: Vec<_> = city.data.test_id.iter().take(8).collect();

        // Sequential reference scores.
        let reference: Vec<f64> = trips
            .iter()
            .map(|t| {
                let sd = t.sd_pair();
                let mut scorer = model.online(sd.source.0, sd.dest.0, t.time_slot);
                let mut last = f64::NAN;
                for &seg in &t.segments {
                    last = scorer.push(seg.0);
                }
                last
            })
            .collect();

        // Batched: advance all sessions in lockstep waves.
        let mut states: Vec<ScorerState> = trips
            .iter()
            .map(|t| {
                let sd = t.sd_pair();
                model.start_state(sd.source.0, sd.dest.0, t.time_slot).expect("valid request")
            })
            .collect();
        let mut final_scores = vec![f64::NAN; trips.len()];
        let max_len = trips.iter().map(|t| t.len()).max().unwrap();
        for step in 0..max_len {
            let wave: Vec<usize> = (0..trips.len()).filter(|&i| step < trips[i].len()).collect();
            let segs: Vec<u32> = wave.iter().map(|&i| trips[i].segments[step].0).collect();
            let mut wave_states: Vec<ScorerState> =
                wave.iter().map(|&i| std::mem::take(&mut states[i])).collect();
            let scores = model.push_batch(Some(&cache), &mut wave_states, &segs);
            for ((&i, st), score) in wave.iter().zip(wave_states).zip(scores) {
                states[i] = st;
                final_scores[i] = score;
            }
        }

        for (batched, sequential) in final_scores.iter().zip(&reference) {
            assert!(
                (batched - sequential).abs() < 1e-9,
                "batched {batched} vs sequential {sequential}"
            );
        }
    }

    #[test]
    fn reset_context_opens_a_fresh_leg() {
        let (city, model) = trained();
        let t = &city.data.test_id[0];
        let sd = t.sd_pair();
        let mut scorer = model.online(sd.source.0, sd.dest.0, t.time_slot);
        for &seg in &t.segments {
            scorer.push(seg.0);
        }
        let before = scorer.state().clone();

        // A wildly off-network jump target: the same push charges the
        // off-graph penalty without a reset, and zero prediction loss with
        // one.
        let jump = (t.segments[0].0 + 1) % model.vocab() as u32;
        let mut through = OnlineScorer::from_state(&model, before.clone());
        through.push(jump);
        let charged = through.trace().last().unwrap().nll;

        let mut reset_state = before.clone();
        reset_state.reset_context();
        assert_eq!(reset_state.last_segment(), None);
        // Only the predecessor is forgotten; scores and hidden state stay.
        assert_eq!(reset_state.likelihood_nll(), before.likelihood_nll());
        assert_eq!(reset_state.hidden(), before.hidden());
        let mut fresh = OnlineScorer::from_state(&model, reset_state);
        fresh.push(jump);
        let step = fresh.trace().last().unwrap();
        assert_eq!(step.nll, 0.0, "first segment of a fresh leg charges no prediction loss");
        assert!(charged > 0.0 || step.nll <= charged);
        assert_eq!(fresh.state().last_segment(), Some(jump));
    }

    #[test]
    fn score_components_add_up() {
        let (city, model) = trained();
        let t = &city.data.test_id[1];
        let sd = t.sd_pair();
        let mut scorer = model.online(sd.source.0, sd.dest.0, t.time_slot);
        for &seg in &t.segments {
            scorer.push(seg.0);
        }
        let recomposed = scorer.likelihood_nll() - model.config().lambda * scorer.scale_log_sum();
        assert!((scorer.score() - recomposed).abs() < 1e-12);
        // Trace sums must equal the accumulators.
        let nll_sum: f64 = scorer.trace().iter().map(|s| s.nll).sum();
        let scale_sum: f64 = scorer.trace().iter().map(|s| s.log_scale).sum();
        assert!((scorer.likelihood_nll() - (nll_sum + scorer.state().base_nll)).abs() < 1e-9);
        assert!((scorer.scale_log_sum() - scale_sum).abs() < 1e-9);
    }
}
