//! Delta-chain ordering primitives shared by every log-structured delta
//! codec in the workspace.
//!
//! A delta chain is a full base image stamped with an **epoch**, followed
//! by deltas numbered `seq = 1, 2, 3, …` against that epoch. Applying a
//! chain is only sound when every delta names the base's epoch and the
//! sequence numbers arrive consecutively — a skipped, repeated, or
//! cross-epoch delta silently reconstructs the wrong state, so admission
//! is validated here once and every consumer (e.g. `tad-serve`'s
//! `FleetDelta` layer) inherits the typed rejection.

/// Identity of one delta inside a chain: which base it extends and its
/// position in that base's delta log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaId {
    /// Epoch of the full base image this delta extends.
    pub base_epoch: u64,
    /// 1-based position in the epoch's delta log.
    pub seq: u64,
}

/// Why a delta was rejected by a [`DeltaChain`] cursor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaChainError {
    /// The delta extends a different base image than the one held.
    BaseMismatch {
        /// Epoch of the base image the chain holds.
        expected_epoch: u64,
        /// Epoch the delta was captured against.
        found_epoch: u64,
    },
    /// The delta is not the next one in the log (skipped, repeated, or
    /// out of order).
    OutOfOrder {
        /// The sequence number the chain will accept next.
        expected_seq: u64,
        /// The sequence number the delta carries.
        found_seq: u64,
    },
}

impl std::fmt::Display for DeltaChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaChainError::BaseMismatch { expected_epoch, found_epoch } => write!(
                f,
                "delta extends base epoch {found_epoch}, but the chain holds epoch \
                 {expected_epoch}"
            ),
            DeltaChainError::OutOfOrder { expected_seq, found_seq } => {
                write!(f, "delta seq {found_seq} out of order; the chain expects {expected_seq}")
            }
        }
    }
}

impl std::error::Error for DeltaChainError {}

/// Admission cursor over one base image's delta log: tracks how many
/// deltas have been applied and rejects any delta that is not exactly the
/// next one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaChain {
    epoch: u64,
    applied: u64,
}

impl DeltaChain {
    /// A fresh cursor over the base image stamped with `epoch`; the first
    /// admissible delta is `seq == 1`.
    pub fn new(epoch: u64) -> Self {
        DeltaChain { epoch, applied: 0 }
    }

    /// Epoch of the base image this chain extends.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// How many deltas have been admitted so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Validates that `id` is exactly the next delta of this chain and
    /// advances the cursor.
    ///
    /// # Errors
    /// [`DeltaChainError::BaseMismatch`] when the delta names another
    /// epoch, [`DeltaChainError::OutOfOrder`] when it is not the next
    /// sequence number; the cursor is unchanged on error.
    pub fn admit(&mut self, id: DeltaId) -> Result<(), DeltaChainError> {
        if id.base_epoch != self.epoch {
            return Err(DeltaChainError::BaseMismatch {
                expected_epoch: self.epoch,
                found_epoch: id.base_epoch,
            });
        }
        let expected = self.applied + 1;
        if id.seq != expected {
            return Err(DeltaChainError::OutOfOrder { expected_seq: expected, found_seq: id.seq });
        }
        self.applied = expected;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_admits_only_consecutive_same_epoch_deltas() {
        let mut chain = DeltaChain::new(7);
        assert_eq!(chain.epoch(), 7);
        assert_eq!(chain.applied(), 0);
        chain.admit(DeltaId { base_epoch: 7, seq: 1 }).unwrap();
        chain.admit(DeltaId { base_epoch: 7, seq: 2 }).unwrap();
        assert_eq!(chain.applied(), 2);
        // Repeats, skips, and regressions are all typed rejections that
        // leave the cursor where it was.
        for bad in [0, 2, 4] {
            assert_eq!(
                chain.admit(DeltaId { base_epoch: 7, seq: bad }),
                Err(DeltaChainError::OutOfOrder { expected_seq: 3, found_seq: bad })
            );
        }
        assert_eq!(
            chain.admit(DeltaId { base_epoch: 8, seq: 3 }),
            Err(DeltaChainError::BaseMismatch { expected_epoch: 7, found_epoch: 8 })
        );
        assert_eq!(chain.applied(), 2);
        chain.admit(DeltaId { base_epoch: 7, seq: 3 }).unwrap();
        assert_eq!(chain.applied(), 3);
    }
}
