//! Binary persistence for trained CausalTAD models.
//!
//! Serialises the configuration, every parameter tensor, and the
//! precomputed scaling table, so a model trained offline can be shipped to
//! an online-detection service. The road network is *not* embedded — the
//! caller supplies it at load time (it defines the successor sets), and the
//! codec verifies the vocabulary matches.
//!
//! Layout (little-endian): magic `TADM`, version u16, config block,
//! scaling-table block (optional), then the [`ParamStore`] blob.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tad_roadnet::RoadNetwork;

use crate::config::CausalTadConfig;
use crate::model::CausalTad;
use crate::scaling::ScalingTable;

const MAGIC: &[u8; 4] = b"TADM";
const VERSION: u16 = 1;

/// Errors produced when decoding a serialized model.
#[derive(Debug, PartialEq, Eq)]
pub enum ModelCodecError {
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Input ended before the named field could be read.
    Truncated(&'static str),
    /// The parameter blob failed to decode.
    BadParams,
    /// The supplied road network's segment count does not match the model.
    VocabMismatch { expected: usize, actual: usize },
}

impl std::fmt::Display for ModelCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelCodecError::BadMagic => write!(f, "bad magic bytes"),
            ModelCodecError::BadVersion(v) => write!(f, "unsupported version {v}"),
            ModelCodecError::Truncated(what) => write!(f, "truncated input at {what}"),
            ModelCodecError::BadParams => write!(f, "parameter blob failed to decode"),
            ModelCodecError::VocabMismatch { expected, actual } => {
                write!(f, "model was trained on {expected} segments, network has {actual}")
            }
        }
    }
}

impl std::error::Error for ModelCodecError {}

/// Serialises a trained model.
pub fn model_to_bytes(model: &CausalTad) -> Bytes {
    let cfg = model.config();
    let mut buf = BytesMut::with_capacity(1024);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);

    // Config block.
    buf.put_u32_le(model.vocab() as u32);
    buf.put_u32_le(cfg.embed_dim as u32);
    buf.put_u32_le(cfg.hidden_dim as u32);
    buf.put_u32_le(cfg.latent_dim as u32);
    buf.put_u32_le(cfg.rp_latent_dim as u32);
    buf.put_f64_le(cfg.lambda);
    buf.put_u32_le(cfg.scaling_mc_samples as u32);
    buf.put_u32_le(cfg.num_time_slots as u32);
    buf.put_u8(flag_bits(cfg));
    buf.put_u64_le(cfg.seed);

    // Scaling table.
    match model.scaling() {
        Some(table) => {
            buf.put_u8(1);
            let blob = table.to_bytes();
            buf.put_u32_le(blob.len() as u32);
            buf.put_slice(&blob);
        }
        None => buf.put_u8(0),
    }

    // Parameters.
    let params = model.store().to_bytes();
    buf.put_u32_le(params.len() as u32);
    buf.put_slice(&params);
    buf.freeze()
}

/// Restores a model serialized by [`model_to_bytes`] against a road
/// network (which must have the same segment count the model was trained
/// on).
pub fn model_from_bytes(net: &RoadNetwork, mut bytes: Bytes) -> Result<CausalTad, ModelCodecError> {
    if bytes.remaining() < 6 {
        return Err(ModelCodecError::Truncated("header"));
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(ModelCodecError::BadMagic);
    }
    let version = bytes.get_u16_le();
    if version != VERSION {
        return Err(ModelCodecError::BadVersion(version));
    }
    if bytes.remaining() < 4 * 7 + 8 + 1 + 8 {
        return Err(ModelCodecError::Truncated("config"));
    }
    let vocab = bytes.get_u32_le() as usize;
    if vocab != net.num_segments() {
        return Err(ModelCodecError::VocabMismatch { expected: vocab, actual: net.num_segments() });
    }
    let mut cfg = CausalTadConfig {
        embed_dim: bytes.get_u32_le() as usize,
        hidden_dim: bytes.get_u32_le() as usize,
        latent_dim: bytes.get_u32_le() as usize,
        rp_latent_dim: bytes.get_u32_le() as usize,
        lambda: bytes.get_f64_le(),
        scaling_mc_samples: bytes.get_u32_le() as usize,
        num_time_slots: bytes.get_u32_le() as usize,
        ..CausalTadConfig::default()
    };
    let flags = bytes.get_u8();
    apply_flag_bits(&mut cfg, flags);
    cfg.seed = bytes.get_u64_le();

    if bytes.remaining() < 1 {
        return Err(ModelCodecError::Truncated("scaling flag"));
    }
    let scaling = if bytes.get_u8() == 1 {
        if bytes.remaining() < 4 {
            return Err(ModelCodecError::Truncated("scaling length"));
        }
        let len = bytes.get_u32_le() as usize;
        if bytes.remaining() < len {
            return Err(ModelCodecError::Truncated("scaling blob"));
        }
        let blob = bytes.copy_to_bytes(len);
        Some(
            ScalingTable::from_bytes(blob)
                .map_err(|_| ModelCodecError::Truncated("scaling table"))?,
        )
    } else {
        None
    };

    if bytes.remaining() < 4 {
        return Err(ModelCodecError::Truncated("param length"));
    }
    let plen = bytes.get_u32_le() as usize;
    if bytes.remaining() < plen {
        return Err(ModelCodecError::Truncated("param blob"));
    }
    let pblob = bytes.copy_to_bytes(plen);
    let store =
        tad_autodiff::ParamStore::from_bytes(pblob).map_err(|_| ModelCodecError::BadParams)?;

    let mut model = CausalTad::new(net, cfg);
    model.replace_state(store, scaling);
    Ok(model)
}

fn flag_bits(cfg: &CausalTadConfig) -> u8 {
    (cfg.time_factorised_scaling as u8)
        | ((cfg.disable_sd_decoder as u8) << 1)
        | ((cfg.tie_sd_embedding as u8) << 2)
        | ((cfg.score_includes_sd_nll as u8) << 3)
        | ((cfg.disable_road_constraint as u8) << 4)
}

fn apply_flag_bits(cfg: &mut CausalTadConfig, flags: u8) {
    cfg.time_factorised_scaling = flags & 1 != 0;
    cfg.disable_sd_decoder = flags & 2 != 0;
    cfg.tie_sd_embedding = flags & 4 != 0;
    cfg.score_includes_sd_nll = flags & 8 != 0;
    cfg.disable_road_constraint = flags & 16 != 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use tad_trajsim::{generate_city, CityConfig};

    fn trained() -> (tad_trajsim::City, CausalTad) {
        let city = generate_city(&CityConfig::test_scale(700));
        let mut cfg = CausalTadConfig::test_scale();
        cfg.epochs = 2;
        let mut model = CausalTad::new(&city.net, cfg);
        model.fit(&city.data.train);
        (city, model)
    }

    #[test]
    fn roundtrip_preserves_scores_exactly() {
        let (city, model) = trained();
        let blob = model_to_bytes(&model);
        let restored = model_from_bytes(&city.net, blob).expect("decode");
        for t in city.data.test_id.iter().take(5).chain(city.data.detour.iter().take(5)) {
            assert_eq!(model.score(t), restored.score(t));
        }
    }

    #[test]
    fn vocab_mismatch_rejected() {
        let (_, model) = trained();
        let other = generate_city(&CityConfig::test_scale(701));
        let blob = model_to_bytes(&model);
        match model_from_bytes(&other.net, blob) {
            Err(ModelCodecError::VocabMismatch { .. }) => {}
            other => panic!("expected VocabMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_blob_rejected() {
        let (city, model) = trained();
        let blob = model_to_bytes(&model);
        let cut = blob.slice(0..blob.len() / 2);
        assert!(model_from_bytes(&city.net, cut).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let (city, model) = trained();
        let mut raw = model_to_bytes(&model).to_vec();
        raw[0] = b'Z';
        assert!(matches!(
            model_from_bytes(&city.net, Bytes::from(raw)),
            Err(ModelCodecError::BadMagic)
        ));
    }

    #[test]
    fn config_flags_roundtrip() {
        let mut cfg = CausalTadConfig::test_scale();
        cfg.time_factorised_scaling = true;
        cfg.score_includes_sd_nll = true;
        cfg.tie_sd_embedding = false;
        let bits = flag_bits(&cfg);
        let mut restored = CausalTadConfig::default();
        apply_flag_bits(&mut restored, bits);
        assert!(restored.time_factorised_scaling);
        assert!(restored.score_includes_sd_nll);
        assert!(!restored.tie_sd_embedding);
        assert!(!restored.disable_sd_decoder);
    }
}
