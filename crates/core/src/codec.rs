//! Binary persistence for trained CausalTAD models and live scorer
//! sessions.
//!
//! Two codecs live here:
//!
//! * **Model codec** ([`model_to_bytes`] / [`model_from_bytes`]) —
//!   serialises the configuration, every parameter tensor, and the
//!   precomputed scaling table, so a model trained offline can be shipped
//!   to an online-detection service. The road network is *not* embedded —
//!   the caller supplies it at load time (it defines the successor sets),
//!   and the codec verifies the vocabulary matches. Layout
//!   (little-endian): magic `TADM`, version u16, config block,
//!   scaling-table block (optional), then the [`ParamStore`] blob.
//! * **Session codec** ([`state_to_bytes`] / [`state_from_bytes`]) —
//!   serialises one in-flight [`ScorerState`] so a serving layer can
//!   persist live sessions across a restart (see `tad-serve`'s fleet
//!   snapshots, which embed these blobs). The blob is a standard
//!   checksummed envelope ([`seal_envelope`]/[`open_envelope`] from the
//!   shared [`crate::envelope`] module, also used by the fleet-snapshot
//!   and wire-frame codecs): magic `TADC`, version u16, u64
//!   payload length, payload (hidden row, score accumulators, last
//!   segment, time slot, per-segment trace), then a FNV-1a 64 checksum of
//!   the payload. Decoding hostile bytes returns a typed
//!   [`StateCodecError`]; no input can panic the decoder.
//!
//! [`ParamStore`]: tad_autodiff::ParamStore

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tad_roadnet::RoadNetwork;

use crate::config::CausalTadConfig;
use crate::model::CausalTad;
use crate::online::{ScorerState, SegmentTrace};
use crate::scaling::ScalingTable;

use crate::envelope::{open_envelope, seal_envelope, EnvelopeError};

const MAGIC: &[u8; 4] = b"TADM";
const VERSION: u16 = 1;

const STATE_MAGIC: &[u8; 4] = b"TADC";
const STATE_VERSION: u16 = 1;

/// Errors produced when decoding a serialized model.
#[derive(Debug, PartialEq, Eq)]
pub enum ModelCodecError {
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Input ended before the named field could be read.
    Truncated(&'static str),
    /// The parameter blob failed to decode.
    BadParams,
    /// The supplied road network's segment count does not match the model.
    VocabMismatch {
        /// Segment count the model was trained on.
        expected: usize,
        /// Segment count of the supplied road network.
        actual: usize,
    },
}

impl std::fmt::Display for ModelCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelCodecError::BadMagic => write!(f, "bad magic bytes"),
            ModelCodecError::BadVersion(v) => write!(f, "unsupported version {v}"),
            ModelCodecError::Truncated(what) => write!(f, "truncated input at {what}"),
            ModelCodecError::BadParams => write!(f, "parameter blob failed to decode"),
            ModelCodecError::VocabMismatch { expected, actual } => {
                write!(f, "model was trained on {expected} segments, network has {actual}")
            }
        }
    }
}

impl std::error::Error for ModelCodecError {}

/// Serialises a trained model.
pub fn model_to_bytes(model: &CausalTad) -> Bytes {
    let cfg = model.config();
    let mut buf = BytesMut::with_capacity(1024);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);

    // Config block.
    buf.put_u32_le(model.vocab() as u32);
    buf.put_u32_le(cfg.embed_dim as u32);
    buf.put_u32_le(cfg.hidden_dim as u32);
    buf.put_u32_le(cfg.latent_dim as u32);
    buf.put_u32_le(cfg.rp_latent_dim as u32);
    buf.put_f64_le(cfg.lambda);
    buf.put_u32_le(cfg.scaling_mc_samples as u32);
    buf.put_u32_le(cfg.num_time_slots as u32);
    buf.put_u8(flag_bits(cfg));
    buf.put_u64_le(cfg.seed);

    // Scaling table.
    match model.scaling() {
        Some(table) => {
            buf.put_u8(1);
            let blob = table.to_bytes();
            buf.put_u32_le(blob.len() as u32);
            buf.put_slice(&blob);
        }
        None => buf.put_u8(0),
    }

    // Parameters.
    let params = model.store().to_bytes();
    buf.put_u32_le(params.len() as u32);
    buf.put_slice(&params);
    buf.freeze()
}

/// Restores a model serialized by [`model_to_bytes`] against a road
/// network (which must have the same segment count the model was trained
/// on).
///
/// # Errors
/// Returns the [`ModelCodecError`] naming what failed: wrong magic or
/// version, a truncation point, an undecodable parameter blob, or a
/// vocabulary mismatch against `net`. Decoding never panics.
pub fn model_from_bytes(net: &RoadNetwork, mut bytes: Bytes) -> Result<CausalTad, ModelCodecError> {
    if bytes.remaining() < 6 {
        return Err(ModelCodecError::Truncated("header"));
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(ModelCodecError::BadMagic);
    }
    let version = bytes.get_u16_le();
    if version != VERSION {
        return Err(ModelCodecError::BadVersion(version));
    }
    if bytes.remaining() < 4 * 7 + 8 + 1 + 8 {
        return Err(ModelCodecError::Truncated("config"));
    }
    let vocab = bytes.get_u32_le() as usize;
    if vocab != net.num_segments() {
        return Err(ModelCodecError::VocabMismatch { expected: vocab, actual: net.num_segments() });
    }
    let mut cfg = CausalTadConfig {
        embed_dim: bytes.get_u32_le() as usize,
        hidden_dim: bytes.get_u32_le() as usize,
        latent_dim: bytes.get_u32_le() as usize,
        rp_latent_dim: bytes.get_u32_le() as usize,
        lambda: bytes.get_f64_le(),
        scaling_mc_samples: bytes.get_u32_le() as usize,
        num_time_slots: bytes.get_u32_le() as usize,
        ..CausalTadConfig::default()
    };
    let flags = bytes.get_u8();
    apply_flag_bits(&mut cfg, flags);
    cfg.seed = bytes.get_u64_le();

    if bytes.remaining() < 1 {
        return Err(ModelCodecError::Truncated("scaling flag"));
    }
    let scaling = if bytes.get_u8() == 1 {
        if bytes.remaining() < 4 {
            return Err(ModelCodecError::Truncated("scaling length"));
        }
        let len = bytes.get_u32_le() as usize;
        if bytes.remaining() < len {
            return Err(ModelCodecError::Truncated("scaling blob"));
        }
        let blob = bytes.copy_to_bytes(len);
        Some(
            ScalingTable::from_bytes(blob)
                .map_err(|_| ModelCodecError::Truncated("scaling table"))?,
        )
    } else {
        None
    };

    if bytes.remaining() < 4 {
        return Err(ModelCodecError::Truncated("param length"));
    }
    let plen = bytes.get_u32_le() as usize;
    if bytes.remaining() < plen {
        return Err(ModelCodecError::Truncated("param blob"));
    }
    let pblob = bytes.copy_to_bytes(plen);
    let store =
        tad_autodiff::ParamStore::from_bytes(pblob).map_err(|_| ModelCodecError::BadParams)?;

    let mut model = CausalTad::new(net, cfg);
    model.replace_state(store, scaling);
    Ok(model)
}

/// Errors produced when decoding a serialized [`ScorerState`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateCodecError {
    /// Magic bytes did not match `TADC`.
    BadMagic,
    /// Unsupported session-format version.
    BadVersion(u16),
    /// Input ended before the named field could be read.
    Truncated(&'static str),
    /// The payload checksum did not match (bit rot or tampering).
    ChecksumMismatch,
    /// The payload parsed but violated a structural invariant.
    Malformed(&'static str),
}

impl std::fmt::Display for StateCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateCodecError::BadMagic => write!(f, "bad session magic bytes"),
            StateCodecError::BadVersion(v) => write!(f, "unsupported session version {v}"),
            StateCodecError::Truncated(what) => write!(f, "truncated session input at {what}"),
            StateCodecError::ChecksumMismatch => write!(f, "session payload checksum mismatch"),
            StateCodecError::Malformed(what) => write!(f, "malformed session payload: {what}"),
        }
    }
}

impl std::error::Error for StateCodecError {}

impl From<EnvelopeError> for StateCodecError {
    fn from(e: EnvelopeError) -> Self {
        match e {
            EnvelopeError::BadMagic => StateCodecError::BadMagic,
            EnvelopeError::BadVersion(v) => StateCodecError::BadVersion(v),
            EnvelopeError::Truncated(what) => StateCodecError::Truncated(what),
            EnvelopeError::ChecksumMismatch => StateCodecError::ChecksumMismatch,
            EnvelopeError::TrailingBytes => {
                StateCodecError::Malformed("trailing bytes after checksum")
            }
        }
    }
}

/// Serialises one live [`ScorerState`]. The blob is self-describing
/// (magic, version, length-prefixed payload, checksum) so it can be stored
/// standalone or embedded length-prefixed inside a larger snapshot.
pub fn state_to_bytes(state: &ScorerState) -> Bytes {
    let mut payload = BytesMut::with_capacity(64 + state.h.len() * 4 + state.trace.len() * 20);
    payload.put_u32_le(state.h.cols() as u32);
    for &x in state.h.data() {
        payload.put_f32_le(x);
    }
    payload.put_f64_le(state.base_nll);
    payload.put_f64_le(state.traj_nll);
    payload.put_f64_le(state.scale_log_sum);
    match state.last {
        Some(seg) => {
            payload.put_u8(1);
            payload.put_u32_le(seg);
        }
        None => payload.put_u8(0),
    }
    payload.put_u8(state.time_slot);
    payload.put_u32_le(state.trace.len() as u32);
    for step in &state.trace {
        payload.put_u32_le(step.segment);
        payload.put_f64_le(step.nll);
        payload.put_f64_le(step.log_scale);
    }
    seal_envelope(STATE_MAGIC, STATE_VERSION, payload.freeze())
}

/// Restores a state serialized by [`state_to_bytes`]. The whole input must
/// be one session blob (trailing bytes are rejected); decoding never
/// panics, whatever the input.
///
/// # Errors
/// Returns the [`StateCodecError`] naming what failed: wrong magic or
/// version, a truncation point, a checksum mismatch, or a structural
/// violation of the payload.
pub fn state_from_bytes(bytes: Bytes) -> Result<ScorerState, StateCodecError> {
    let mut payload = open_envelope(STATE_MAGIC, STATE_VERSION, bytes)?;
    let state = parse_state_payload(&mut payload)?;
    if payload.remaining() != 0 {
        return Err(StateCodecError::Malformed("trailing payload bytes"));
    }
    Ok(state)
}

fn parse_state_payload(payload: &mut Bytes) -> Result<ScorerState, StateCodecError> {
    if payload.remaining() < 4 {
        return Err(StateCodecError::Truncated("hidden width"));
    }
    let hidden_cols = payload.get_u32_le() as usize;
    if hidden_cols.checked_mul(4).is_none_or(|need| payload.remaining() < need) {
        return Err(StateCodecError::Truncated("hidden row"));
    }
    let mut hidden = Vec::with_capacity(hidden_cols);
    for _ in 0..hidden_cols {
        hidden.push(payload.get_f32_le());
    }
    if payload.remaining() < 8 * 3 + 1 {
        return Err(StateCodecError::Truncated("accumulators"));
    }
    let base_nll = payload.get_f64_le();
    let traj_nll = payload.get_f64_le();
    let scale_log_sum = payload.get_f64_le();
    let last = match payload.get_u8() {
        0 => None,
        1 => {
            if payload.remaining() < 4 {
                return Err(StateCodecError::Truncated("last segment"));
            }
            Some(payload.get_u32_le())
        }
        _ => return Err(StateCodecError::Malformed("last-segment flag")),
    };
    if payload.remaining() < 1 + 4 {
        return Err(StateCodecError::Truncated("trace length"));
    }
    let time_slot = payload.get_u8();
    let trace_len = payload.get_u32_le() as usize;
    if trace_len.checked_mul(20).is_none_or(|need| payload.remaining() < need) {
        return Err(StateCodecError::Truncated("trace entries"));
    }
    let mut trace = Vec::with_capacity(trace_len);
    for _ in 0..trace_len {
        let segment = payload.get_u32_le();
        let nll = payload.get_f64_le();
        let log_scale = payload.get_f64_le();
        trace.push(SegmentTrace { segment, nll, log_scale });
    }
    Ok(ScorerState::from_parts(hidden, base_nll, traj_nll, scale_log_sum, last, time_slot, trace))
}

fn flag_bits(cfg: &CausalTadConfig) -> u8 {
    (cfg.time_factorised_scaling as u8)
        | ((cfg.disable_sd_decoder as u8) << 1)
        | ((cfg.tie_sd_embedding as u8) << 2)
        | ((cfg.score_includes_sd_nll as u8) << 3)
        | ((cfg.disable_road_constraint as u8) << 4)
}

fn apply_flag_bits(cfg: &mut CausalTadConfig, flags: u8) {
    cfg.time_factorised_scaling = flags & 1 != 0;
    cfg.disable_sd_decoder = flags & 2 != 0;
    cfg.tie_sd_embedding = flags & 4 != 0;
    cfg.score_includes_sd_nll = flags & 8 != 0;
    cfg.disable_road_constraint = flags & 16 != 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use tad_trajsim::{generate_city, CityConfig};

    /// One trained model shared by every test in this module (training in
    /// debug mode is expensive).
    fn trained() -> &'static (tad_trajsim::City, CausalTad) {
        static SHARED: std::sync::OnceLock<(tad_trajsim::City, CausalTad)> =
            std::sync::OnceLock::new();
        SHARED.get_or_init(|| {
            let city = generate_city(&CityConfig::test_scale(700));
            let mut cfg = CausalTadConfig::test_scale();
            cfg.epochs = 2;
            let mut model = CausalTad::new(&city.net, cfg);
            model.fit(&city.data.train);
            (city, model)
        })
    }

    #[test]
    fn roundtrip_preserves_scores_exactly() {
        let (city, model) = trained();
        let blob = model_to_bytes(model);
        let restored = model_from_bytes(&city.net, blob).expect("decode");
        for t in city.data.test_id.iter().take(5).chain(city.data.detour.iter().take(5)) {
            assert_eq!(model.score(t), restored.score(t));
        }
    }

    #[test]
    fn vocab_mismatch_rejected() {
        let (_, model) = trained();
        let other = generate_city(&CityConfig::test_scale(701));
        let blob = model_to_bytes(model);
        match model_from_bytes(&other.net, blob) {
            Err(ModelCodecError::VocabMismatch { .. }) => {}
            other => panic!("expected VocabMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_blob_rejected() {
        let (city, model) = trained();
        let blob = model_to_bytes(model);
        let cut = blob.slice(0..blob.len() / 2);
        assert!(model_from_bytes(&city.net, cut).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let (city, model) = trained();
        let mut raw = model_to_bytes(model).to_vec();
        raw[0] = b'Z';
        assert!(matches!(
            model_from_bytes(&city.net, Bytes::from(raw)),
            Err(ModelCodecError::BadMagic)
        ));
    }

    fn live_state(model: &CausalTad, t: &tad_trajsim::Trajectory, upto: usize) -> ScorerState {
        let sd = t.sd_pair();
        let mut state =
            model.start_state(sd.source.0, sd.dest.0, t.time_slot).expect("valid request");
        for &seg in &t.segments[..upto] {
            model.push_state(&mut state, seg.0);
        }
        state
    }

    #[test]
    fn state_roundtrip_is_exact_and_resumable() {
        let (city, model) = trained();
        let t = &city.data.test_id[0];
        let mid = t.len() / 2;
        let state = live_state(model, t, mid);
        let blob = state_to_bytes(&state);
        let mut restored = state_from_bytes(blob.clone()).expect("decode");
        assert_eq!(restored, state);
        // Canonical encoding: re-encoding the decoded state is byte-for-byte
        // identical.
        assert_eq!(state_to_bytes(&restored).to_vec(), blob.to_vec());
        // Resuming the restored state matches resuming the original exactly.
        let mut original = state;
        for &seg in &t.segments[mid..] {
            let a = model.push_state(&mut original, seg.0);
            let b = model.push_state(&mut restored, seg.0);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn default_state_roundtrips() {
        let state = ScorerState::default();
        let restored = state_from_bytes(state_to_bytes(&state)).expect("decode");
        assert_eq!(restored, state);
        assert_eq!(restored.hidden_width(), 0);
    }

    #[test]
    fn state_decode_rejects_corruption_without_panicking() {
        let (city, model) = trained();
        let state = live_state(model, &city.data.test_id[0], 3);
        let blob = state_to_bytes(&state).to_vec();

        // Wrong magic.
        let mut raw = blob.clone();
        raw[0] ^= 0xFF;
        assert_eq!(state_from_bytes(Bytes::from(raw)), Err(StateCodecError::BadMagic));

        // Wrong version.
        let mut raw = blob.clone();
        raw[4] = 0xEE;
        assert!(matches!(state_from_bytes(Bytes::from(raw)), Err(StateCodecError::BadVersion(_))));

        // Every truncation point errors instead of panicking.
        for cut in 0..blob.len() {
            assert!(state_from_bytes(Bytes::from(blob[..cut].to_vec())).is_err(), "cut={cut}");
        }

        // Any single-bit flip in the body is caught (magic/version flips are
        // caught by the header checks above; the rest by the checksum).
        for byte in 6..blob.len() {
            let mut raw = blob.clone();
            raw[byte] ^= 1;
            assert!(state_from_bytes(Bytes::from(raw)).is_err(), "byte={byte}");
        }

        // Trailing garbage is rejected.
        let mut raw = blob.clone();
        raw.push(0);
        assert_eq!(
            state_from_bytes(Bytes::from(raw)),
            Err(StateCodecError::Malformed("trailing bytes after checksum"))
        );
    }

    #[test]
    fn huge_crafted_state_lengths_error_instead_of_panicking() {
        // Payload length u64::MAX with almost no bytes behind it: the
        // checked envelope guard must fail, not wrap.
        let mut raw = Vec::new();
        raw.extend_from_slice(STATE_MAGIC);
        raw.extend_from_slice(&STATE_VERSION.to_le_bytes());
        raw.extend_from_slice(&u64::MAX.to_le_bytes());
        raw.extend_from_slice(&[0u8; 16]);
        assert_eq!(state_from_bytes(Bytes::from(raw)), Err(StateCodecError::Truncated("payload")));
        // A checksummed payload claiming a near-u32::MAX hidden width.
        let payload = u32::MAX.to_le_bytes().to_vec();
        let blob = seal_envelope(STATE_MAGIC, STATE_VERSION, Bytes::from(payload));
        assert_eq!(state_from_bytes(blob), Err(StateCodecError::Truncated("hidden row")));
    }

    #[test]
    fn config_flags_roundtrip() {
        let mut cfg = CausalTadConfig::test_scale();
        cfg.time_factorised_scaling = true;
        cfg.score_includes_sd_nll = true;
        cfg.tie_sd_embedding = false;
        let bits = flag_bits(&cfg);
        let mut restored = CausalTadConfig::default();
        apply_flag_bits(&mut restored, bits);
        assert!(restored.time_factorised_scaling);
        assert!(restored.score_includes_sd_nll);
        assert!(!restored.tie_sd_embedding);
        assert!(!restored.disable_sd_decoder);
    }
}
