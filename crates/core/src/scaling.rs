//! Precomputed debiasing scaling factors (paper §V-C / §V-D).
//!
//! For every token `v` the table stores the Monte-Carlo estimate of
//! `log E_{e ~ Q2(E|v)}[1 / P(v | e)]`, evaluated in log domain for
//! numerical safety:
//!
//! ```text
//! log E[1/P] ≈ logsumexp_m(-log P_m(v)) - log M,   e_m ~ Q2(E | v)
//! ```
//!
//! Because the scaling factor factorises over segments, the whole table is
//! computed once after training ("the scaling factors can be calculated and
//! stored in advance during inference to support online anomaly detection"),
//! and each online update is a single lookup.
//!
//! The table also stores a per-token ELBO estimate of `log P(v)` so the
//! RP-VAE can act as a stand-alone detector in the ablation study
//! (Table III, row "RP-VAE").

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rand::Rng;

use tad_autodiff::{logsumexp, ParamStore, Tensor};

use crate::rpvae::RpVae;

/// Precomputed per-token scaling factors and RP-VAE likelihoods.
#[derive(Clone, Debug)]
pub struct ScalingTable {
    /// `log E[1/P(v|e)]` per token.
    log_scale: Vec<f64>,
    /// ELBO estimate of `log P(v)` per token (reconstruction − KL).
    elbo: Vec<f64>,
    vocab: usize,
    time_factorised: bool,
    num_slots: usize,
}

impl ScalingTable {
    /// Computes the table for every token of `rp` with `mc_samples` draws.
    pub fn compute<R: Rng + ?Sized>(
        rp: &RpVae,
        store: &ParamStore,
        mc_samples: usize,
        rng: &mut R,
    ) -> Self {
        assert!(mc_samples >= 1, "need at least one Monte-Carlo sample");
        let tokens = rp.num_tokens();
        let mut log_scale = Vec::with_capacity(tokens);
        let mut elbo = Vec::with_capacity(tokens);

        for v in 0..tokens as u32 {
            let (mu, logvar) = rp.encode(store, &[v]);
            let latent = mu.cols();
            // KL(q(e|v) || N(0, I)) in closed form.
            let kl: f64 = mu
                .data()
                .iter()
                .zip(logvar.data())
                .map(|(&m, &lv)| -0.5 * (1.0 + lv - m * m - lv.exp()) as f64)
                .sum();
            // Batch the M samples as rows.
            let mut z = Tensor::zeros(mc_samples, latent);
            for m in 0..mc_samples {
                for c in 0..latent {
                    let std = (0.5 * logvar.get(0, c)).exp();
                    z.set(m, c, mu.get(0, c) + std * gauss(rng) as f32);
                }
            }
            let logits = rp.decode_logits(store, &z);
            let mut neg_logps = Vec::with_capacity(mc_samples);
            let mut logp_sum = 0.0f64;
            for m in 0..mc_samples {
                let row = logits.row(m);
                let logp = (row[v as usize] - logsumexp(row)) as f64;
                neg_logps.push(-logp as f32);
                logp_sum += logp;
            }
            log_scale.push(logsumexp(&neg_logps) as f64 - (mc_samples as f64).ln());
            elbo.push(logp_sum / mc_samples as f64 - kl);
        }

        ScalingTable {
            log_scale,
            elbo,
            vocab: rp.vocab(),
            time_factorised: rp.is_time_factorised(),
            num_slots: rp.num_slots(),
        }
    }

    /// `log E[1/P(t_i|e_i)]` for a segment observed in a time slot.
    #[inline]
    pub fn log_scale(&self, seg: u32, slot: u8) -> f64 {
        self.log_scale[self.token_index(seg, slot)]
    }

    /// ELBO estimate of `log P(t_i)` for the stand-alone RP-VAE detector.
    #[inline]
    pub fn elbo(&self, seg: u32, slot: u8) -> f64 {
        self.elbo[self.token_index(seg, slot)]
    }

    fn token_index(&self, seg: u32, slot: u8) -> usize {
        if self.time_factorised {
            (slot as usize % self.num_slots) * self.vocab + seg as usize
        } else {
            seg as usize
        }
    }

    /// Number of table entries.
    pub fn len(&self) -> usize {
        self.log_scale.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.log_scale.is_empty()
    }

    /// Serialises the table (little-endian; used by the model codec).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.log_scale.len() * 16);
        buf.put_u32_le(self.vocab as u32);
        buf.put_u8(self.time_factorised as u8);
        buf.put_u32_le(self.num_slots as u32);
        buf.put_u32_le(self.log_scale.len() as u32);
        for (&ls, &e) in self.log_scale.iter().zip(self.elbo.iter()) {
            buf.put_f64_le(ls);
            buf.put_f64_le(e);
        }
        buf.freeze()
    }

    /// Deserialises a table written by [`ScalingTable::to_bytes`].
    ///
    /// # Errors
    /// Returns a static description of the malformation (truncated header,
    /// truncated entries, or an entry-count/vocab mismatch); never panics.
    pub fn from_bytes(mut bytes: Bytes) -> Result<Self, &'static str> {
        if bytes.remaining() < 13 {
            return Err("truncated scaling header");
        }
        let vocab = bytes.get_u32_le() as usize;
        let time_factorised = bytes.get_u8() != 0;
        let num_slots = bytes.get_u32_le() as usize;
        let n = bytes.get_u32_le() as usize;
        if bytes.remaining() < n * 16 {
            return Err("truncated scaling entries");
        }
        let mut log_scale = Vec::with_capacity(n);
        let mut elbo = Vec::with_capacity(n);
        for _ in 0..n {
            log_scale.push(bytes.get_f64_le());
            elbo.push(bytes.get_f64_le());
        }
        Ok(ScalingTable { log_scale, elbo, vocab, time_factorised, num_slots })
    }
}

fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CausalTadConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tad_autodiff::optim::Adam;
    use tad_autodiff::Tape;

    fn trained_rp(vocab: usize, freq: &[usize]) -> (ParamStore, RpVae) {
        let cfg = CausalTadConfig::test_scale();
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let rp = RpVae::new(&mut store, vocab, &cfg, &mut rng);
        let mut adam = Adam::new(&store, 0.01);
        let batch: Vec<u32> = freq
            .iter()
            .enumerate()
            .flat_map(|(tok, &n)| std::iter::repeat_n(tok as u32, n))
            .collect();
        for _ in 0..120 {
            let mut tape = Tape::new();
            let loss = rp.loss(&mut tape, &store, &batch, &mut rng);
            tape.backward(loss, &mut store);
            adam.step(&mut store);
        }
        (store, rp)
    }

    #[test]
    fn popular_tokens_get_smaller_scaling() {
        // Token 0 very popular, token 4 rare.
        let (store, rp) = trained_rp(5, &[16, 4, 4, 4, 1]);
        let mut rng = StdRng::seed_from_u64(9);
        let table = ScalingTable::compute(&rp, &store, 32, &mut rng);
        assert_eq!(table.len(), 5);
        assert!(
            table.log_scale(0, 0) < table.log_scale(4, 0),
            "popular {} vs rare {}",
            table.log_scale(0, 0),
            table.log_scale(4, 0)
        );
    }

    #[test]
    fn log_scale_nonnegative_ish() {
        // E[1/P] >= 1 by Jensen whenever P <= 1, so log E[1/P] >= 0.
        let (store, rp) = trained_rp(5, &[8, 8, 8, 8, 8]);
        let mut rng = StdRng::seed_from_u64(10);
        let table = ScalingTable::compute(&rp, &store, 16, &mut rng);
        for v in 0..5u32 {
            assert!(table.log_scale(v, 0) > -1e-9, "v={v}: {}", table.log_scale(v, 0));
        }
    }

    #[test]
    fn elbo_ranks_popularity() {
        let (store, rp) = trained_rp(5, &[16, 4, 4, 4, 1]);
        let mut rng = StdRng::seed_from_u64(11);
        let table = ScalingTable::compute(&rp, &store, 32, &mut rng);
        assert!(table.elbo(0, 0) > table.elbo(4, 0));
    }

    #[test]
    fn time_factorised_table_has_slot_entries() {
        let mut cfg = CausalTadConfig::test_scale();
        cfg.time_factorised_scaling = true;
        let mut rng = StdRng::seed_from_u64(12);
        let mut store = ParamStore::new();
        let rp = RpVae::new(&mut store, 6, &cfg, &mut rng);
        let table = ScalingTable::compute(&rp, &store, 4, &mut rng);
        assert_eq!(table.len(), 6 * cfg.num_time_slots);
        // Different slots may map to different entries without panicking.
        let _ = table.log_scale(5, 0);
        let _ = table.log_scale(5, 3);
    }
}
