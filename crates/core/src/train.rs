//! Training loop for CausalTAD (and reused by the learning baselines'
//! conventions): Adam, mini-batched trajectory losses, gradient clipping,
//! NaN guards, and best-epoch checkpointing.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use tad_autodiff::optim::Adam;
use tad_autodiff::{ParamStore, Tape};
use tad_trajsim::Trajectory;

use crate::config::CausalTadConfig;
use crate::model::CausalTad;

/// Summary of one training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Mean joint loss (`L1 + L2`, Eq. 9) per epoch.
    pub epoch_losses: Vec<f64>,
    /// Wall-clock time of the whole fit.
    pub wall_time: Duration,
    /// Number of trajectories used.
    pub num_trajectories: usize,
    /// True when non-finite losses forced an early stop.
    pub diverged: bool,
}

impl TrainReport {
    /// Final epoch loss (NaN when no epoch ran).
    pub fn final_loss(&self) -> f64 {
        self.epoch_losses.last().copied().unwrap_or(f64::NAN)
    }

    /// Best (lowest) epoch loss.
    pub fn best_loss(&self) -> f64 {
        self.epoch_losses.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Drives the optimisation of a [`CausalTad`] model.
pub struct Trainer {
    cfg: CausalTadConfig,
}

impl Trainer {
    /// Creates a trainer from the model configuration.
    pub fn new(cfg: CausalTadConfig) -> Self {
        Trainer { cfg }
    }

    /// Runs the full optimisation, restoring the best-epoch parameters at
    /// the end (the paper reports the model performing best on validation).
    pub fn fit(&self, model: &mut CausalTad, train: &[Trajectory]) -> TrainReport {
        let start = Instant::now();
        let mut report = TrainReport {
            epoch_losses: Vec::with_capacity(self.cfg.epochs),
            wall_time: Duration::ZERO,
            num_trajectories: train.len(),
            diverged: false,
        };
        if train.is_empty() {
            report.wall_time = start.elapsed();
            return report;
        }

        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x7ea1);
        let mut adam = Adam::new(&model.store, self.cfg.lr);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut best: Option<(f64, ParamStore)> = None;
        let mut tape = Tape::new();

        let micro_batch = self.cfg.micro_batch.max(1);
        'epochs: for _epoch in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            let mut counted = 0usize;
            let mut bad_batches = 0usize;

            for batch in order.chunks(self.cfg.batch_size) {
                let scale = 1.0 / batch.len() as f32;
                let mut batch_loss = 0.0f64;
                let mut batch_ok = true;
                // Micro-batching: pack several trajectories into one tape
                // pass with row-stacked hidden states. The gradient of the
                // summed (then 1/batch-scaled) loss equals the sum of the
                // per-trajectory scaled gradients, so optimiser steps see
                // the same update as the sequential path up to f32
                // reassociation.
                let eligible: Vec<&Trajectory> =
                    batch.iter().map(|&idx| &train[idx]).filter(|t| t.len() >= 2).collect();
                for chunk in eligible.chunks(micro_batch) {
                    tape.reset();
                    let loss = model.trajectory_loss_batch(&mut tape, chunk, &mut rng);
                    let v = tape.value(loss).get(0, 0) as f64;
                    if !v.is_finite() {
                        batch_ok = false;
                        break;
                    }
                    let scaled = tape.scale(loss, scale);
                    tape.backward(scaled, &mut model.store);
                    batch_loss += v;
                    counted += chunk.len();
                }
                if !batch_ok {
                    // NaN guard: drop the poisoned gradients entirely.
                    model.store.zero_grads();
                    bad_batches += 1;
                    if bad_batches > 3 {
                        report.diverged = true;
                        break 'epochs;
                    }
                    continue;
                }
                if self.cfg.grad_clip > 0.0 {
                    model.store.clip_grad_norm(self.cfg.grad_clip);
                }
                adam.step(&mut model.store);
                epoch_loss += batch_loss;
            }

            let mean = if counted > 0 { epoch_loss / counted as f64 } else { f64::NAN };
            report.epoch_losses.push(mean);
            if mean.is_finite() && best.as_ref().is_none_or(|(b, _)| mean < *b) {
                best = Some((mean, model.store.clone()));
            }
        }

        if let Some((_, best_store)) = best {
            model.store.copy_values_from(&best_store);
        }
        report.wall_time = start.elapsed();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tad_trajsim::{generate_city, CityConfig};

    #[test]
    fn loss_decreases_over_epochs() {
        let city = generate_city(&CityConfig::test_scale(300));
        let mut cfg = CausalTadConfig::test_scale();
        cfg.epochs = 5;
        let mut model = CausalTad::new(&city.net, cfg);
        let report = model.fit(&city.data.train);
        assert_eq!(report.epoch_losses.len(), 5);
        assert!(!report.diverged);
        assert!(report.final_loss() < report.epoch_losses[0], "losses: {:?}", report.epoch_losses);
        assert!(
            report.best_loss() <= report.final_loss() + 1e-9,
            "best {} vs final {} (losses: {:?})",
            report.best_loss(),
            report.final_loss(),
            report.epoch_losses
        );
    }

    #[test]
    fn empty_training_set_is_a_noop() {
        let city = generate_city(&CityConfig::test_scale(301));
        let mut model = CausalTad::new(&city.net, CausalTadConfig::test_scale());
        let report = Trainer::new(CausalTadConfig::test_scale()).fit(&mut model, &[]);
        assert!(report.epoch_losses.is_empty());
        assert_eq!(report.num_trajectories, 0);
        assert!(!report.diverged);
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let city = generate_city(&CityConfig::test_scale(302));
        let mut cfg = CausalTadConfig::test_scale();
        cfg.epochs = 2;
        let run = |cfg: CausalTadConfig| {
            let mut model = CausalTad::new(&city.net, cfg);
            model.fit(&city.data.train).final_loss()
        };
        assert_eq!(run(cfg.clone()), run(cfg));
    }

    #[test]
    fn microbatch_matches_sequential_trainer_losses() {
        // The acceptance bar of the vectorised training path: micro-batched
        // training must reach losses within 1e-6 relative tolerance of the
        // sequential (micro_batch = 1) trainer after equal epochs. Both
        // paths draw identical reparameterisation noise; the only
        // differences are f32 reduction reassociation in the batched
        // CE/KL/GEMM nodes.
        let city = generate_city(&CityConfig::test_scale(304));
        let mut seq_cfg = CausalTadConfig::test_scale();
        seq_cfg.epochs = 3;
        seq_cfg.micro_batch = 1;
        let mut mb_cfg = seq_cfg.clone();
        mb_cfg.micro_batch = 4;
        let mut seq_model = CausalTad::new(&city.net, seq_cfg.clone());
        let seq = Trainer::new(seq_cfg).fit(&mut seq_model, &city.data.train);
        let mut mb_model = CausalTad::new(&city.net, mb_cfg.clone());
        let mb = Trainer::new(mb_cfg).fit(&mut mb_model, &city.data.train);
        assert_eq!(seq.epoch_losses.len(), mb.epoch_losses.len());
        for (epoch, (a, b)) in seq.epoch_losses.iter().zip(&mb.epoch_losses).enumerate() {
            let rel = (a - b).abs() / a.abs().max(1e-12);
            assert!(rel < 1e-6, "epoch {epoch} losses diverged: {a} vs {b} (rel {rel:e})");
        }
    }

    #[test]
    fn parameters_stay_finite() {
        let city = generate_city(&CityConfig::test_scale(303));
        let mut cfg = CausalTadConfig::test_scale();
        cfg.epochs = 3;
        let mut model = CausalTad::new(&city.net, cfg);
        model.fit(&city.data.train);
        assert!(model.store().all_finite());
    }
}
