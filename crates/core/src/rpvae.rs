//! Road Preference VAE (RP-VAE, paper §V-C).
//!
//! Factorises the debiasing scaling factor of a trajectory into its road
//! segments and estimates each segment's likelihood with a small VAE: the
//! encoder `Ψe` maps a segment embedding to a Gaussian posterior over the
//! latent preference `E_i`, and the decoder `Ψd` reconstructs the segment.
//! After training, `E_{e ~ Q2(E|t_i)}[1 / P(t_i | e)]` is approximated by
//! Monte Carlo and precomputed for all segments (see
//! [`crate::scaling::ScalingTable`]).
//!
//! With [`crate::config::CausalTadConfig::time_factorised_scaling`] the
//! tokens become `(segment, time-slot)` pairs — the paper's §V-E.3
//! future-work extension.

use rand::Rng;

use tad_autodiff::nn::{Embedding, GaussianHead, Linear};
use tad_autodiff::{ParamStore, Tape, Tensor, Var};

use crate::config::CausalTadConfig;

/// The RP-VAE module.
#[derive(Clone, Debug)]
pub struct RpVae {
    /// `E_s`: token embeddings.
    embed: Embedding,
    /// First stage of `Ψe`.
    enc: Linear,
    /// Gaussian head producing `(mu_i, logvar_i)`.
    head: GaussianHead,
    /// Hidden stage of `Ψd`.
    dec_hidden: Linear,
    /// Token reconstruction head (row-major over tokens).
    out: Linear,
    vocab: usize,
    num_slots: usize,
    time_factorised: bool,
    latent_dim: usize,
}

impl RpVae {
    /// Registers all parameters in `store`. When
    /// `cfg.time_factorised_scaling` is set the token space is
    /// `vocab * num_time_slots`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        vocab: usize,
        cfg: &CausalTadConfig,
        rng: &mut R,
    ) -> Self {
        let tokens = if cfg.time_factorised_scaling { vocab * cfg.num_time_slots } else { vocab };
        let de = cfg.embed_dim;
        let dh = cfg.hidden_dim;
        let dl = cfg.rp_latent_dim;
        RpVae {
            embed: Embedding::new(store, "rp.embed", tokens, de, rng),
            enc: Linear::new(store, "rp.enc", de, dh, rng),
            head: GaussianHead::new(store, "rp.head", dh, dl, rng),
            dec_hidden: Linear::new(store, "rp.dec_hidden", dl, dh, rng),
            out: Linear::new_rowmajor(store, "rp.out", dh, tokens, rng),
            vocab,
            num_slots: cfg.num_time_slots,
            time_factorised: cfg.time_factorised_scaling,
            latent_dim: dl,
        }
    }

    /// Token id for a segment observed in a time slot.
    pub fn token(&self, seg: u32, slot: u8) -> u32 {
        if self.time_factorised {
            (slot as u32 % self.num_slots as u32) * self.vocab as u32 + seg
        } else {
            seg
        }
    }

    /// Number of distinct tokens.
    pub fn num_tokens(&self) -> usize {
        if self.time_factorised {
            self.vocab * self.num_slots
        } else {
            self.vocab
        }
    }

    /// Whether tokens are `(segment, slot)` pairs.
    pub fn is_time_factorised(&self) -> bool {
        self.time_factorised
    }

    /// Number of time slots (1 when not time-factorised).
    pub fn num_slots(&self) -> usize {
        if self.time_factorised {
            self.num_slots
        } else {
            1
        }
    }

    /// Segment vocabulary size (excluding slot factorisation).
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Builds the batched training loss `L2` for a set of observed tokens
    /// (all segments of one trajectory, or any minibatch of occurrences).
    pub fn loss<R: Rng + ?Sized>(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        tokens: &[u32],
        rng: &mut R,
    ) -> Var {
        let eps = Tensor::randn(tokens.len(), self.latent_dim, 0.0, 1.0, rng);
        self.loss_with_eps(tape, store, tokens, eps)
    }

    /// [`RpVae::loss`] with pre-drawn reparameterisation noise (one row per
    /// token). Micro-batched training concatenates several trajectories'
    /// token lists and stacks their per-trajectory eps blocks, keeping rng
    /// consumption identical to the sequential path; the whole batch then
    /// runs one encoder/decoder GEMM chain and one fused full-vocab CE.
    pub fn loss_with_eps(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        tokens: &[u32],
        eps: Tensor,
    ) -> Var {
        assert!(!tokens.is_empty(), "RP-VAE loss needs at least one token");
        assert_eq!(eps.shape(), (tokens.len(), self.latent_dim), "loss_with_eps: eps shape");
        let x = self.embed.lookup(tape, store, tokens);
        let enc_pre = self.enc.forward(tape, store, x);
        let enc_h = tape.tanh(enc_pre);
        let (mu, logvar) = self.head.forward(tape, store, enc_h);
        let kl = tape.kl_std_normal(mu, logvar);
        let z = tape.gaussian_sample(mu, logvar, eps);
        let dec_pre = self.dec_hidden.forward(tape, store, z);
        let dec_h = tape.relu(dec_pre);
        let logits = self.out.forward_rowmajor(tape, store, dec_h);
        let ce = tape.softmax_cross_entropy(logits, tokens);
        tape.add(ce, kl)
    }

    /// Tape-free posterior `(mu, logvar)` for a batch of tokens.
    pub fn encode(&self, store: &ParamStore, tokens: &[u32]) -> (Tensor, Tensor) {
        let x = self.embed.embed(store, tokens);
        let enc_h = self.enc.infer(store, &x).map(f32::tanh);
        self.head.infer(store, &enc_h)
    }

    /// Tape-free decoder logits for a batch of latent samples.
    pub fn decode_logits(&self, store: &ParamStore, z: &Tensor) -> Tensor {
        let dec_h = self.dec_hidden.infer(store, z).map(|x| x.max(0.0));
        self.out.infer_rowmajor(store, &dec_h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tad_autodiff::optim::Adam;

    fn build(time_factorised: bool) -> (ParamStore, RpVae, StdRng) {
        let mut cfg = CausalTadConfig::test_scale();
        cfg.time_factorised_scaling = time_factorised;
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let rp = RpVae::new(&mut store, 10, &cfg, &mut rng);
        (store, rp, rng)
    }

    #[test]
    fn token_mapping_plain_and_time_factorised() {
        let (_, plain, _) = build(false);
        assert_eq!(plain.token(7, 3), 7);
        assert_eq!(plain.num_tokens(), 10);
        let (_, timed, _) = build(true);
        assert_eq!(timed.token(7, 0), 7);
        assert_eq!(timed.token(7, 2), 2 * 10 + 7);
        assert_eq!(timed.num_tokens(), 40);
        assert!(timed.is_time_factorised());
    }

    #[test]
    fn loss_finite_on_batch() {
        let (store, rp, mut rng) = build(false);
        let mut tape = Tape::new();
        let loss = rp.loss(&mut tape, &store, &[1, 5, 5, 9], &mut rng);
        let v = tape.value(loss).get(0, 0);
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn training_learns_token_frequencies() {
        let (mut store, rp, mut rng) = build(false);
        let mut adam = Adam::new(&store, 0.01);
        // Token 3 appears 8x as often as token 7.
        let batch: Vec<u32> = std::iter::repeat_n(3u32, 8).chain(std::iter::once(7u32)).collect();
        for _ in 0..150 {
            let mut tape = Tape::new();
            let loss = rp.loss(&mut tape, &store, &batch, &mut rng);
            tape.backward(loss, &mut store);
            adam.step(&mut store);
        }
        // Reconstruction probability of the frequent token should dominate.
        let (mu, _) = rp.encode(&store, &[3, 7]);
        let logits = rp.decode_logits(&store, &mu);
        let p3 = softmax_prob(logits.row(0), 3);
        let p7 = softmax_prob(logits.row(1), 7);
        assert!(p3 > p7, "frequent token should reconstruct better: {p3} vs {p7}");
    }

    fn softmax_prob(logits: &[f32], idx: usize) -> f64 {
        let lse = tad_autodiff::logsumexp(logits);
        ((logits[idx] - lse) as f64).exp()
    }

    #[test]
    fn encode_decode_shapes() {
        let (store, rp, _) = build(true);
        let (mu, logvar) = rp.encode(&store, &[0, 15, 39]);
        assert_eq!(mu.shape(), (3, 8));
        assert_eq!(logvar.shape(), (3, 8));
        let logits = rp.decode_logits(&store, &mu);
        assert_eq!(logits.shape(), (3, 40));
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn empty_batch_rejected() {
        let (store, rp, mut rng) = build(false);
        let mut tape = Tape::new();
        let _ = rp.loss(&mut tape, &store, &[], &mut rng);
    }
}
