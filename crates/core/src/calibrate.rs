//! Alarm-threshold calibration.
//!
//! ROC/PR-AUC evaluate rankings, but a deployed detector needs a concrete
//! alarm threshold. This module calibrates one from normal trajectories:
//! either a score quantile (bounding the false-positive rate) or a robust
//! mean + k·std rule. Length-normalised scores are supported because raw
//! scores grow with trajectory length.

use tad_trajsim::Trajectory;

use crate::model::CausalTad;

/// How scores are normalised before thresholding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Normalisation {
    /// Raw trajectory scores.
    Raw,
    /// Score divided by trajectory length (comparable across lengths).
    PerSegment,
}

/// A calibrated alarm threshold.
#[derive(Clone, Copy, Debug)]
pub struct Threshold {
    /// Scores strictly above this value raise an alarm.
    pub value: f64,
    /// The normalisation the threshold applies to.
    pub normalisation: Normalisation,
    /// Fraction of the calibration set that would alarm (empirical FPR).
    pub calibration_fpr: f64,
}

impl Threshold {
    /// True when a trajectory's score should raise an alarm.
    pub fn alarms(&self, score: f64, len: usize) -> bool {
        self.normalised(score, len) > self.value
    }

    fn normalised(&self, score: f64, len: usize) -> f64 {
        match self.normalisation {
            Normalisation::Raw => score,
            Normalisation::PerSegment => score / len.max(1) as f64,
        }
    }
}

/// Calibrates a threshold at the `1 - target_fpr` quantile of the normal
/// scores, so roughly `target_fpr` of normal trips alarm.
///
/// # Panics
/// Panics if `normals` is empty or `target_fpr` is outside `(0, 1)`.
pub fn calibrate_quantile(
    model: &CausalTad,
    normals: &[Trajectory],
    target_fpr: f64,
    normalisation: Normalisation,
) -> Threshold {
    assert!(!normals.is_empty(), "calibration set must not be empty");
    assert!(target_fpr > 0.0 && target_fpr < 1.0, "target FPR must be in (0, 1)");
    let mut scores: Vec<f64> = normals
        .iter()
        .map(|t| match normalisation {
            Normalisation::Raw => model.score(t),
            Normalisation::PerSegment => model.score(t) / t.len().max(1) as f64,
        })
        .collect();
    scores.sort_by(f64::total_cmp);
    let idx =
        (((1.0 - target_fpr) * scores.len() as f64).ceil() as usize).clamp(1, scores.len()) - 1;
    let value = scores[idx];
    let fpr = scores.iter().filter(|&&s| s > value).count() as f64 / scores.len() as f64;
    Threshold { value, normalisation, calibration_fpr: fpr }
}

/// Calibrates a `mean + k * std` threshold over the normal scores.
pub fn calibrate_sigma(
    model: &CausalTad,
    normals: &[Trajectory],
    k: f64,
    normalisation: Normalisation,
) -> Threshold {
    assert!(!normals.is_empty(), "calibration set must not be empty");
    let scores: Vec<f64> = normals
        .iter()
        .map(|t| match normalisation {
            Normalisation::Raw => model.score(t),
            Normalisation::PerSegment => model.score(t) / t.len().max(1) as f64,
        })
        .collect();
    let n = scores.len() as f64;
    let mean = scores.iter().sum::<f64>() / n;
    let var = scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
    let value = mean + k * var.sqrt();
    let fpr = scores.iter().filter(|&&s| s > value).count() as f64 / n;
    Threshold { value, normalisation, calibration_fpr: fpr }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CausalTadConfig;
    use tad_trajsim::{generate_city, CityConfig};

    fn trained() -> (tad_trajsim::City, CausalTad) {
        // Seed 801: under the vendored PRNG stream, seed 800's tiny city
        // generates detours that happen to score below normals per-segment;
        // this test checks calibration mechanics, not that marginal city.
        let city = generate_city(&CityConfig::test_scale(801));
        let mut cfg = CausalTadConfig::test_scale();
        cfg.epochs = 3;
        let mut model = CausalTad::new(&city.net, cfg);
        model.fit(&city.data.train);
        (city, model)
    }

    #[test]
    fn quantile_threshold_bounds_fpr() {
        let (city, model) = trained();
        let th = calibrate_quantile(&model, &city.data.test_id, 0.1, Normalisation::PerSegment);
        // Empirical FPR on the calibration set must not exceed the target
        // (quantile rounding only lowers it).
        assert!(th.calibration_fpr <= 0.1 + 1e-9, "fpr {}", th.calibration_fpr);
        // And the threshold actually fires on something anomalous more often
        // than on normals.
        let alarms = |ts: &[Trajectory]| {
            ts.iter().filter(|t| th.alarms(model.score(t), t.len())).count() as f64
                / ts.len() as f64
        };
        assert!(alarms(&city.data.detour) > alarms(&city.data.test_id));
    }

    #[test]
    fn sigma_threshold_is_above_mean() {
        let (city, model) = trained();
        let th = calibrate_sigma(&model, &city.data.test_id, 3.0, Normalisation::Raw);
        let mean: f64 = city.data.test_id.iter().map(|t| model.score(t)).sum::<f64>()
            / city.data.test_id.len() as f64;
        assert!(th.value > mean);
        assert!(th.calibration_fpr < 0.1);
    }

    #[test]
    fn per_segment_normalisation_divides() {
        let th = Threshold {
            value: 2.0,
            normalisation: Normalisation::PerSegment,
            calibration_fpr: 0.0,
        };
        assert!(!th.alarms(10.0, 10)); // 1.0 per segment
        assert!(th.alarms(30.0, 10)); // 3.0 per segment
        let raw = Threshold { value: 2.0, normalisation: Normalisation::Raw, calibration_fpr: 0.0 };
        assert!(raw.alarms(10.0, 10));
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_calibration_set_panics() {
        let (_, model) = trained();
        let _ = calibrate_quantile(&model, &[], 0.1, Normalisation::Raw);
    }
}
