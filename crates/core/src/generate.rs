//! Trajectory *generation* from a trained model.
//!
//! CausalTAD is an implicit generative model: given an SD pair it defines
//! `P(T | c)` autoregressively over the road network. Sampling from it
//! yields plausible routes for a pair — useful for route suggestion, for
//! inspecting what the model believes "normal" looks like, and as a test
//! that the decoder learned the data distribution (generated routes should
//! score as normal).

use rand::Rng;

use tad_autodiff::{logsumexp, Tensor};

use crate::model::CausalTad;

/// Controls for [`sample_route`].
#[derive(Clone, Debug)]
pub struct GenerateConfig {
    /// Hard cap on generated length (guards against wandering).
    pub max_len: usize,
    /// Softmax temperature: 0 < t < 1 sharpens towards the argmax route,
    /// t = 1 samples the model faithfully.
    pub temperature: f64,
}

impl Default for GenerateConfig {
    fn default() -> Self {
        GenerateConfig { max_len: 256, temperature: 1.0 }
    }
}

/// Outcome of a generation attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GenerateOutcome {
    /// The route reached the destination segment.
    ReachedDestination,
    /// `max_len` was hit before reaching the destination.
    LengthCapped,
    /// A dead end with no successors was reached (only possible on
    /// degenerate networks).
    DeadEnd,
}

/// Samples a route for `(source, dest)` from the trained decoder,
/// following the road network's successor constraint at every step.
/// Returns the segment walk (starting at `source`) and how it ended.
pub fn sample_route<R: Rng + ?Sized>(
    model: &CausalTad,
    source: u32,
    dest: u32,
    cfg: &GenerateConfig,
    rng: &mut R,
) -> (Vec<u32>, GenerateOutcome) {
    assert!(cfg.temperature > 0.0, "temperature must be positive");
    let (r, _) = model.tg.encode_mean(&model.store, source, dest);
    let mut h: Tensor = model.tg.init_hidden(&model.store, &r);
    let mut walk = vec![source];
    let mut cur = source;

    while walk.len() < cfg.max_len {
        h = model.tg.advance(&model.store, &h, cur);
        if cur == dest && walk.len() > 1 {
            return (walk, GenerateOutcome::ReachedDestination);
        }
        let cands = model.successors_of(cur);
        if cands.is_empty() {
            return (walk, GenerateOutcome::DeadEnd);
        }
        let logits = model.tg.candidate_logits(&model.store, &h, cands);
        let next = sample_categorical(&logits, cfg.temperature, rng);
        cur = cands[next];
        walk.push(cur);
        if cur == dest {
            return (walk, GenerateOutcome::ReachedDestination);
        }
    }
    (walk, GenerateOutcome::LengthCapped)
}

/// Samples an index from temperature-scaled softmax logits.
fn sample_categorical<R: Rng + ?Sized>(logits: &[f32], temperature: f64, rng: &mut R) -> usize {
    let scaled: Vec<f32> = logits.iter().map(|&x| x / temperature as f32).collect();
    let lse = logsumexp(&scaled);
    let mut u: f64 = rng.gen_range(0.0..1.0);
    for (i, &x) in scaled.iter().enumerate() {
        let p = ((x - lse) as f64).exp();
        u -= p;
        if u <= 0.0 {
            return i;
        }
    }
    scaled.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CausalTadConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tad_trajsim::{generate_city, CityConfig, Trajectory};

    fn trained() -> (tad_trajsim::City, CausalTad) {
        let city = generate_city(&CityConfig::test_scale(810));
        let mut cfg = CausalTadConfig::test_scale();
        cfg.epochs = 20;
        let mut model = CausalTad::new(&city.net, cfg);
        model.fit(&city.data.train);
        (city, model)
    }

    #[test]
    fn generated_routes_are_valid_walks() {
        let (city, model) = trained();
        let mut rng = StdRng::seed_from_u64(1);
        let t = &city.data.train[0];
        let sd = t.sd_pair();
        for _ in 0..5 {
            let (walk, _) =
                sample_route(&model, sd.source.0, sd.dest.0, &GenerateConfig::default(), &mut rng);
            let path: Vec<_> = walk.iter().map(|&s| tad_roadnet::SegmentId(s)).collect();
            assert!(city.net.is_connected_path(&path), "generated walk must follow the network");
            assert_eq!(walk[0], sd.source.0);
        }
    }

    #[test]
    fn low_temperature_reaches_trained_destination() {
        let (city, model) = trained();
        let mut rng = StdRng::seed_from_u64(2);
        // Use the SD pair with the most training examples.
        let mut counts = std::collections::HashMap::new();
        for t in &city.data.train {
            *counts.entry(t.sd_pair()).or_insert(0usize) += 1;
        }
        // Deterministic tie-break: `max_by_key` alone would pick an
        // arbitrary pair among equal counts (HashMap order is seeded per
        // process), making the test flaky.
        let (&sd, _) = counts.iter().max_by_key(|(&sd, &c)| (c, sd.source.0, sd.dest.0)).unwrap();
        let cfg = GenerateConfig { temperature: 0.3, max_len: 128 };
        let reached = (0..10)
            .filter(|_| {
                let (_, outcome) = sample_route(&model, sd.source.0, sd.dest.0, &cfg, &mut rng);
                outcome == GenerateOutcome::ReachedDestination
            })
            .count();
        assert!(
            reached >= 5,
            "low-temperature sampling should usually reach the destination ({reached}/10)"
        );
    }

    #[test]
    fn generated_routes_score_as_normal() {
        let (city, model) = trained();
        let mut rng = StdRng::seed_from_u64(3);
        let t = &city.data.train[0];
        let sd = t.sd_pair();
        let cfg = GenerateConfig { temperature: 0.5, max_len: 128 };
        let (walk, outcome) = sample_route(&model, sd.source.0, sd.dest.0, &cfg, &mut rng);
        if outcome == GenerateOutcome::ReachedDestination {
            let gen_traj = Trajectory::normal(
                walk.iter().map(|&s| tad_roadnet::SegmentId(s)).collect(),
                t.time_slot,
            );
            let gen_score = model.score(&gen_traj) / gen_traj.len() as f64;
            let detour_score = model.score(&city.data.detour[0]) / city.data.detour[0].len() as f64;
            assert!(
                gen_score < detour_score,
                "model-generated route ({gen_score:.2}/seg) should look more normal than a detour ({detour_score:.2}/seg)"
            );
        }
    }

    #[test]
    fn sample_categorical_respects_distribution() {
        let mut rng = StdRng::seed_from_u64(4);
        // Heavily peaked logits: index 1 should dominate.
        let logits = [0.0f32, 8.0, 0.0];
        let hits = (0..100).filter(|_| sample_categorical(&logits, 1.0, &mut rng) == 1).count();
        assert!(hits > 90, "{hits}");
    }
}
