//! # causaltad
//!
//! From-scratch Rust implementation of **CausalTAD** (Li et al., ICDE
//! 2024): a causal implicit generative model for debiased online trajectory
//! anomaly detection.
//!
//! Existing detectors estimate the conditional probability `P(T | C)` of a
//! trajectory `T` given its source-destination pair `C` and fail on unseen
//! SD pairs, because an unobserved road-preference confounder `E` causes
//! both `C` and `T`. CausalTAD instead estimates the interventional
//! `P(T | do(C))`, decomposed (Eq. 2) into
//!
//! * a **likelihood** term `P(c, t)`, estimated by the [`TgVae`] — an SD
//!   conditioned VAE with a road-constrained autoregressive decoder and an
//!   SD decoder that prevents posterior collapse; and
//! * a **scaling factor** `E_{e~P(E|c,t)}[1 / P(c|e)]`, factorised over
//!   road segments and estimated by the [`RpVae`], then precomputed into a
//!   [`ScalingTable`] so online updates are O(1).
//!
//! The assembled detector is [`CausalTad`]; streaming detection goes
//! through [`OnlineScorer`].
//!
//! ```no_run
//! use causaltad::{CausalTad, CausalTadConfig};
//! use tad_trajsim::{generate_city, CityConfig};
//!
//! let city = generate_city(&CityConfig::test_scale(1));
//! let mut model = CausalTad::new(&city.net, CausalTadConfig::default());
//! model.fit(&city.data.train);
//!
//! let trip = &city.data.test_id[0];
//! let score = model.score(trip); // higher = more anomalous
//! # let _ = score;
//! ```
//!
//! ## Module map (paper section → code)
//!
//! | Paper | Module |
//! |---|---|
//! | §IV-B TG-VAE likelihood, road-constrained decoder head | [`TgVae`] |
//! | §IV-C RP-VAE causal prior / confounder model | [`RpVae`] |
//! | §IV-D scaling factor `E[1/P(t_i\|e_i)]` | [`ScalingTable`] |
//! | §V-D O(1) online scoring | [`OnlineScorer`] / [`ScorerState`] |
//! | Eq. 10–11 debiased score assembly | [`ScorerState::score`] |
//!
//! See `docs/ARCHITECTURE.md` at the repository root for the cross-crate
//! picture (autodiff → core → serve → net).

#![deny(missing_docs)]

pub mod calibrate;
mod codec;
mod config;
pub mod delta;
pub mod envelope;
pub mod generate;
mod model;
mod online;
mod rpvae;
mod scaling;
mod tgvae;
mod train;

pub use codec::{
    model_from_bytes, model_to_bytes, state_from_bytes, state_to_bytes, ModelCodecError,
    StateCodecError,
};
pub use config::CausalTadConfig;
pub use delta::{DeltaChain, DeltaChainError, DeltaId};
pub use envelope::{checksum64, open_envelope, seal_envelope, EnvelopeError};
pub use model::CausalTad;
pub use online::{OnlineError, OnlineScorer, ScorerState, SegmentTrace};
pub use rpvae::RpVae;
pub use scaling::ScalingTable;
pub use tgvae::{StepCache, TgVae, OFF_GRAPH_NLL};
pub use train::{TrainReport, Trainer};
