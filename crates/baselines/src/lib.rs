//! # tad-baselines
//!
//! The seven baseline detectors of the CausalTAD paper (§VI-A4), all
//! implemented from scratch behind the common [`Detector`] trait:
//!
//! | Detector | Kind | Source |
//! |---|---|---|
//! | [`Iboat`] | metric-based, adaptive working window | Chen et al., 2013 |
//! | [`Sae`] | seq2seq autoencoder, reconstruction error | Malhotra et al., 2016 |
//! | [`Vsae::vsae`] | RNN variational autoencoder | Kingma & Welling, 2014 |
//! | [`Vsae::beta_vae`] | β-weighted KL (disentanglement) | Higgins et al., 2017 |
//! | [`FactorVae`] | adversarial total-correlation penalty | Kim & Mnih, 2018 |
//! | [`GmVsae`] | Gaussian-mixture latent prior | Liu et al., ICDE 2020 |
//! | [`Vsae::deeptea`] | time-conditioned VAE | Han et al., VLDB 2022 |
//!
//! The learning baselines share a GRU encoder/decoder backbone
//! ([`seq::SeqCore`]) that decodes over the **full vocabulary** — the
//! road-constrained projection is CausalTAD's contribution and is
//! deliberately absent here, mirroring the original methods.

mod detector;
mod factor_vae;
mod gmvsae;
mod iboat;
mod sae;
pub mod seq;
mod vsae;

pub use detector::{BaselineConfig, Detector};
pub use factor_vae::FactorVae;
pub use gmvsae::GmVsae;
pub use iboat::{Iboat, IboatConfig};
pub use sae::Sae;
pub use vsae::Vsae;

/// Instantiates the full baseline roster of the paper with one shared
/// configuration (iBOAT takes its own defaults).
pub fn paper_baselines(cfg: &BaselineConfig) -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(Iboat::new(IboatConfig::default())),
        Box::new(Vsae::vsae(cfg.clone())),
        Box::new(Sae::new(cfg.clone())),
        Box::new(Vsae::beta_vae(cfg.clone(), 4.0)),
        Box::new(FactorVae::new(cfg.clone(), 2.0)),
        Box::new(GmVsae::new(cfg.clone(), 4)),
        Box::new(Vsae::deeptea(cfg.clone())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_paper_order() {
        let names: Vec<_> =
            paper_baselines(&BaselineConfig::test_scale()).iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec!["iBOAT", "VSAE", "SAE", "BetaVAE", "FactorVAE", "GM-VSAE", "DeepTEA"]
        );
    }
}
