//! SAE: sequence autoencoder baseline (Malhotra et al., 2016).
//!
//! A plain Seq2Seq model: a GRU encoder summarises the trajectory into a
//! hidden state, a GRU decoder reconstructs it with teacher forcing, and
//! the reconstruction error is the anomaly score.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tad_autodiff::ParamStore;
use tad_roadnet::RoadNetwork;
use tad_trajsim::Trajectory;

use crate::detector::{BaselineConfig, Detector};
use crate::seq::{tokens, train_loop, SeqCore};

/// The SAE detector.
pub struct Sae {
    cfg: BaselineConfig,
    inner: Option<Inner>,
}

struct Inner {
    store: ParamStore,
    core: SeqCore,
}

impl Sae {
    /// Creates an unfitted SAE.
    pub fn new(cfg: BaselineConfig) -> Self {
        Sae { cfg, inner: None }
    }

    fn inner(&self) -> &Inner {
        self.inner.as_ref().expect("SAE: call fit() before scoring")
    }
}

impl Detector for Sae {
    fn name(&self) -> &'static str {
        "SAE"
    }

    fn fit(&mut self, net: &RoadNetwork, train: &[Trajectory]) {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut store = ParamStore::new();
        let core = SeqCore::new(&mut store, "sae", net.num_segments(), &self.cfg, false, &mut rng);
        train_loop(&mut store, &self.cfg, train, |tape, store, t, _| {
            let toks = tokens(t);
            let h = core.encode(tape, store, &toks, t.time_slot);
            core.decode_nll(tape, store, h, &toks, t.time_slot)
        });
        self.inner = Some(Inner { store, core });
    }

    fn score_prefix(&self, traj: &Trajectory, prefix_len: usize) -> f64 {
        let inner = self.inner();
        let toks = tokens(traj);
        let n = prefix_len.clamp(2.min(toks.len()), toks.len());
        let prefix = &toks[..n];
        let h = inner.core.infer_encode(&inner.store, prefix, traj.time_slot);
        inner.core.infer_decode_nll(&inner.store, &h, prefix, traj.time_slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tad_trajsim::{generate_city, CityConfig};

    #[test]
    fn sae_separates_anomalies_from_training_routes() {
        let city = generate_city(&CityConfig::test_scale(400));
        let mut sae = Sae::new(BaselineConfig::test_scale());
        sae.fit(&city.net, &city.data.train);
        let mean = |ts: &[Trajectory]| -> f64 {
            ts.iter().map(|t| sae.score(t)).sum::<f64>() / ts.len() as f64
        };
        assert!(
            mean(&city.data.detour) > mean(&city.data.test_id),
            "detours should reconstruct worse"
        );
    }

    #[test]
    #[should_panic(expected = "call fit()")]
    fn scoring_before_fit_panics() {
        let city = generate_city(&CityConfig::test_scale(401));
        let sae = Sae::new(BaselineConfig::test_scale());
        let _ = sae.score(&city.data.test_id[0]);
    }

    #[test]
    fn prefix_scores_defined_for_all_lengths() {
        let city = generate_city(&CityConfig::test_scale(402));
        let mut sae = Sae::new(BaselineConfig::test_scale());
        sae.fit(&city.net, &city.data.train);
        let t = &city.data.test_id[0];
        for len in 1..=t.len() {
            assert!(sae.score_prefix(t, len).is_finite());
        }
    }
}
