//! FactorVAE baseline (Kim & Mnih, ICML 2018).
//!
//! A VSAE whose objective adds a total-correlation (TC) penalty estimated by
//! an adversarial discriminator: `D` is trained to tell true posterior
//! samples `z ~ q(z|x)` from dimension-wise permuted samples, and the VAE
//! receives `γ · (log D(z) − log(1 − D(z)))` as an extra loss. The
//! discriminator lives in its *own* parameter store, so VAE updates never
//! touch it (and vice versa) — the standard two-player setup.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use tad_autodiff::nn::{GaussianHead, Linear};
use tad_autodiff::optim::Adam;
use tad_autodiff::{ParamStore, Tape, Tensor, Var};
use tad_roadnet::RoadNetwork;
use tad_trajsim::Trajectory;

use crate::detector::{BaselineConfig, Detector};
use crate::seq::{tokens, SeqCore};

/// The FactorVAE detector.
pub struct FactorVae {
    cfg: BaselineConfig,
    /// TC penalty weight γ.
    gamma: f32,
    inner: Option<Inner>,
}

struct Inner {
    store: ParamStore,
    core: SeqCore,
    head: GaussianHead,
    dec_init: Linear,
}

/// Two-class MLP discriminator over latent vectors, with its own store.
struct Discriminator {
    store: ParamStore,
    l1: Linear,
    l2: Linear,
}

impl Discriminator {
    fn new(latent: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let mut store = ParamStore::new();
        let l1 = Linear::new(&mut store, "disc.l1", latent, hidden, rng);
        let l2 = Linear::new(&mut store, "disc.l2", hidden, 2, rng);
        Discriminator { store, l1, l2 }
    }

    /// `log D(z) - log(1 - D(z))` as logit difference, with the
    /// discriminator weights entering the (VAE) tape as constants so no
    /// gradient reaches them.
    fn tc_logit_on_vae_tape(&self, tape: &mut Tape, z: Var) -> Var {
        let w1 = tape.input(self.store.value(self.l1.weight()).clone());
        let b1 = tape.input(self.store.value(self.l1.bias()).clone());
        let w2 = tape.input(self.store.value(self.l2.weight()).clone());
        let b2 = tape.input(self.store.value(self.l2.bias()).clone());
        let h_pre0 = tape.matmul(z, w1);
        let h_pre = tape.add(h_pre0, b1);
        let h = tape.relu(h_pre);
        let logits_pre = tape.matmul(h, w2);
        let logits = tape.add(logits_pre, b2);
        let real = tape.slice_cols(logits, 0, 1);
        let perm = tape.slice_cols(logits, 1, 1);
        tape.sub(real, perm)
    }

    /// One discriminator update on a batch of detached latent samples.
    fn train_step(&mut self, adam: &mut Adam, zs: &[Tensor], rng: &mut StdRng) {
        if zs.len() < 2 {
            return;
        }
        let latent = zs[0].cols();
        let n = zs.len();
        // Stack real samples and dimension-wise permuted samples.
        let mut real = Tensor::zeros(n, latent);
        let mut perm = Tensor::zeros(n, latent);
        for (i, z) in zs.iter().enumerate() {
            real.row_mut(i).copy_from_slice(z.row(0));
        }
        for c in 0..latent {
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(rng);
            for (i, &j) in order.iter().enumerate() {
                perm.set(i, c, real.get(j, c));
            }
        }
        let mut tape = Tape::new();
        let x_real = tape.input(real);
        let x_perm = tape.input(perm);
        let loss_real = self.class_loss(&mut tape, x_real, 0, n);
        let loss_perm = self.class_loss(&mut tape, x_perm, 1, n);
        let loss = tape.add(loss_real, loss_perm);
        tape.backward(loss, &mut self.store);
        adam.step(&mut self.store);
    }

    fn class_loss(&self, tape: &mut Tape, x: Var, class: u32, n: usize) -> Var {
        let h_pre = self.l1.forward(tape, &self.store, x);
        let h = tape.relu(h_pre);
        let logits = self.l2.forward(tape, &self.store, h);
        let targets = vec![class; n];
        let ce = tape.softmax_cross_entropy(logits, &targets);
        tape.scale(ce, 1.0 / n as f32)
    }
}

impl FactorVae {
    /// Creates an unfitted FactorVAE with TC weight γ.
    pub fn new(cfg: BaselineConfig, gamma: f32) -> Self {
        FactorVae { cfg, gamma, inner: None }
    }

    fn inner(&self) -> &Inner {
        self.inner.as_ref().expect("FactorVAE: call fit() before scoring")
    }
}

impl Detector for FactorVae {
    fn name(&self) -> &'static str {
        "FactorVAE"
    }

    fn fit(&mut self, net: &RoadNetwork, train: &[Trajectory]) {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut store = ParamStore::new();
        let core = SeqCore::new(&mut store, "fvae", net.num_segments(), &self.cfg, false, &mut rng);
        let head = GaussianHead::new(
            &mut store,
            "fvae.head",
            self.cfg.hidden_dim,
            self.cfg.latent_dim,
            &mut rng,
        );
        let dec_init = Linear::new(
            &mut store,
            "fvae.dec_init",
            self.cfg.latent_dim,
            self.cfg.hidden_dim,
            &mut rng,
        );
        let mut disc = Discriminator::new(self.cfg.latent_dim, self.cfg.hidden_dim, &mut rng);
        let mut disc_adam = Adam::new(&disc.store, self.cfg.lr);

        // Custom loop: the discriminator trains on whole batches of z.
        let mut adam = Adam::new(&store, self.cfg.lr);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut tape = Tape::new();
        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(self.cfg.batch_size) {
                let scale = 1.0 / batch.len() as f32;
                let mut batch_z: Vec<Tensor> = Vec::with_capacity(batch.len());
                let mut ok = true;
                for &idx in batch {
                    let t = &train[idx];
                    if t.len() < 2 {
                        continue;
                    }
                    let toks = tokens(t);
                    tape.reset();
                    let h = core.encode(&mut tape, &store, &toks, t.time_slot);
                    let (mu, logvar) = head.forward(&mut tape, &store, h);
                    let kl = tape.kl_std_normal(mu, logvar);
                    let eps = Tensor::randn(1, self.cfg.latent_dim, 0.0, 1.0, &mut rng);
                    let z = tape.gaussian_sample(mu, logvar, eps);
                    batch_z.push(tape.value(z).clone());
                    let tc = disc.tc_logit_on_vae_tape(&mut tape, z);
                    let tc_w = tape.scale(tc, self.gamma);
                    let h0_pre = dec_init.forward(&mut tape, &store, z);
                    let h0 = tape.tanh(h0_pre);
                    let rec = core.decode_nll(&mut tape, &store, h0, &toks, t.time_slot);
                    let partial = tape.add(rec, kl);
                    let loss = tape.add(partial, tc_w);
                    if !tape.value(loss).get(0, 0).is_finite() {
                        ok = false;
                        break;
                    }
                    let scaled = tape.scale(loss, scale);
                    tape.backward(scaled, &mut store);
                }
                if !ok {
                    store.zero_grads();
                    continue;
                }
                if self.cfg.grad_clip > 0.0 {
                    store.clip_grad_norm(self.cfg.grad_clip);
                }
                adam.step(&mut store);
                disc.train_step(&mut disc_adam, &batch_z, &mut rng);
            }
        }
        self.inner = Some(Inner { store, core, head, dec_init });
    }

    fn score_prefix(&self, traj: &Trajectory, prefix_len: usize) -> f64 {
        let inner = self.inner();
        let toks = tokens(traj);
        let n = prefix_len.clamp(2.min(toks.len()), toks.len());
        let prefix = &toks[..n];
        let h = inner.core.infer_encode(&inner.store, prefix, traj.time_slot);
        let (mu, logvar) = inner.head.infer(&inner.store, &h);
        let kl: f64 = mu
            .data()
            .iter()
            .zip(logvar.data())
            .map(|(&m, &lv)| -0.5 * (1.0 + lv - m * m - lv.exp()) as f64)
            .sum();
        let h0 = inner.dec_init.infer(&inner.store, &mu).map(f32::tanh);
        inner.core.infer_decode_nll(&inner.store, &h0, prefix, traj.time_slot) + kl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use tad_trajsim::{generate_city, CityConfig};

    #[test]
    fn factor_vae_fits_and_scores() {
        let city = generate_city(&CityConfig::test_scale(420));
        let mut m = FactorVae::new(BaselineConfig::test_scale(), 2.0);
        m.fit(&city.net, &city.data.train);
        let mean = |ts: &[Trajectory]| -> f64 {
            ts.iter().map(|t| m.score(t)).sum::<f64>() / ts.len() as f64
        };
        assert!(mean(&city.data.detour) > mean(&city.data.test_id));
    }

    #[test]
    fn discriminator_learns_to_separate_correlated_dims() {
        // Construct z where all dims are equal (maximal correlation):
        // permuted versions are easily distinguishable.
        let mut rng = StdRng::seed_from_u64(0);
        let mut disc = Discriminator::new(4, 16, &mut rng);
        let mut adam = Adam::new(&disc.store, 0.01);
        for _ in 0..60 {
            let zs: Vec<Tensor> = (0..16)
                .map(|_| {
                    let v: f32 = rng.gen_range(-2.0..2.0);
                    Tensor::from_vec(1, 4, vec![v; 4])
                })
                .collect();
            disc.train_step(&mut adam, &zs, &mut rng);
        }
        // A fresh correlated sample should be classified "real" (class 0).
        let mut tape = Tape::new();
        let z = tape.input(Tensor::from_vec(1, 4, vec![1.5; 4]));
        let logit = disc.tc_logit_on_vae_tape(&mut tape, z);
        assert!(
            tape.value(logit).get(0, 0) > 0.0,
            "correlated sample should look 'real': {}",
            tape.value(logit).get(0, 0)
        );
    }
}
