//! Shared sequence-model machinery for the learning baselines.
//!
//! All six learning baselines (SAE, VSAE, β-VAE, FactorVAE, GM-VSAE,
//! DeepTEA) are encoder/decoder GRUs over road-segment tokens that differ
//! only in their latent treatment. This module provides:
//!
//! * [`SeqCore`] — embeddings, encoder GRU, decoder GRU and the full-vocab
//!   output projection (the baselines do *not* use CausalTAD's
//!   road-constrained projection — that is one of its contributions);
//! * a generic mini-batch [`train_loop`] with gradient clipping, NaN
//!   guards, and best-epoch checkpointing.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use tad_autodiff::nn::{Embedding, GruCell, Linear};
use tad_autodiff::optim::Adam;
use tad_autodiff::{logsumexp, ParamStore, Tape, Tensor, Var};
use tad_trajsim::Trajectory;

use crate::detector::BaselineConfig;

/// Shared encoder/decoder backbone.
#[derive(Clone, Debug)]
pub struct SeqCore {
    /// Token embeddings (shared by encoder and decoder).
    pub embed: Embedding,
    /// Encoder GRU.
    pub enc_gru: GruCell,
    /// Decoder GRU.
    pub dec_gru: GruCell,
    /// Full-vocabulary output projection (row-major).
    pub out: Linear,
    /// Optional departure-slot embedding appended to every GRU input
    /// (DeepTEA's time conditioning).
    pub slot_embed: Option<Embedding>,
    hidden: usize,
    vocab: usize,
}

impl SeqCore {
    /// Registers the backbone parameters. `time_aware` adds the slot
    /// embedding.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        cfg: &BaselineConfig,
        time_aware: bool,
        rng: &mut R,
    ) -> Self {
        let de = cfg.embed_dim;
        let dh = cfg.hidden_dim;
        let slot_dim = if time_aware { de / 2 } else { 0 };
        SeqCore {
            embed: Embedding::new(store, &format!("{name}.embed"), vocab, de, rng),
            enc_gru: GruCell::new(store, &format!("{name}.enc_gru"), de + slot_dim, dh, rng),
            dec_gru: GruCell::new(store, &format!("{name}.dec_gru"), de + slot_dim, dh, rng),
            out: Linear::new_rowmajor(store, &format!("{name}.out"), dh, vocab, rng),
            slot_embed: if time_aware {
                Some(Embedding::new(
                    store,
                    &format!("{name}.slot"),
                    cfg.num_time_slots,
                    slot_dim,
                    rng,
                ))
            } else {
                None
            },
            hidden: dh,
            vocab,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    fn step_input(&self, tape: &mut Tape, store: &ParamStore, seg: u32, slot: u8) -> Var {
        let x = self.embed.lookup(tape, store, &[seg]);
        match &self.slot_embed {
            Some(se) => {
                let s = se.lookup(tape, store, &[slot as u32]);
                tape.concat_cols(x, s)
            }
            None => x,
        }
    }

    /// Runs the encoder GRU over `segments`, returning the final hidden
    /// state (`1 x hidden`).
    pub fn encode(&self, tape: &mut Tape, store: &ParamStore, segments: &[u32], slot: u8) -> Var {
        let bound = self.enc_gru.bind(tape, store);
        let mut h = tape.input(Tensor::zeros(1, self.hidden));
        for &seg in segments {
            let x = self.step_input(tape, store, seg, slot);
            h = bound.step(tape, x, h);
        }
        h
    }

    /// Teacher-forced reconstruction loss of `segments` from initial decoder
    /// state `h0`: `Σ_j CE(g(h_j), t_{j+1})` over the full vocabulary.
    pub fn decode_nll(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        h0: Var,
        segments: &[u32],
        slot: u8,
    ) -> Var {
        let bound = self.dec_gru.bind(tape, store);
        let mut h = h0;
        let mut total: Option<Var> = None;
        for w in segments.windows(2) {
            let x = self.step_input(tape, store, w[0], slot);
            h = bound.step(tape, x, h);
            let logits = self.out.forward_rowmajor(tape, store, h);
            let ce = tape.softmax_cross_entropy(logits, &[w[1]]);
            total = Some(match total {
                Some(t) => tape.add(t, ce),
                None => ce,
            });
        }
        total.unwrap_or_else(|| tape.scalar(0.0))
    }

    // ----- tape-free inference -------------------------------------------

    fn infer_step_input(&self, store: &ParamStore, seg: u32, slot: u8) -> Tensor {
        let x = self.embed.embed(store, &[seg]);
        match &self.slot_embed {
            Some(se) => {
                let s = se.embed(store, &[slot as u32]);
                let mut out = Tensor::zeros(1, x.cols() + s.cols());
                out.row_mut(0)[..x.cols()].copy_from_slice(x.row(0));
                out.row_mut(0)[x.cols()..].copy_from_slice(s.row(0));
                out
            }
            None => x,
        }
    }

    /// Tape-free encoder pass.
    pub fn infer_encode(&self, store: &ParamStore, segments: &[u32], slot: u8) -> Tensor {
        let mut h = Tensor::zeros(1, self.hidden);
        for &seg in segments {
            let x = self.infer_step_input(store, seg, slot);
            h = self.enc_gru.infer_step(store, &x, &h);
        }
        h
    }

    /// Tape-free reconstruction NLL from initial decoder state `h0`.
    pub fn infer_decode_nll(
        &self,
        store: &ParamStore,
        h0: &Tensor,
        segments: &[u32],
        slot: u8,
    ) -> f64 {
        let mut h = h0.clone();
        let mut total = 0.0f64;
        for w in segments.windows(2) {
            let x = self.infer_step_input(store, w[0], slot);
            h = self.dec_gru.infer_step(store, &x, &h);
            let logits = self.out.infer_rowmajor(store, &h);
            let row = logits.row(0);
            total += (logsumexp(row) - row[w[1] as usize]) as f64;
        }
        total
    }
}

/// Raw token view of a trajectory.
pub fn tokens(traj: &Trajectory) -> Vec<u32> {
    traj.segments.iter().map(|s| s.0).collect()
}

/// Generic training loop: shuffled mini-batches, per-example loss closure,
/// gradient clipping, NaN guard, best-epoch checkpoint restore. Returns the
/// mean per-trajectory loss per epoch.
pub fn train_loop<F>(
    store: &mut ParamStore,
    cfg: &BaselineConfig,
    data: &[Trajectory],
    mut per_example_loss: F,
) -> Vec<f64>
where
    F: FnMut(&mut Tape, &ParamStore, &Trajectory, &mut StdRng) -> Var,
{
    let mut losses = Vec::with_capacity(cfg.epochs);
    if data.is_empty() {
        return losses;
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xba5e);
    let mut adam = Adam::new(store, cfg.lr);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut best: Option<(f64, ParamStore)> = None;
    let mut tape = Tape::new();

    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut counted = 0usize;
        for batch in order.chunks(cfg.batch_size) {
            let scale = 1.0 / batch.len() as f32;
            let mut ok = true;
            for &idx in batch {
                let t = &data[idx];
                if t.len() < 2 {
                    continue;
                }
                tape.reset();
                let loss = per_example_loss(&mut tape, store, t, &mut rng);
                let v = tape.value(loss).get(0, 0) as f64;
                if !v.is_finite() {
                    ok = false;
                    break;
                }
                let scaled = tape.scale(loss, scale);
                tape.backward(scaled, store);
                epoch_loss += v;
                counted += 1;
            }
            if !ok {
                store.zero_grads();
                continue;
            }
            if cfg.grad_clip > 0.0 {
                store.clip_grad_norm(cfg.grad_clip);
            }
            adam.step(store);
        }
        let mean = if counted > 0 { epoch_loss / counted as f64 } else { f64::NAN };
        losses.push(mean);
        if mean.is_finite() && best.as_ref().is_none_or(|(b, _)| mean < *b) {
            best = Some((mean, store.clone()));
        }
    }
    if let Some((_, best_store)) = best {
        store.copy_values_from(&best_store);
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_trajs() -> Vec<Trajectory> {
        use tad_roadnet::SegmentId;
        (0..6)
            .map(|i| {
                Trajectory::normal(
                    vec![
                        SegmentId(i % 4),
                        SegmentId((i + 1) % 4),
                        SegmentId((i + 2) % 4),
                        SegmentId((i + 3) % 4),
                    ],
                    (i % 4) as u8,
                )
            })
            .collect()
    }

    #[test]
    fn core_encode_decode_shapes() {
        let cfg = BaselineConfig::test_scale();
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let core = SeqCore::new(&mut store, "t", 4, &cfg, false, &mut rng);
        let mut tape = Tape::new();
        let h = core.encode(&mut tape, &store, &[0, 1, 2], 0);
        assert_eq!(tape.value(h).shape(), (1, cfg.hidden_dim));
        let nll = core.decode_nll(&mut tape, &store, h, &[0, 1, 2], 0);
        assert!(tape.value(nll).get(0, 0) > 0.0);
    }

    #[test]
    fn time_aware_core_uses_slot() {
        let cfg = BaselineConfig::test_scale();
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let core = SeqCore::new(&mut store, "t", 4, &cfg, true, &mut rng);
        // Different slots must produce different encodings.
        let h0 = core.infer_encode(&store, &[0, 1, 2], 0);
        let h1 = core.infer_encode(&store, &[0, 1, 2], 3);
        assert_ne!(h0.data(), h1.data());
    }

    #[test]
    fn infer_decode_matches_taped_decode() {
        let cfg = BaselineConfig::test_scale();
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let core = SeqCore::new(&mut store, "t", 4, &cfg, false, &mut rng);
        let segs = [0u32, 1, 2, 3];
        let mut tape = Tape::new();
        let h = core.encode(&mut tape, &store, &segs, 0);
        let nll = core.decode_nll(&mut tape, &store, h, &segs, 0);
        let taped = tape.value(nll).get(0, 0) as f64;
        let h_inf = core.infer_encode(&store, &segs, 0);
        let inferred = core.infer_decode_nll(&store, &h_inf, &segs, 0);
        assert!((taped - inferred).abs() < 1e-4, "{taped} vs {inferred}");
    }

    #[test]
    fn train_loop_reduces_loss() {
        let cfg = BaselineConfig { epochs: 6, ..BaselineConfig::test_scale() };
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let core = SeqCore::new(&mut store, "t", 4, &cfg, false, &mut rng);
        let data = toy_trajs();
        let losses = train_loop(&mut store, &cfg, &data, |tape, store, t, _| {
            let toks = tokens(t);
            let h = core.encode(tape, store, &toks, t.time_slot);
            core.decode_nll(tape, store, h, &toks, t.time_slot)
        });
        assert_eq!(losses.len(), 6);
        assert!(losses.last().unwrap() < &losses[0], "{losses:?}");
    }

    #[test]
    fn train_loop_empty_data_noop() {
        let cfg = BaselineConfig::test_scale();
        let mut store = ParamStore::new();
        let losses = train_loop(&mut store, &cfg, &[], |tape, _, _, _| tape.scalar(0.0));
        assert!(losses.is_empty());
    }
}
