//! The common interface all detectors (baselines and CausalTAD wrappers)
//! implement, so the evaluation harness can treat them uniformly.

use tad_roadnet::RoadNetwork;
use tad_trajsim::Trajectory;

/// A trajectory anomaly detector. Scores are *higher for more anomalous*
/// trajectories; only the ranking matters for ROC/PR-AUC.
///
/// `Send` is required so experiment harnesses can train several detectors
/// on worker threads.
pub trait Detector: Send {
    /// Display name used in result tables.
    fn name(&self) -> &'static str;

    /// Fits the detector on normal training trajectories.
    fn fit(&mut self, net: &RoadNetwork, train: &[Trajectory]);

    /// Anomaly score after observing only the first `prefix_len` segments
    /// (the SD pair is always known — it is the ride-hailing order).
    fn score_prefix(&self, traj: &Trajectory, prefix_len: usize) -> f64;

    /// Anomaly score of the complete trajectory.
    fn score(&self, traj: &Trajectory) -> f64 {
        self.score_prefix(traj, traj.len())
    }
}

/// Shared hyper-parameters for the learning-based baselines, kept aligned
/// with CausalTAD's configuration so comparisons are fair.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Token embedding width.
    pub embed_dim: usize,
    /// GRU hidden width.
    pub hidden_dim: usize,
    /// Latent width for variational models.
    pub latent_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Trajectories per optimiser step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f64,
    /// Number of departure-time slots (used by DeepTEA).
    pub num_time_slots: usize,
    /// Init/shuffle seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            embed_dim: 24,
            hidden_dim: 48,
            latent_dim: 24,
            epochs: 12,
            batch_size: 8,
            lr: 1e-3,
            grad_clip: 5.0,
            num_time_slots: 4,
            seed: 0,
        }
    }
}

impl BaselineConfig {
    /// Tiny configuration for unit tests.
    pub fn test_scale() -> Self {
        BaselineConfig {
            embed_dim: 12,
            hidden_dim: 20,
            latent_dim: 12,
            epochs: 3,
            ..Default::default()
        }
    }
}
