//! iBOAT baseline (Chen et al., IEEE T-ITS 2013): isolation-based online
//! anomalous trajectory detection.
//!
//! A metric-based method: the test trajectory is compared against the
//! *reference set* — historical trajectories with the same SD pair. An
//! adaptive working window slides over the incoming segments; the
//! *support* of the window is the fraction of reference trajectories that
//! contain all of its segments in order. When support drops below a
//! threshold the window is reset (isolating the anomalous part) and those
//! segments accumulate anomaly mass `1 − support`.
//!
//! For unseen SD pairs (the OOD setting) the paper's protocol is followed:
//! "we take the trajectories whose SD pair is closest to c as reference
//! trajectories" — closeness is the planar distance between the segment
//! midpoints of the sources plus that of the destinations.

use std::collections::HashMap;

use tad_roadnet::geometry::Point;
use tad_roadnet::RoadNetwork;
use tad_trajsim::{SdPair, Trajectory};

use crate::detector::Detector;

/// Configuration of iBOAT.
#[derive(Clone, Debug)]
pub struct IboatConfig {
    /// Support threshold θ below which the window is isolated.
    pub support_threshold: f64,
}

impl Default for IboatConfig {
    fn default() -> Self {
        IboatConfig { support_threshold: 0.05 }
    }
}

/// The iBOAT detector.
pub struct Iboat {
    cfg: IboatConfig,
    /// Reference trajectories grouped by SD pair.
    refs: HashMap<SdPair, Vec<Vec<u32>>>,
    /// Midpoints of all segments (for nearest-SD fallback).
    midpoints: Vec<Point>,
}

impl Iboat {
    /// Creates an unfitted iBOAT.
    pub fn new(cfg: IboatConfig) -> Self {
        Iboat { cfg, refs: HashMap::new(), midpoints: Vec::new() }
    }

    /// References for an SD pair: exact match, else nearest recorded pair.
    fn references(&self, sd: SdPair) -> Option<&Vec<Vec<u32>>> {
        if let Some(r) = self.refs.get(&sd) {
            return Some(r);
        }
        // Nearest SD pair by endpoint-midpoint distance.
        let target_s = self.midpoints.get(sd.source.index())?;
        let target_d = self.midpoints.get(sd.dest.index())?;
        self.refs
            .iter()
            .min_by(|(a, _), (b, _)| {
                let da = self.midpoints[a.source.index()].dist(target_s)
                    + self.midpoints[a.dest.index()].dist(target_d);
                let db = self.midpoints[b.source.index()].dist(target_s)
                    + self.midpoints[b.dest.index()].dist(target_d);
                da.total_cmp(&db)
            })
            .map(|(_, v)| v)
    }

    /// Support of a window: fraction of references containing all window
    /// segments in order.
    fn support(window: &[u32], refs: &[Vec<u32>]) -> f64 {
        if refs.is_empty() {
            return 0.0;
        }
        let hits = refs.iter().filter(|r| contains_in_order(r, window)).count();
        hits as f64 / refs.len() as f64
    }
}

/// True when `hay` contains all items of `needle` in order (not necessarily
/// contiguous — iBOAT's "ordered containment").
fn contains_in_order(hay: &[u32], needle: &[u32]) -> bool {
    let mut it = hay.iter();
    needle.iter().all(|n| it.any(|h| h == n))
}

impl Detector for Iboat {
    fn name(&self) -> &'static str {
        "iBOAT"
    }

    fn fit(&mut self, net: &RoadNetwork, train: &[Trajectory]) {
        self.refs.clear();
        for t in train {
            if t.is_empty() {
                continue;
            }
            self.refs
                .entry(t.sd_pair())
                .or_default()
                .push(t.segments.iter().map(|s| s.0).collect());
        }
        self.midpoints = net.segment_ids().map(|s| net.segment_midpoint(s)).collect();
    }

    fn score_prefix(&self, traj: &Trajectory, prefix_len: usize) -> f64 {
        let n = prefix_len.clamp(1, traj.len());
        let segs: Vec<u32> = traj.segments[..n].iter().map(|s| s.0).collect();
        let Some(refs) = self.references(traj.sd_pair()) else {
            // No references at all: maximally suspicious.
            return n as f64;
        };
        let mut window: Vec<u32> = Vec::new();
        let mut score = 0.0f64;
        for &seg in &segs {
            window.push(seg);
            let sup = Self::support(&window, refs);
            score += 1.0 - sup;
            if sup < self.cfg.support_threshold {
                // Isolate: restart the window at the suspicious point.
                window.clear();
                window.push(seg);
            }
        }
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tad_roadnet::SegmentId;
    use tad_trajsim::{generate_city, CityConfig};

    #[test]
    fn contains_in_order_works() {
        assert!(contains_in_order(&[1, 2, 3, 4], &[2, 4]));
        assert!(contains_in_order(&[1, 2, 3], &[]));
        assert!(!contains_in_order(&[1, 2, 3], &[3, 2]));
        assert!(!contains_in_order(&[1, 2], &[5]));
    }

    #[test]
    fn known_route_scores_low_unknown_high() {
        let city = generate_city(&CityConfig::test_scale(440));
        let mut m = Iboat::new(IboatConfig::default());
        m.fit(&city.net, &city.data.train);
        // A training trajectory replayed must have low anomaly mass.
        let train_t = &city.data.train[0];
        let replay = m.score(train_t);
        // A detour anomaly on the same distribution should be higher.
        let mean_detour: f64 = city.data.detour.iter().map(|t| m.score(t)).sum::<f64>()
            / city.data.detour.len() as f64;
        let mean_id: f64 = city.data.test_id.iter().map(|t| m.score(t)).sum::<f64>()
            / city.data.test_id.len() as f64;
        assert!(replay.is_finite());
        assert!(mean_detour > mean_id, "detour mean {mean_detour} vs id mean {mean_id}");
    }

    #[test]
    fn ood_pairs_fall_back_to_nearest_references() {
        let city = generate_city(&CityConfig::test_scale(441));
        let mut m = Iboat::new(IboatConfig::default());
        m.fit(&city.net, &city.data.train);
        // OOD trajectories have unseen SD pairs but must still score.
        for t in city.data.test_ood.iter().take(5) {
            assert!(m.score(t).is_finite());
        }
    }

    #[test]
    fn unfitted_detector_is_maximally_suspicious() {
        let m = Iboat::new(IboatConfig::default());
        let t = Trajectory::normal(vec![SegmentId(0), SegmentId(1)], 0);
        assert_eq!(m.score(&t), 2.0);
    }
}
