//! The variational sequence-autoencoder family: VSAE, β-VAE, DeepTEA.
//!
//! * **VSAE** — the basic VAE of Kingma & Welling with RNN encoder/decoder,
//!   the strongest simple baseline in the paper's OOD tables.
//! * **β-VAE** (Higgins et al., 2017) — the same model with the KL term
//!   weighted by β > 1 to encourage disentanglement.
//! * **DeepTEA** (Han et al., 2022) — time-aware: departure-slot embeddings
//!   are appended to every encoder/decoder input, letting the model capture
//!   time-dependent traffic conditions.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tad_autodiff::nn::{GaussianHead, Linear};
use tad_autodiff::{ParamStore, Tensor};
use tad_roadnet::RoadNetwork;
use tad_trajsim::Trajectory;

use crate::detector::{BaselineConfig, Detector};
use crate::seq::{tokens, train_loop, SeqCore};

/// A variational sequence autoencoder (VSAE / β-VAE / DeepTEA).
pub struct Vsae {
    cfg: BaselineConfig,
    name: &'static str,
    /// KL weight (1 = VSAE, >1 = β-VAE).
    beta: f32,
    /// Appends time-slot embeddings to all inputs (DeepTEA).
    time_aware: bool,
    inner: Option<Inner>,
}

struct Inner {
    store: ParamStore,
    core: SeqCore,
    head: GaussianHead,
    dec_init: Linear,
}

impl Vsae {
    /// Basic VSAE.
    #[allow(clippy::self_named_constructors)]
    pub fn vsae(cfg: BaselineConfig) -> Self {
        Vsae { cfg, name: "VSAE", beta: 1.0, time_aware: false, inner: None }
    }

    /// β-VAE with the given KL weight (the paper's disentanglement probe).
    pub fn beta_vae(cfg: BaselineConfig, beta: f32) -> Self {
        assert!(beta > 0.0);
        Vsae { cfg, name: "BetaVAE", beta, time_aware: false, inner: None }
    }

    /// DeepTEA: time-conditioned VSAE.
    pub fn deeptea(cfg: BaselineConfig) -> Self {
        Vsae { cfg, name: "DeepTEA", beta: 1.0, time_aware: true, inner: None }
    }

    fn inner(&self) -> &Inner {
        self.inner.as_ref().expect("VSAE: call fit() before scoring")
    }

    /// Tape-free: encode a prefix to the posterior mean and the closed-form
    /// KL, then return `(h0, kl)`.
    fn infer_latent(&self, toks: &[u32], slot: u8) -> (Tensor, f64) {
        let inner = self.inner();
        let h = inner.core.infer_encode(&inner.store, toks, slot);
        let (mu, logvar) = inner.head.infer(&inner.store, &h);
        let kl: f64 = mu
            .data()
            .iter()
            .zip(logvar.data())
            .map(|(&m, &lv)| -0.5 * (1.0 + lv - m * m - lv.exp()) as f64)
            .sum();
        let h0 = inner.dec_init.infer(&inner.store, &mu).map(f32::tanh);
        (h0, kl)
    }
}

impl Detector for Vsae {
    fn name(&self) -> &'static str {
        self.name
    }

    fn fit(&mut self, net: &RoadNetwork, train: &[Trajectory]) {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut store = ParamStore::new();
        let core = SeqCore::new(
            &mut store,
            "vsae",
            net.num_segments(),
            &self.cfg,
            self.time_aware,
            &mut rng,
        );
        let head = GaussianHead::new(
            &mut store,
            "vsae.head",
            self.cfg.hidden_dim,
            self.cfg.latent_dim,
            &mut rng,
        );
        let dec_init = Linear::new(
            &mut store,
            "vsae.dec_init",
            self.cfg.latent_dim,
            self.cfg.hidden_dim,
            &mut rng,
        );
        let beta = self.beta;
        let latent = self.cfg.latent_dim;
        train_loop(&mut store, &self.cfg, train, |tape, store, t, rng| {
            let toks = tokens(t);
            let h = core.encode(tape, store, &toks, t.time_slot);
            let (mu, logvar) = head.forward(tape, store, h);
            let kl = tape.kl_std_normal(mu, logvar);
            let kl_w = tape.scale(kl, beta);
            let eps = Tensor::randn(1, latent, 0.0, 1.0, rng);
            let z = tape.gaussian_sample(mu, logvar, eps);
            let h0_pre = dec_init.forward(tape, store, z);
            let h0 = tape.tanh(h0_pre);
            let rec = core.decode_nll(tape, store, h0, &toks, t.time_slot);
            tape.add(rec, kl_w)
        });
        self.inner = Some(Inner { store, core, head, dec_init });
    }

    fn score_prefix(&self, traj: &Trajectory, prefix_len: usize) -> f64 {
        let inner = self.inner();
        let toks = tokens(traj);
        let n = prefix_len.clamp(2.min(toks.len()), toks.len());
        let prefix = &toks[..n];
        let (h0, kl) = self.infer_latent(prefix, traj.time_slot);
        let rec = inner.core.infer_decode_nll(&inner.store, &h0, prefix, traj.time_slot);
        rec + self.beta as f64 * kl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tad_trajsim::{generate_city, CityConfig};

    #[test]
    fn vsae_separates_detours() {
        let city = generate_city(&CityConfig::test_scale(410));
        let mut m = Vsae::vsae(BaselineConfig::test_scale());
        m.fit(&city.net, &city.data.train);
        let mean = |ts: &[Trajectory]| -> f64 {
            ts.iter().map(|t| m.score(t)).sum::<f64>() / ts.len() as f64
        };
        assert!(mean(&city.data.detour) > mean(&city.data.test_id));
    }

    #[test]
    fn beta_vae_weights_kl_harder() {
        let city = generate_city(&CityConfig::test_scale(411));
        let cfg = BaselineConfig::test_scale();
        let mut plain = Vsae::vsae(cfg.clone());
        let mut beta = Vsae::beta_vae(cfg, 4.0);
        plain.fit(&city.net, &city.data.train);
        beta.fit(&city.net, &city.data.train);
        assert_eq!(plain.name(), "VSAE");
        assert_eq!(beta.name(), "BetaVAE");
        let t = &city.data.test_id[0];
        assert!(plain.score(t).is_finite() && beta.score(t).is_finite());
    }

    #[test]
    fn deeptea_is_time_sensitive() {
        let city = generate_city(&CityConfig::test_scale(412));
        let mut m = Vsae::deeptea(BaselineConfig::test_scale());
        m.fit(&city.net, &city.data.train);
        let mut t = city.data.test_id[0].clone();
        let s0 = m.score(&t);
        t.time_slot = (t.time_slot + 2) % 4;
        let s1 = m.score(&t);
        assert_ne!(s0, s1, "DeepTEA must react to the departure slot");
    }

    #[test]
    #[should_panic(expected = "call fit()")]
    fn scoring_before_fit_panics() {
        let city = generate_city(&CityConfig::test_scale(413));
        let m = Vsae::vsae(BaselineConfig::test_scale());
        let _ = m.score(&city.data.test_id[0]);
    }
}
