//! GM-VSAE baseline (Liu et al., ICDE 2020).
//!
//! A sequential VAE whose latent prior is a Gaussian *mixture* with `K`
//! learnable component means (unit covariance, uniform weights), so
//! different mixture components can capture different types of normal
//! routes. The KL term of the plain VAE is replaced by the single-sample
//! estimate `log q(z|x) − log p_mix(z)`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tad_autodiff::nn::{GaussianHead, Linear};
use tad_autodiff::{logsumexp, ParamStore, Tape, Tensor, Var};
use tad_roadnet::RoadNetwork;
use tad_trajsim::Trajectory;

use crate::detector::{BaselineConfig, Detector};
use crate::seq::{tokens, train_loop, SeqCore};

const LN_2PI: f32 = 1.837_877_1;

/// The GM-VSAE detector.
pub struct GmVsae {
    cfg: BaselineConfig,
    /// Number of mixture components ("route types").
    k: usize,
    inner: Option<Inner>,
}

struct Inner {
    store: ParamStore,
    core: SeqCore,
    head: GaussianHead,
    dec_init: Linear,
    /// `K x latent` mixture component means.
    mix_means: tad_autodiff::ParamId,
}

impl GmVsae {
    /// Creates an unfitted GM-VSAE with `k` mixture components.
    pub fn new(cfg: BaselineConfig, k: usize) -> Self {
        assert!(k >= 1);
        GmVsae { cfg, k, inner: None }
    }

    fn inner(&self) -> &Inner {
        self.inner.as_ref().expect("GM-VSAE: call fit() before scoring")
    }

    /// `log q(z|x) − log p_mix(z)` on the tape (single-sample KL estimate).
    #[allow(clippy::too_many_arguments)]
    fn kl_mixture(
        tape: &mut Tape,
        store: &ParamStore,
        mix_means: tad_autodiff::ParamId,
        z: Var,
        mu: Var,
        logvar: Var,
        k: usize,
        latent: usize,
    ) -> Var {
        // log q(z|x) = -0.5 * sum(ln 2π + logvar + (z-mu)^2 / var)
        let diff = tape.sub(z, mu);
        let sq = tape.mul(diff, diff);
        let neg_logvar = tape.scale(logvar, -1.0);
        let inv_var = tape.exp(neg_logvar);
        let ratio = tape.mul(sq, inv_var);
        let inner_sum0 = tape.add(logvar, ratio);
        let inner_sum = tape.add_scalar(inner_sum0, LN_2PI);
        let sum_q = tape.sum_all(inner_sum);
        let log_q = tape.scale(sum_q, -0.5);

        // log p_mix(z) = logsumexp_k(-0.5 ||z - mu_k||^2) - D/2 ln 2π - ln K
        let ones = tape.input(Tensor::full(k, 1, 1.0));
        let z_rep = tape.matmul(ones, z); // K x latent
        let means = tape.param(store, mix_means);
        let dk = tape.sub(z_rep, means);
        let dk_sq = tape.mul(dk, dk);
        let col = tape.input(Tensor::full(latent, 1, 1.0));
        let row_sums = tape.matmul(dk_sq, col); // K x 1
        let neg_half = tape.scale(row_sums, -0.5);
        let as_row = tape.reshape(neg_half, 1, k);
        let lse = tape.logsumexp_rows(as_row); // 1 x 1
        let log_p = tape.add_scalar(lse, -0.5 * latent as f32 * LN_2PI - (k as f32).ln());

        tape.sub(log_q, log_p)
    }

    /// Tape-free `log q − log p_mix` at `z = mu`.
    fn infer_kl_mixture(&self, mu: &Tensor, logvar: &Tensor) -> f64 {
        let inner = self.inner();
        let latent = mu.cols();
        // log q(mu|x): the quadratic term vanishes at z = mu.
        let log_q: f64 = logvar.data().iter().map(|&lv| -0.5 * (LN_2PI + lv) as f64).sum();
        let means = inner.store.value(inner.mix_means);
        let mut comp = Vec::with_capacity(self.k);
        for kk in 0..self.k {
            let mut d2 = 0.0f32;
            for c in 0..latent {
                let d = mu.get(0, c) - means.get(kk, c);
                d2 += d * d;
            }
            comp.push(-0.5 * d2);
        }
        let log_p =
            logsumexp(&comp) as f64 - 0.5 * latent as f64 * LN_2PI as f64 - (self.k as f64).ln();
        log_q - log_p
    }
}

impl Detector for GmVsae {
    fn name(&self) -> &'static str {
        "GM-VSAE"
    }

    fn fit(&mut self, net: &RoadNetwork, train: &[Trajectory]) {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut store = ParamStore::new();
        let core = SeqCore::new(&mut store, "gmv", net.num_segments(), &self.cfg, false, &mut rng);
        let head = GaussianHead::new(
            &mut store,
            "gmv.head",
            self.cfg.hidden_dim,
            self.cfg.latent_dim,
            &mut rng,
        );
        let dec_init = Linear::new(
            &mut store,
            "gmv.dec_init",
            self.cfg.latent_dim,
            self.cfg.hidden_dim,
            &mut rng,
        );
        // Spread the initial component means so they can specialise.
        let mix_means = store
            .add("gmv.mix_means", Tensor::randn(self.k, self.cfg.latent_dim, 0.0, 1.0, &mut rng));
        let (k, latent) = (self.k, self.cfg.latent_dim);
        train_loop(&mut store, &self.cfg, train, |tape, store, t, rng| {
            let toks = tokens(t);
            let h = core.encode(tape, store, &toks, t.time_slot);
            let (mu, logvar) = head.forward(tape, store, h);
            let eps = Tensor::randn(1, latent, 0.0, 1.0, rng);
            let z = tape.gaussian_sample(mu, logvar, eps);
            let kl = Self::kl_mixture(tape, store, mix_means, z, mu, logvar, k, latent);
            let h0_pre = dec_init.forward(tape, store, z);
            let h0 = tape.tanh(h0_pre);
            let rec = core.decode_nll(tape, store, h0, &toks, t.time_slot);
            tape.add(rec, kl)
        });
        self.inner = Some(Inner { store, core, head, dec_init, mix_means });
    }

    fn score_prefix(&self, traj: &Trajectory, prefix_len: usize) -> f64 {
        let inner = self.inner();
        let toks = tokens(traj);
        let n = prefix_len.clamp(2.min(toks.len()), toks.len());
        let prefix = &toks[..n];
        let h = inner.core.infer_encode(&inner.store, prefix, traj.time_slot);
        let (mu, logvar) = inner.head.infer(&inner.store, &h);
        let kl = self.infer_kl_mixture(&mu, &logvar);
        let h0 = inner.dec_init.infer(&inner.store, &mu).map(f32::tanh);
        inner.core.infer_decode_nll(&inner.store, &h0, prefix, traj.time_slot) + kl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tad_trajsim::{generate_city, CityConfig};

    #[test]
    fn gmvsae_fits_and_separates() {
        let city = generate_city(&CityConfig::test_scale(430));
        let mut m = GmVsae::new(BaselineConfig::test_scale(), 3);
        m.fit(&city.net, &city.data.train);
        let mean = |ts: &[Trajectory]| -> f64 {
            ts.iter().map(|t| m.score(t)).sum::<f64>() / ts.len() as f64
        };
        assert!(mean(&city.data.detour) > mean(&city.data.test_id));
    }

    #[test]
    fn single_component_behaves_like_gaussian_prior() {
        let city = generate_city(&CityConfig::test_scale(431));
        let mut m = GmVsae::new(BaselineConfig::test_scale(), 1);
        m.fit(&city.net, &city.data.train);
        assert!(m.score(&city.data.test_id[0]).is_finite());
    }

    #[test]
    fn mixture_means_receive_gradient() {
        let city = generate_city(&CityConfig::test_scale(432));
        let cfg = BaselineConfig { epochs: 1, ..BaselineConfig::test_scale() };
        let mut m = GmVsae::new(cfg, 2);
        // Snapshot initial means by re-deriving them with the same seed.
        m.fit(&city.net, &city.data.train);
        let inner = m.inner.as_ref().unwrap();
        let means = inner.store.value(inner.mix_means);
        // After one epoch the means must be finite and non-degenerate.
        assert!(means.all_finite());
        assert!(means.data().iter().any(|&x| x != 0.0));
    }
}
