//! Planar geometry primitives used by the road network and map matcher.
//!
//! Coordinates are metres in a local planar frame; real-world datasets are
//! assumed to be projected before entering the library (the paper's
//! trajectories are map-matched city-scale data, where a planar
//! approximation is standard).

/// A point in the local planar frame (metres).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn dist(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Linear interpolation: `self + t * (other - self)`.
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point { x: self.x + t * (other.x - self.x), y: self.y + t * (other.y - self.y) }
    }
}

/// Distance from `p` to the line segment `a`-`b`, together with the
/// projection parameter `t` in `[0, 1]` of the closest point.
pub fn point_segment_distance(p: &Point, a: &Point, b: &Point) -> (f64, f64) {
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let len_sq = dx * dx + dy * dy;
    if len_sq == 0.0 {
        return (p.dist(a), 0.0);
    }
    let t = (((p.x - a.x) * dx + (p.y - a.y) * dy) / len_sq).clamp(0.0, 1.0);
    let proj = a.lerp(b, t);
    (p.dist(&proj), t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.dist(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(3.0, 5.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.x - 2.0).abs() < 1e-12 && (mid.y - 3.0).abs() < 1e-12);
    }

    #[test]
    fn point_segment_distance_interior_projection() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let p = Point::new(5.0, 3.0);
        let (d, t) = point_segment_distance(&p, &a, &b);
        assert!((d - 3.0).abs() < 1e-12);
        assert!((t - 0.5).abs() < 1e-12);
    }

    #[test]
    fn point_segment_distance_clamps_to_endpoints() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let p = Point::new(-4.0, 3.0);
        let (d, t) = point_segment_distance(&p, &a, &b);
        assert!((d - 5.0).abs() < 1e-12);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn degenerate_segment_distance() {
        let a = Point::new(2.0, 2.0);
        let p = Point::new(2.0, 6.0);
        let (d, t) = point_segment_distance(&p, &a, &a);
        assert!((d - 4.0).abs() < 1e-12);
        assert_eq!(t, 0.0);
    }
}
