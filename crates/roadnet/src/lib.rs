//! # tad-roadnet
//!
//! Road-network substrate for the CausalTAD reproduction (ICDE 2024):
//!
//! * [`RoadNetwork`] — a directed graph of road [`Segment`]s over dense ids,
//!   with the segment-successor relation that road-constrained decoding and
//!   online detection are built on.
//! * [`grid`] — a synthetic city generator (road hierarchy, jitter, removed
//!   edges) standing in for the paper's Xi'an/Chengdu road networks.
//! * [`dijkstra`] — generalised-cost shortest paths in node and segment
//!   space, with per-segment bans (used by the Detour anomaly generator).
//! * [`kpaths`] — Yen's k-shortest loopless paths (route alternatives for
//!   the Switch anomaly generator).
//! * [`index`] / [`matching`] — a uniform-grid spatial index and an HMM
//!   (Viterbi) map matcher turning raw GPS points into segment walks
//!   (Definition 2 of the paper).
//! * [`codec`] — compact binary persistence.

pub mod codec;
pub mod dijkstra;
pub mod geometry;
mod graph;
pub mod grid;
pub mod index;
pub mod kpaths;
pub mod matching;
pub mod render;

pub use graph::{Node, NodeId, RoadClass, RoadNetwork, Segment, SegmentId};
