//! SVG rendering of road networks with per-segment colouring.
//!
//! The paper's Fig. 4 is a road map coloured by per-segment anomaly score;
//! this module produces that artefact (and general network visualisations)
//! with zero dependencies: plain SVG strings.

use crate::graph::{RoadClass, RoadNetwork, SegmentId};

/// Style options for [`render_svg`].
#[derive(Clone, Debug)]
pub struct RenderOptions {
    /// Output width in pixels (height follows the aspect ratio).
    pub width: f64,
    /// Margin around the drawing in pixels.
    pub margin: f64,
    /// Stroke width for base road segments.
    pub base_stroke: f64,
    /// Stroke width for highlighted segments.
    pub highlight_stroke: f64,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions { width: 800.0, margin: 20.0, base_stroke: 1.2, highlight_stroke: 4.0 }
    }
}

/// A segment highlighted with a value in `[0, 1]` (coloured on a
/// blue→red ramp) or with a fixed colour.
#[derive(Clone, Debug)]
pub struct Highlight {
    /// Which segment.
    pub segment: SegmentId,
    /// Colour ramp position `0.0 = cool` to `1.0 = hot`, used when
    /// `color` is `None`.
    pub value: f64,
    /// Explicit CSS colour overriding the ramp.
    pub color: Option<String>,
}

/// Renders the network as an SVG string. Base roads are grey (width by
/// class); `highlights` are drawn on top.
pub fn render_svg(net: &RoadNetwork, highlights: &[Highlight], opts: &RenderOptions) -> String {
    let (min_x, min_y, max_x, max_y) = bounds(net);
    let span_x = (max_x - min_x).max(1.0);
    let span_y = (max_y - min_y).max(1.0);
    let scale = (opts.width - 2.0 * opts.margin) / span_x;
    let height = span_y * scale + 2.0 * opts.margin;

    let project = |x: f64, y: f64| -> (f64, f64) {
        (
            (x - min_x) * scale + opts.margin,
            // Flip y: SVG's origin is top-left.
            height - ((y - min_y) * scale + opts.margin),
        )
    };

    let mut svg = String::with_capacity(64 * net.num_segments());
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
         viewBox=\"0 0 {:.0} {:.0}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n",
        opts.width, height, opts.width, height
    ));

    // Base layer: all segments, grey by class.
    for s in net.segment_ids() {
        let seg = net.segment(s);
        let a = net.node(seg.from).pos;
        let b = net.node(seg.to).pos;
        let (x1, y1) = project(a.x, a.y);
        let (x2, y2) = project(b.x, b.y);
        let (color, w) = match seg.class {
            RoadClass::Major => ("#888888", opts.base_stroke * 2.0),
            RoadClass::Arterial => ("#aaaaaa", opts.base_stroke * 1.4),
            RoadClass::Local => ("#cccccc", opts.base_stroke),
        };
        svg.push_str(&format!(
            "<line x1=\"{x1:.1}\" y1=\"{y1:.1}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\" \
             stroke=\"{color}\" stroke-width=\"{w:.1}\"/>\n"
        ));
    }

    // Highlight layer.
    for h in highlights {
        let seg = net.segment(h.segment);
        let a = net.node(seg.from).pos;
        let b = net.node(seg.to).pos;
        let (x1, y1) = project(a.x, a.y);
        let (x2, y2) = project(b.x, b.y);
        let color = h.color.clone().unwrap_or_else(|| ramp(h.value));
        svg.push_str(&format!(
            "<line x1=\"{x1:.1}\" y1=\"{y1:.1}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\" \
             stroke=\"{color}\" stroke-width=\"{:.1}\" stroke-linecap=\"round\"/>\n",
            opts.highlight_stroke
        ));
    }

    svg.push_str("</svg>\n");
    svg
}

/// Blue (0.0) → red (1.0) colour ramp via simple RGB interpolation.
pub fn ramp(value: f64) -> String {
    let v = value.clamp(0.0, 1.0);
    let r = (255.0 * v) as u8;
    let b = (255.0 * (1.0 - v)) as u8;
    let g = (96.0 * (1.0 - (2.0 * v - 1.0).abs())) as u8;
    format!("#{r:02x}{g:02x}{b:02x}")
}

fn bounds(net: &RoadNetwork) -> (f64, f64, f64, f64) {
    let mut min_x = f64::INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for n in net.node_ids() {
        let p = net.node(n).pos;
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    if !min_x.is_finite() {
        return (0.0, 0.0, 1.0, 1.0);
    }
    (min_x, min_y, max_x, max_y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{generate_grid_city, GridCityConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn svg_contains_all_segments() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = generate_grid_city(&GridCityConfig::tiny(), &mut rng);
        let svg = render_svg(&net, &[], &RenderOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        let lines = svg.matches("<line").count();
        assert_eq!(lines, net.num_segments());
    }

    #[test]
    fn highlights_are_drawn_on_top() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = generate_grid_city(&GridCityConfig::tiny(), &mut rng);
        let highlights = vec![
            Highlight { segment: SegmentId(0), value: 0.0, color: None },
            Highlight { segment: SegmentId(1), value: 1.0, color: Some("#00ff00".into()) },
        ];
        let svg = render_svg(&net, &highlights, &RenderOptions::default());
        assert_eq!(svg.matches("<line").count(), net.num_segments() + 2);
        assert!(svg.contains("#00ff00"));
        assert!(svg.contains(&ramp(0.0)));
    }

    #[test]
    fn ramp_endpoints() {
        assert_eq!(ramp(0.0), "#0000ff");
        assert_eq!(ramp(1.0), "#ff0000");
        assert_eq!(ramp(-3.0), ramp(0.0));
        assert_eq!(ramp(9.0), ramp(1.0));
    }

    #[test]
    fn empty_network_renders() {
        let net = RoadNetwork::new();
        let svg = render_svg(&net, &[], &RenderOptions::default());
        assert!(svg.contains("</svg>"));
    }
}
