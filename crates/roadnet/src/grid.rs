//! Synthetic city generator.
//!
//! Produces grid-shaped road networks with a functional road hierarchy
//! (major avenues every `major_every` lines, arterials in between, local
//! streets elsewhere), jittered intersection positions, and randomly removed
//! local edges to break the grid's symmetry. The result is guaranteed to be
//! strongly connected (removal is rolled back whenever it would cut the
//! city in two).
//!
//! This substitutes for the paper's Xi'an / Chengdu road networks: what the
//! models consume is a directed segment graph with a hierarchy of road
//! classes, which this generator provides at configurable scale.

use rand::Rng;

use crate::geometry::Point;
use crate::graph::{NodeId, RoadClass, RoadNetwork};

/// Configuration for [`generate_grid_city`].
#[derive(Clone, Debug)]
pub struct GridCityConfig {
    /// Number of intersection columns.
    pub width: usize,
    /// Number of intersection rows.
    pub height: usize,
    /// Nominal block edge length in metres.
    pub block_len: f64,
    /// Every `major_every`-th grid line is a major road (0 disables).
    pub major_every: usize,
    /// Every `arterial_every`-th grid line is an arterial (0 disables);
    /// major takes precedence.
    pub arterial_every: usize,
    /// Standard deviation of intersection position jitter, as a fraction of
    /// `block_len`.
    pub jitter: f64,
    /// Probability of removing each local street (both directions at once).
    pub missing_edge_prob: f64,
}

impl Default for GridCityConfig {
    fn default() -> Self {
        GridCityConfig {
            width: 12,
            height: 12,
            block_len: 200.0,
            major_every: 4,
            arterial_every: 2,
            jitter: 0.08,
            missing_edge_prob: 0.08,
        }
    }
}

impl GridCityConfig {
    /// A small city for unit tests (36 nodes).
    pub fn tiny() -> Self {
        GridCityConfig { width: 6, height: 6, missing_edge_prob: 0.05, ..Default::default() }
    }
}

/// Generates a strongly connected grid city.
///
/// # Panics
/// Panics if `width` or `height` is smaller than 2.
pub fn generate_grid_city<R: Rng + ?Sized>(cfg: &GridCityConfig, rng: &mut R) -> RoadNetwork {
    assert!(cfg.width >= 2 && cfg.height >= 2, "grid must be at least 2x2");
    let mut net = RoadNetwork::new();
    let mut nodes = Vec::with_capacity(cfg.width * cfg.height);
    for y in 0..cfg.height {
        for x in 0..cfg.width {
            let jx = rng.gen_range(-1.0..1.0) * cfg.jitter * cfg.block_len;
            let jy = rng.gen_range(-1.0..1.0) * cfg.jitter * cfg.block_len;
            nodes.push(net.add_node(Point::new(
                x as f64 * cfg.block_len + jx,
                y as f64 * cfg.block_len + jy,
            )));
        }
    }
    let idx = |x: usize, y: usize| nodes[y * cfg.width + x];

    let line_class = |line: usize| -> RoadClass {
        if cfg.major_every > 0 && line.is_multiple_of(cfg.major_every) {
            RoadClass::Major
        } else if cfg.arterial_every > 0 && line.is_multiple_of(cfg.arterial_every) {
            RoadClass::Arterial
        } else {
            RoadClass::Local
        }
    };

    let add_pair = |net: &mut RoadNetwork, a: NodeId, b: NodeId, class: RoadClass| {
        let length = net.node(a).pos.dist(&net.node(b).pos).max(1.0);
        net.add_segment(a, b, length, class);
        net.add_segment(b, a, length, class);
    };

    // Candidate local streets we may remove later: (from, to) node pairs.
    let mut local_pairs = Vec::new();
    for y in 0..cfg.height {
        for x in 0..cfg.width {
            if x + 1 < cfg.width {
                let class = line_class(y);
                add_pair(&mut net, idx(x, y), idx(x + 1, y), class);
                if class == RoadClass::Local {
                    local_pairs.push((idx(x, y), idx(x + 1, y)));
                }
            }
            if y + 1 < cfg.height {
                let class = line_class(x);
                add_pair(&mut net, idx(x, y), idx(x, y + 1), class);
                if class == RoadClass::Local {
                    local_pairs.push((idx(x, y), idx(x, y + 1)));
                }
            }
        }
    }

    // Removal is destructive and RoadNetwork is append-only, so decide which
    // local streets to drop first and then rebuild once, rolling back any
    // removal that disconnects the city.
    let mut removed: Vec<(NodeId, NodeId)> = Vec::new();
    for &(a, b) in &local_pairs {
        if rng.gen_bool(cfg.missing_edge_prob) {
            removed.push((a, b));
        }
    }
    loop {
        let candidate = rebuild_without(&net, &removed);
        if candidate.is_strongly_connected() || removed.is_empty() {
            return candidate;
        }
        // Roll back the last removal and retry; terminates because the full
        // grid is strongly connected.
        removed.pop();
    }
}

/// Rebuilds `net` with the given undirected node pairs removed.
fn rebuild_without(net: &RoadNetwork, removed: &[(NodeId, NodeId)]) -> RoadNetwork {
    let banned =
        |a: NodeId, b: NodeId| removed.iter().any(|&(x, y)| (x, y) == (a, b) || (y, x) == (a, b));
    let mut out = RoadNetwork::new();
    for n in net.node_ids() {
        out.add_node(net.node(n).pos);
    }
    for s in net.segment_ids() {
        let seg = net.segment(s);
        if !banned(seg.from, seg.to) {
            out.add_segment(seg.from, seg.to, seg.length, seg.class);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tiny_city_is_strongly_connected() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = generate_grid_city(&GridCityConfig::tiny(), &mut rng);
        assert_eq!(net.num_nodes(), 36);
        assert!(net.is_strongly_connected());
        assert!(net.num_segments() > 0);
    }

    #[test]
    fn default_city_has_all_road_classes() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = generate_grid_city(&GridCityConfig::default(), &mut rng);
        let mut has = [false; 3];
        for s in net.segment_ids() {
            has[net.segment(s).class.as_u8() as usize] = true;
        }
        assert!(has.iter().all(|&h| h), "classes present: {has:?}");
    }

    #[test]
    fn edge_removal_reduces_segment_count() {
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        let full = generate_grid_city(
            &GridCityConfig { missing_edge_prob: 0.0, ..GridCityConfig::tiny() },
            &mut rng_a,
        );
        let pruned = generate_grid_city(
            &GridCityConfig { missing_edge_prob: 0.4, ..GridCityConfig::tiny() },
            &mut rng_b,
        );
        assert!(pruned.num_segments() < full.num_segments());
        assert!(pruned.is_strongly_connected());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GridCityConfig::tiny();
        let a = generate_grid_city(&cfg, &mut StdRng::seed_from_u64(7));
        let b = generate_grid_city(&cfg, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.num_segments(), b.num_segments());
        for s in a.segment_ids() {
            assert_eq!(a.segment(s), b.segment(s));
        }
    }

    #[test]
    fn segment_lengths_positive_and_near_block_len() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = GridCityConfig::tiny();
        let net = generate_grid_city(&cfg, &mut rng);
        for s in net.segment_ids() {
            let len = net.segment(s).length;
            assert!(len > 0.0);
            assert!(len < 2.0 * cfg.block_len, "length {len}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn degenerate_grid_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        generate_grid_city(&GridCityConfig { width: 1, ..GridCityConfig::tiny() }, &mut rng);
    }
}
