//! HMM (Viterbi) map matching: raw GPS points → road-segment sequence.
//!
//! The paper assumes "all trajectories can be mapped into a completed road
//! sequence" (Definition 2) and uses pre-matched DiDi data. To reproduce the
//! full pipeline we implement the standard hidden-Markov map matcher
//! (Newson & Krumm style): candidate segments come from a spatial index,
//! emission likelihoods are Gaussian in the point-to-segment distance, and
//! transition likelihoods penalise the difference between great-circle and
//! network distance between consecutive candidates. Gaps between matched
//! segments are filled with shortest paths so the output is a connected walk.

use crate::dijkstra::{bounded_node_distance, segment_shortest_path};
use crate::geometry::Point;
use crate::graph::{RoadNetwork, SegmentId};
use crate::index::SegmentIndex;

/// Parameters of the HMM matcher.
#[derive(Clone, Debug)]
pub struct MatchConfig {
    /// GPS noise standard deviation in metres (emission model).
    pub gps_sigma: f64,
    /// Candidate search radius in metres.
    pub candidate_radius: f64,
    /// Maximum candidates kept per point.
    pub max_candidates: usize,
    /// Transition scale β in metres: larger tolerates bigger detours
    /// between consecutive points.
    pub beta: f64,
    /// Network-distance search bound as a multiple of the straight-line
    /// distance between consecutive points (plus one block).
    pub route_slack: f64,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            gps_sigma: 25.0,
            candidate_radius: 80.0,
            max_candidates: 6,
            beta: 60.0,
            route_slack: 3.0,
        }
    }
}

/// Error cases of [`match_trajectory`].
#[derive(Debug, PartialEq, Eq)]
pub enum MatchError {
    /// Fewer than two GPS points were supplied.
    TooFewPoints,
    /// Some GPS point had no candidate segment within the search radius.
    NoCandidates { point_index: usize },
    /// The Viterbi lattice broke (no transition with finite probability).
    BrokenLattice { point_index: usize },
}

impl std::fmt::Display for MatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatchError::TooFewPoints => write!(f, "need at least two GPS points"),
            MatchError::NoCandidates { point_index } => {
                write!(f, "no candidate segments near point {point_index}")
            }
            MatchError::BrokenLattice { point_index } => {
                write!(f, "no feasible transition into point {point_index}")
            }
        }
    }
}

impl std::error::Error for MatchError {}

/// Matches a GPS point sequence onto the road network, returning a connected
/// segment walk (consecutive duplicates collapsed, gaps filled by shortest
/// paths).
pub fn match_trajectory(
    net: &RoadNetwork,
    index: &SegmentIndex,
    points: &[Point],
    cfg: &MatchConfig,
) -> Result<Vec<SegmentId>, MatchError> {
    if points.len() < 2 {
        return Err(MatchError::TooFewPoints);
    }

    // Candidate sets with emission log-likelihoods.
    let mut candidates: Vec<Vec<(SegmentId, f64)>> = Vec::with_capacity(points.len());
    for (i, p) in points.iter().enumerate() {
        let mut cands = index.query(net, p, cfg.candidate_radius);
        cands.truncate(cfg.max_candidates);
        if cands.is_empty() {
            return Err(MatchError::NoCandidates { point_index: i });
        }
        let emis: Vec<(SegmentId, f64)> =
            cands.into_iter().map(|(s, d)| (s, -0.5 * (d / cfg.gps_sigma).powi(2))).collect();
        candidates.push(emis);
    }

    // Viterbi.
    let mut score: Vec<f64> = candidates[0].iter().map(|&(_, e)| e).collect();
    let mut back: Vec<Vec<usize>> = Vec::with_capacity(points.len());
    back.push(Vec::new());

    for t in 1..points.len() {
        let straight = points[t - 1].dist(&points[t]);
        let limit = cfg.route_slack * straight + 500.0;
        let mut next_score = vec![f64::NEG_INFINITY; candidates[t].len()];
        let mut next_back = vec![usize::MAX; candidates[t].len()];
        for (j, &(to_seg, emis)) in candidates[t].iter().enumerate() {
            for (i, &(from_seg, _)) in candidates[t - 1].iter().enumerate() {
                if score[i] == f64::NEG_INFINITY {
                    continue;
                }
                let trans = transition_logprob(net, from_seg, to_seg, straight, limit, cfg);
                let s = score[i] + trans + emis;
                if s > next_score[j] {
                    next_score[j] = s;
                    next_back[j] = i;
                }
            }
        }
        if next_score.iter().all(|&s| s == f64::NEG_INFINITY) {
            return Err(MatchError::BrokenLattice { point_index: t });
        }
        score = next_score;
        back.push(next_back);
    }

    // Backtrack the best state sequence.
    let mut best = score
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.total_cmp(b))
        .map(|(i, _)| i)
        .expect("non-empty candidates");
    let mut states = vec![best; points.len()];
    for t in (1..points.len()).rev() {
        best = back[t][best];
        states[t - 1] = best;
    }
    let matched: Vec<SegmentId> =
        states.iter().enumerate().map(|(t, &i)| candidates[t][i].0).collect();

    Ok(connect_walk(net, &matched))
}

/// Log transition probability between candidate segments of consecutive
/// points: exponential in |network distance − straight-line distance|.
fn transition_logprob(
    net: &RoadNetwork,
    from: SegmentId,
    to: SegmentId,
    straight: f64,
    limit: f64,
    cfg: &MatchConfig,
) -> f64 {
    let route = if from == to {
        Some(straight.min(net.segment(from).length))
    } else {
        // Distance from the end of `from` to the start of `to`, plus their
        // half-lengths as a smooth approximation of in-segment offsets.
        bounded_node_distance(net, net.segment(from).to, net.segment(to).from, limit)
            .map(|d| d + 0.5 * net.segment(from).length + 0.5 * net.segment(to).length)
    };
    match route {
        Some(r) => -((r - straight).abs() / cfg.beta),
        None => f64::NEG_INFINITY,
    }
}

/// Collapses consecutive duplicates and stitches non-adjacent consecutive
/// segments with shortest paths so the result is a connected walk.
fn connect_walk(net: &RoadNetwork, matched: &[SegmentId]) -> Vec<SegmentId> {
    let mut walk: Vec<SegmentId> = Vec::with_capacity(matched.len());
    for &s in matched {
        if walk.last() == Some(&s) {
            continue;
        }
        match walk.last() {
            None => walk.push(s),
            Some(&prev) => {
                if net.segment(prev).to == net.segment(s).from {
                    walk.push(s);
                } else if let Some(bridge) =
                    segment_shortest_path(net, prev, s, |seg| Some(net.segment(seg).length))
                {
                    // The bridge includes both endpoints; skip the repeated prev.
                    walk.extend(bridge.segments.into_iter().skip(1));
                } else {
                    // Unbridgeable (shouldn't happen on connected networks):
                    // restart the walk from here.
                    walk.push(s);
                }
            }
        }
    }
    walk
}

/// Synthesises noisy GPS observations along a segment path: one point every
/// `spacing` metres with isotropic Gaussian noise of std `noise`. The
/// inverse of map matching, used to test the matcher and to build the
/// GPS-input pipeline examples.
pub fn synthesize_gps<R: rand::Rng + ?Sized>(
    net: &RoadNetwork,
    path: &[SegmentId],
    spacing: f64,
    noise: f64,
    rng: &mut R,
) -> Vec<Point> {
    let mut points = Vec::new();
    let mut carry = 0.0;
    for &s in path {
        let seg = net.segment(s);
        let a = net.node(seg.from).pos;
        let b = net.node(seg.to).pos;
        let len = seg.length;
        let mut offset = carry;
        while offset < len {
            let t = offset / len;
            let p = a.lerp(&b, t);
            points.push(Point::new(p.x + gauss(rng) * noise, p.y + gauss(rng) * noise));
            offset += spacing;
        }
        carry = offset - len;
    }
    points
}

fn gauss<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::{length_cost, node_shortest_path};
    use crate::graph::NodeId;
    use crate::grid::{generate_grid_city, GridCityConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (RoadNetwork, SegmentIndex) {
        let mut rng = StdRng::seed_from_u64(99);
        let cfg = GridCityConfig { missing_edge_prob: 0.0, jitter: 0.0, ..GridCityConfig::tiny() };
        let net = generate_grid_city(&cfg, &mut rng);
        let index = SegmentIndex::build(&net, 200.0);
        (net, index)
    }

    fn some_route(net: &RoadNetwork) -> Vec<SegmentId> {
        node_shortest_path(net, NodeId(0), NodeId(35), length_cost(net)).unwrap().segments
    }

    #[test]
    fn recovers_route_from_clean_gps() {
        let (net, index) = setup();
        let route = some_route(&net);
        let mut rng = StdRng::seed_from_u64(1);
        let gps = synthesize_gps(&net, &route, 50.0, 0.0, &mut rng);
        let matched = match_trajectory(&net, &index, &gps, &MatchConfig::default()).unwrap();
        assert!(net.is_connected_path(&matched));
        assert_eq!(matched, route);
    }

    #[test]
    fn recovers_route_from_noisy_gps() {
        let (net, index) = setup();
        let route = some_route(&net);
        let mut rng = StdRng::seed_from_u64(2);
        let gps = synthesize_gps(&net, &route, 40.0, 10.0, &mut rng);
        let matched = match_trajectory(&net, &index, &gps, &MatchConfig::default()).unwrap();
        assert!(net.is_connected_path(&matched));
        // With 10 m noise on 200 m blocks the matched walk should mostly
        // overlap the true route.
        let route_set: std::collections::HashSet<_> = route.iter().collect();
        let overlap = matched.iter().filter(|s| route_set.contains(s)).count();
        assert!(
            overlap * 10 >= matched.len() * 8,
            "overlap {overlap}/{} with route of {}",
            matched.len(),
            route.len()
        );
    }

    #[test]
    fn too_few_points_is_an_error() {
        let (net, index) = setup();
        let err = match_trajectory(&net, &index, &[Point::new(0.0, 0.0)], &MatchConfig::default());
        assert_eq!(err.unwrap_err(), MatchError::TooFewPoints);
    }

    #[test]
    fn point_off_the_map_is_an_error() {
        let (net, index) = setup();
        let pts = [Point::new(0.0, 0.0), Point::new(1e7, 1e7)];
        match match_trajectory(&net, &index, &pts, &MatchConfig::default()) {
            Err(MatchError::NoCandidates { point_index }) => assert_eq!(point_index, 1),
            other => panic!("expected NoCandidates, got {other:?}"),
        }
    }

    #[test]
    fn synthesize_gps_spacing() {
        let (net, _) = setup();
        let route = some_route(&net);
        let total: f64 = net.path_length(&route);
        let mut rng = StdRng::seed_from_u64(3);
        let gps = synthesize_gps(&net, &route, 50.0, 0.0, &mut rng);
        let expected = (total / 50.0).floor() as usize;
        assert!(
            (gps.len() as isize - expected as isize).unsigned_abs() <= route.len(),
            "points {} vs expected ~{expected}",
            gps.len()
        );
    }
}
