//! Uniform-grid spatial index over road segments.
//!
//! The HMM map matcher needs "all segments within radius r of a GPS point"
//! for every observation; a linear scan over all segments per point would
//! make matching quadratic in city size. This index buckets segments by the
//! grid cells their bounding boxes touch and answers radius queries by
//! scanning only nearby cells.

use crate::geometry::{point_segment_distance, Point};
use crate::graph::{RoadNetwork, SegmentId};

/// A uniform-grid index over the segments of one road network.
#[derive(Clone, Debug)]
pub struct SegmentIndex {
    cell_size: f64,
    min_x: f64,
    min_y: f64,
    cols: usize,
    rows: usize,
    /// Per-cell list of segments whose bounding box intersects the cell.
    cells: Vec<Vec<SegmentId>>,
}

impl SegmentIndex {
    /// Builds an index with the given cell size (metres). A good default is
    /// the nominal block length of the network.
    pub fn build(net: &RoadNetwork, cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for n in net.node_ids() {
            let p = net.node(n).pos;
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        if !min_x.is_finite() {
            // Empty network: one empty cell.
            return SegmentIndex {
                cell_size,
                min_x: 0.0,
                min_y: 0.0,
                cols: 1,
                rows: 1,
                cells: vec![Vec::new()],
            };
        }
        let cols = (((max_x - min_x) / cell_size).floor() as usize) + 1;
        let rows = (((max_y - min_y) / cell_size).floor() as usize) + 1;
        let mut cells = vec![Vec::new(); cols * rows];
        for s in net.segment_ids() {
            let seg = net.segment(s);
            let a = net.node(seg.from).pos;
            let b = net.node(seg.to).pos;
            let (lo_x, hi_x) = (a.x.min(b.x), a.x.max(b.x));
            let (lo_y, hi_y) = (a.y.min(b.y), a.y.max(b.y));
            let c0 = (((lo_x - min_x) / cell_size).floor() as usize).min(cols - 1);
            let c1 = (((hi_x - min_x) / cell_size).floor() as usize).min(cols - 1);
            let r0 = (((lo_y - min_y) / cell_size).floor() as usize).min(rows - 1);
            let r1 = (((hi_y - min_y) / cell_size).floor() as usize).min(rows - 1);
            for r in r0..=r1 {
                for c in c0..=c1 {
                    cells[r * cols + c].push(s);
                }
            }
        }
        SegmentIndex { cell_size, min_x, min_y, cols, rows, cells }
    }

    /// Returns `(segment, distance)` for every segment within `radius` of
    /// `p`, sorted by ascending distance.
    pub fn query(&self, net: &RoadNetwork, p: &Point, radius: f64) -> Vec<(SegmentId, f64)> {
        let reach = (radius / self.cell_size).ceil() as isize + 1;
        let pc = ((p.x - self.min_x) / self.cell_size).floor() as isize;
        let pr = ((p.y - self.min_y) / self.cell_size).floor() as isize;
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for r in (pr - reach).max(0)..=(pr + reach).min(self.rows as isize - 1) {
            for c in (pc - reach).max(0)..=(pc + reach).min(self.cols as isize - 1) {
                for &s in &self.cells[r as usize * self.cols + c as usize] {
                    if !seen.insert(s) {
                        continue;
                    }
                    let seg = net.segment(s);
                    let a = net.node(seg.from).pos;
                    let b = net.node(seg.to).pos;
                    let (d, _) = point_segment_distance(p, &a, &b);
                    if d <= radius {
                        out.push((s, d));
                    }
                }
            }
        }
        out.sort_by(|x, y| x.1.total_cmp(&y.1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadClass;

    fn line_net() -> RoadNetwork {
        let mut net = RoadNetwork::new();
        let mut prev = net.add_node(Point::new(0.0, 0.0));
        for i in 1..=10 {
            let n = net.add_node(Point::new(i as f64 * 100.0, 0.0));
            net.add_segment(prev, n, 100.0, RoadClass::Local);
            net.add_segment(n, prev, 100.0, RoadClass::Local);
            prev = n;
        }
        net
    }

    #[test]
    fn query_matches_brute_force() {
        let net = line_net();
        let index = SegmentIndex::build(&net, 150.0);
        let p = Point::new(420.0, 30.0);
        let radius = 120.0;
        let fast: Vec<_> = index.query(&net, &p, radius).into_iter().map(|(s, _)| s).collect();
        let mut brute: Vec<_> = net
            .segment_ids()
            .filter(|&s| {
                let seg = net.segment(s);
                let (d, _) =
                    point_segment_distance(&p, &net.node(seg.from).pos, &net.node(seg.to).pos);
                d <= radius
            })
            .collect();
        let mut fast_sorted = fast.clone();
        fast_sorted.sort();
        brute.sort();
        assert_eq!(fast_sorted, brute);
        assert!(!fast.is_empty());
    }

    #[test]
    fn results_sorted_by_distance() {
        let net = line_net();
        let index = SegmentIndex::build(&net, 100.0);
        let hits = index.query(&net, &Point::new(250.0, 10.0), 500.0);
        for w in hits.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn far_point_returns_nothing() {
        let net = line_net();
        let index = SegmentIndex::build(&net, 100.0);
        assert!(index.query(&net, &Point::new(0.0, 10_000.0), 50.0).is_empty());
    }

    #[test]
    fn empty_network_is_fine() {
        let net = RoadNetwork::new();
        let index = SegmentIndex::build(&net, 100.0);
        assert!(index.query(&net, &Point::new(0.0, 0.0), 1000.0).is_empty());
    }
}
