//! Compact binary persistence for road networks.
//!
//! `serde_json` is not on the allowed dependency list, so networks are
//! stored in a little-endian binary layout built on `bytes`:
//!
//! ```text
//! magic "TADR", version u16
//! u32 node_count, node_count x (f64 x, f64 y)
//! u32 segment_count, segment_count x (u32 from, u32 to, f64 length, u8 class)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::geometry::Point;
use crate::graph::{NodeId, RoadClass, RoadNetwork};

const MAGIC: &[u8; 4] = b"TADR";
const VERSION: u16 = 1;

/// Errors produced when decoding a serialized network.
#[derive(Debug, PartialEq, Eq)]
pub enum NetCodecError {
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Input ended before the named field could be read.
    Truncated(&'static str),
    /// Unknown road class byte.
    BadClass(u8),
    /// A segment referenced a node index past the node table.
    DanglingNode(u32),
}

impl std::fmt::Display for NetCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetCodecError::BadMagic => write!(f, "bad magic bytes"),
            NetCodecError::BadVersion(v) => write!(f, "unsupported version {v}"),
            NetCodecError::Truncated(what) => write!(f, "truncated input at {what}"),
            NetCodecError::BadClass(c) => write!(f, "unknown road class {c}"),
            NetCodecError::DanglingNode(n) => write!(f, "segment references missing node {n}"),
        }
    }
}

impl std::error::Error for NetCodecError {}

/// Serialises a road network.
pub fn network_to_bytes(net: &RoadNetwork) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + net.num_nodes() * 16 + net.num_segments() * 17);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(net.num_nodes() as u32);
    for n in net.node_ids() {
        let p = net.node(n).pos;
        buf.put_f64_le(p.x);
        buf.put_f64_le(p.y);
    }
    buf.put_u32_le(net.num_segments() as u32);
    for s in net.segment_ids() {
        let seg = net.segment(s);
        buf.put_u32_le(seg.from.0);
        buf.put_u32_le(seg.to.0);
        buf.put_f64_le(seg.length);
        buf.put_u8(seg.class.as_u8());
    }
    buf.freeze()
}

/// Deserialises a road network written by [`network_to_bytes`].
pub fn network_from_bytes(mut bytes: Bytes) -> Result<RoadNetwork, NetCodecError> {
    if bytes.remaining() < 6 {
        return Err(NetCodecError::Truncated("header"));
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(NetCodecError::BadMagic);
    }
    let version = bytes.get_u16_le();
    if version != VERSION {
        return Err(NetCodecError::BadVersion(version));
    }
    if bytes.remaining() < 4 {
        return Err(NetCodecError::Truncated("node count"));
    }
    let node_count = bytes.get_u32_le() as usize;
    let mut net = RoadNetwork::new();
    for _ in 0..node_count {
        if bytes.remaining() < 16 {
            return Err(NetCodecError::Truncated("node"));
        }
        let x = bytes.get_f64_le();
        let y = bytes.get_f64_le();
        net.add_node(Point::new(x, y));
    }
    if bytes.remaining() < 4 {
        return Err(NetCodecError::Truncated("segment count"));
    }
    let seg_count = bytes.get_u32_le() as usize;
    for _ in 0..seg_count {
        // Segment record: u32 from + u32 to + f64 length + u8 class = 17 bytes.
        if bytes.remaining() < 17 {
            return Err(NetCodecError::Truncated("segment"));
        }
        let from = bytes.get_u32_le();
        let to = bytes.get_u32_le();
        let length = bytes.get_f64_le();
        let class = bytes.get_u8();
        if from as usize >= node_count {
            return Err(NetCodecError::DanglingNode(from));
        }
        if to as usize >= node_count {
            return Err(NetCodecError::DanglingNode(to));
        }
        let class = RoadClass::from_u8(class).ok_or(NetCodecError::BadClass(class))?;
        net.add_segment(NodeId(from), NodeId(to), length, class);
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{generate_grid_city, GridCityConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_preserves_everything() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = generate_grid_city(&GridCityConfig::tiny(), &mut rng);
        let restored = network_from_bytes(network_to_bytes(&net)).unwrap();
        assert_eq!(restored.num_nodes(), net.num_nodes());
        assert_eq!(restored.num_segments(), net.num_segments());
        for s in net.segment_ids() {
            assert_eq!(restored.segment(s), net.segment(s));
        }
        for n in net.node_ids() {
            assert_eq!(restored.node(n).pos, net.node(n).pos);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut data = network_to_bytes(&RoadNetwork::new()).to_vec();
        data[0] = b'X';
        assert!(matches!(network_from_bytes(Bytes::from(data)), Err(NetCodecError::BadMagic)));
    }

    #[test]
    fn truncation_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = generate_grid_city(&GridCityConfig::tiny(), &mut rng);
        let data = network_to_bytes(&net);
        let cut = data.slice(0..data.len() - 5);
        assert!(matches!(network_from_bytes(cut), Err(NetCodecError::Truncated(_))));
    }

    #[test]
    fn bad_class_rejected() {
        let mut net = RoadNetwork::new();
        let a = net.add_node(Point::new(0.0, 0.0));
        let b = net.add_node(Point::new(1.0, 0.0));
        net.add_segment(a, b, 1.0, RoadClass::Local);
        let mut data = network_to_bytes(&net).to_vec();
        let last = data.len() - 1;
        data[last] = 77;
        assert!(matches!(network_from_bytes(Bytes::from(data)), Err(NetCodecError::BadClass(77))));
    }
}
