//! The road network: a directed graph of road segments.
//!
//! Trajectories in the paper are map-matched sequences of *road segments*
//! (Definition 2), and CausalTAD's decoder predicts the next segment among
//! the *successors* of the current one (road-constrained prediction). The
//! segment-successor relation is therefore a first-class citizen here, and
//! all ids are dense `u32` newtypes so every lookup is a `Vec` index.

use crate::geometry::Point;

/// Dense handle to an intersection node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into node-keyed vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense handle to a directed road segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId(pub u32);

impl SegmentId {
    /// Index into segment-keyed vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Functional class of a road, mirroring the "road level" factor the paper
/// lists as part of the hidden preference confounder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RoadClass {
    /// Trunk roads ("the main road" of the paper's Fig. 1 example).
    Major,
    /// Mid-tier connector roads.
    Arterial,
    /// Narrow local streets.
    Local,
}

impl RoadClass {
    /// Stable small integer encoding (used by the codec and as a feature).
    pub fn as_u8(self) -> u8 {
        match self {
            RoadClass::Major => 0,
            RoadClass::Arterial => 1,
            RoadClass::Local => 2,
        }
    }

    /// Inverse of [`RoadClass::as_u8`].
    pub fn from_u8(v: u8) -> Option<RoadClass> {
        match v {
            0 => Some(RoadClass::Major),
            1 => Some(RoadClass::Arterial),
            2 => Some(RoadClass::Local),
            _ => None,
        }
    }

    /// Free-flow speed in m/s used when converting lengths to travel times.
    pub fn free_flow_speed(self) -> f64 {
        match self {
            RoadClass::Major => 22.0,    // ~80 km/h
            RoadClass::Arterial => 14.0, // ~50 km/h
            RoadClass::Local => 8.5,     // ~30 km/h
        }
    }
}

/// An intersection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Node {
    /// Position in the local planar frame (metres).
    pub pos: Point,
}

/// A directed road segment between two intersections.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Start intersection.
    pub from: NodeId,
    /// End intersection.
    pub to: NodeId,
    /// Length in metres.
    pub length: f64,
    /// Functional class.
    pub class: RoadClass,
}

/// A directed road network over dense node/segment ids.
#[derive(Clone, Debug, Default)]
pub struct RoadNetwork {
    nodes: Vec<Node>,
    segments: Vec<Segment>,
    /// Outgoing segments per node.
    out_segments: Vec<Vec<SegmentId>>,
    /// Incoming segments per node.
    in_segments: Vec<Vec<SegmentId>>,
}

impl RoadNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an intersection, returning its id.
    pub fn add_node(&mut self, pos: Point) -> NodeId {
        self.nodes.push(Node { pos });
        self.out_segments.push(Vec::new());
        self.in_segments.push(Vec::new());
        NodeId((self.nodes.len() - 1) as u32)
    }

    /// Adds a directed segment, returning its id.
    ///
    /// # Panics
    /// Panics if either endpoint is unknown or the segment is a self-loop.
    pub fn add_segment(
        &mut self,
        from: NodeId,
        to: NodeId,
        length: f64,
        class: RoadClass,
    ) -> SegmentId {
        assert!(from.index() < self.nodes.len(), "unknown from node");
        assert!(to.index() < self.nodes.len(), "unknown to node");
        assert_ne!(from, to, "self-loop segments are not allowed");
        assert!(length > 0.0, "segment length must be positive");
        let id = SegmentId(self.segments.len() as u32);
        self.segments.push(Segment { from, to, length, class });
        self.out_segments[from.index()].push(id);
        self.in_segments[to.index()].push(id);
        id
    }

    /// Number of intersections.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed segments (this is the model vocabulary size).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Node accessor.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Segment accessor.
    #[inline]
    pub fn segment(&self, id: SegmentId) -> &Segment {
        &self.segments[id.index()]
    }

    /// All segments leaving `node`.
    #[inline]
    pub fn out_segments(&self, node: NodeId) -> &[SegmentId] {
        &self.out_segments[node.index()]
    }

    /// All segments entering `node`.
    #[inline]
    pub fn in_segments(&self, node: NodeId) -> &[SegmentId] {
        &self.in_segments[node.index()]
    }

    /// The segments that can follow `seg` in a trajectory: every segment
    /// leaving `seg`'s end node, except the exact reverse of `seg`
    /// (U-turns are excluded, as is standard for map-matched taxi data).
    pub fn successors(&self, seg: SegmentId) -> impl Iterator<Item = SegmentId> + '_ {
        let s = self.segment(seg);
        let (from, to) = (s.from, s.to);
        self.out_segments[to.index()].iter().copied().filter(move |&n| {
            self.segment(n).to != from || self.out_segments[to.index()].len() == 1
        })
    }

    /// Successors of `seg` collected into a vector of raw `u32` ids, the
    /// form consumed by the models' road-constrained projections.
    pub fn successor_ids(&self, seg: SegmentId) -> Vec<u32> {
        self.successors(seg).map(|s| s.0).collect()
    }

    /// Finds the directed segment from `a` to `b`, if present.
    pub fn segment_between(&self, a: NodeId, b: NodeId) -> Option<SegmentId> {
        self.out_segments[a.index()].iter().copied().find(|&s| self.segment(s).to == b)
    }

    /// The reverse twin of `seg` (the segment covering the same road in the
    /// opposite direction), if present.
    pub fn reverse_of(&self, seg: SegmentId) -> Option<SegmentId> {
        let s = self.segment(seg);
        self.segment_between(s.to, s.from)
    }

    /// True when `path` is a connected walk: each consecutive pair of
    /// segments shares an intersection head-to-tail.
    pub fn is_connected_path(&self, path: &[SegmentId]) -> bool {
        path.windows(2).all(|w| self.segment(w[0]).to == self.segment(w[1]).from)
    }

    /// Total length of a path in metres.
    pub fn path_length(&self, path: &[SegmentId]) -> f64 {
        path.iter().map(|&s| self.segment(s).length).sum()
    }

    /// Midpoint of a segment in the plane (used by the spatial index and
    /// for visualisation).
    pub fn segment_midpoint(&self, seg: SegmentId) -> Point {
        let s = self.segment(seg);
        self.node(s.from).pos.lerp(&self.node(s.to).pos, 0.5)
    }

    /// Iterates over all segment ids.
    pub fn segment_ids(&self) -> impl Iterator<Item = SegmentId> {
        (0..self.segments.len() as u32).map(SegmentId)
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// True when every node can reach every other node following directed
    /// segments (checked by forward and backward BFS from node 0).
    pub fn is_strongly_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let forward = self.bfs_reach(NodeId(0), false);
        let backward = self.bfs_reach(NodeId(0), true);
        forward.iter().all(|&r| r) && backward.iter().all(|&r| r)
    }

    fn bfs_reach(&self, start: NodeId, reversed: bool) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[start.index()] = true;
        queue.push_back(start);
        while let Some(n) = queue.pop_front() {
            let edges =
                if reversed { &self.in_segments[n.index()] } else { &self.out_segments[n.index()] };
            for &s in edges {
                let next = if reversed { self.segment(s).from } else { self.segment(s).to };
                if !seen[next.index()] {
                    seen[next.index()] = true;
                    queue.push_back(next);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a 2x2 ring: 0 -> 1 -> 3 -> 2 -> 0 plus reverse edges.
    fn ring() -> (RoadNetwork, Vec<NodeId>) {
        let mut net = RoadNetwork::new();
        let n: Vec<_> = [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)]
            .iter()
            .map(|&(x, y)| net.add_node(Point::new(x, y)))
            .collect();
        for &(a, b) in &[(0, 1), (1, 3), (3, 2), (2, 0)] {
            net.add_segment(n[a], n[b], 1.0, RoadClass::Local);
            net.add_segment(n[b], n[a], 1.0, RoadClass::Local);
        }
        (net, n)
    }

    #[test]
    fn add_and_lookup() {
        let (net, n) = ring();
        assert_eq!(net.num_nodes(), 4);
        assert_eq!(net.num_segments(), 8);
        let s = net.segment_between(n[0], n[1]).unwrap();
        assert_eq!(net.segment(s).from, n[0]);
        assert_eq!(net.segment(s).to, n[1]);
    }

    #[test]
    fn successors_exclude_u_turn() {
        let (net, n) = ring();
        let s01 = net.segment_between(n[0], n[1]).unwrap();
        let succ: Vec<_> = net.successors(s01).collect();
        // From node 1 we can go to 3 or back to 0; the U-turn (1 -> 0) is
        // excluded because node 1 has another outgoing option.
        assert_eq!(succ.len(), 1);
        assert_eq!(net.segment(succ[0]).to, n[3]);
    }

    #[test]
    fn u_turn_allowed_at_dead_end() {
        let mut net = RoadNetwork::new();
        let a = net.add_node(Point::new(0.0, 0.0));
        let b = net.add_node(Point::new(1.0, 0.0));
        let ab = net.add_segment(a, b, 1.0, RoadClass::Local);
        let ba = net.add_segment(b, a, 1.0, RoadClass::Local);
        // b is a dead end: the only way onward is the U-turn.
        let succ: Vec<_> = net.successors(ab).collect();
        assert_eq!(succ, vec![ba]);
    }

    #[test]
    fn reverse_of_finds_twin() {
        let (net, n) = ring();
        let s01 = net.segment_between(n[0], n[1]).unwrap();
        let s10 = net.segment_between(n[1], n[0]).unwrap();
        assert_eq!(net.reverse_of(s01), Some(s10));
        assert_eq!(net.reverse_of(s10), Some(s01));
    }

    #[test]
    fn connected_path_check() {
        let (net, n) = ring();
        let s01 = net.segment_between(n[0], n[1]).unwrap();
        let s13 = net.segment_between(n[1], n[3]).unwrap();
        let s32 = net.segment_between(n[3], n[2]).unwrap();
        assert!(net.is_connected_path(&[s01, s13, s32]));
        assert!(!net.is_connected_path(&[s01, s32]));
        assert_eq!(net.path_length(&[s01, s13, s32]), 3.0);
    }

    #[test]
    fn strong_connectivity() {
        let (net, _) = ring();
        assert!(net.is_strongly_connected());

        let mut one_way = RoadNetwork::new();
        let a = one_way.add_node(Point::new(0.0, 0.0));
        let b = one_way.add_node(Point::new(1.0, 0.0));
        one_way.add_segment(a, b, 1.0, RoadClass::Local);
        assert!(!one_way.is_strongly_connected());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut net = RoadNetwork::new();
        let a = net.add_node(Point::new(0.0, 0.0));
        net.add_segment(a, a, 1.0, RoadClass::Local);
    }

    #[test]
    fn road_class_codec_roundtrip() {
        for class in [RoadClass::Major, RoadClass::Arterial, RoadClass::Local] {
            assert_eq!(RoadClass::from_u8(class.as_u8()), Some(class));
        }
        assert_eq!(RoadClass::from_u8(9), None);
    }
}
