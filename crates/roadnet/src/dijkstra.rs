//! Shortest paths over the road network.
//!
//! Two flavours are provided:
//!
//! * **segment-space** search ([`segment_shortest_path`]): states are
//!   directed segments connected by the successor relation. This is the
//!   search the paper's Detour anomaly generator needs ("temporarily delete
//!   `t_k` from the road network and apply Dijkstra") and the one the route
//!   choice model of `tad-trajsim` perturbs, because route preference is a
//!   property of segments, not intersections.
//! * **node-space** search ([`node_shortest_path`]) for plain
//!   intersection-to-intersection queries.
//!
//! Costs are supplied by a closure `SegmentId -> Option<f64>`; returning
//! `None` bans a segment, which is how detours and Yen's spur searches
//! remove edges without mutating the graph.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{NodeId, RoadNetwork, SegmentId};

/// Heap entry ordered by smallest cost first.
#[derive(Debug)]
struct HeapEntry {
    cost: f64,
    state: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.state == other.state
    }
}
impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; total_cmp handles NaN defensively.
        other.cost.total_cmp(&self.cost).then_with(|| other.state.cmp(&self.state))
    }
}

/// A path found by a shortest-path search.
#[derive(Clone, Debug, PartialEq)]
pub struct PathResult {
    /// Sequence of segments, including the start and end states for
    /// segment-space searches.
    pub segments: Vec<SegmentId>,
    /// Total cost under the supplied cost function.
    pub cost: f64,
}

/// Dijkstra in segment space from `start` to `goal` (both inclusive in the
/// returned path). `cost(seg)` prices *entering* each segment after the
/// first; `None` bans a segment entirely (including `goal`, which then makes
/// the search fail). The cost of the `start` segment itself is not counted,
/// matching the semantics of extending an existing trajectory.
pub fn segment_shortest_path(
    net: &RoadNetwork,
    start: SegmentId,
    goal: SegmentId,
    cost: impl Fn(SegmentId) -> Option<f64>,
) -> Option<PathResult> {
    cost(goal)?;
    if start == goal {
        return Some(PathResult { segments: vec![start], cost: 0.0 });
    }
    let n = net.num_segments();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<u32> = vec![u32::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[start.index()] = 0.0;
    heap.push(HeapEntry { cost: 0.0, state: start.0 });

    while let Some(HeapEntry { cost: d, state }) = heap.pop() {
        if state == goal.0 {
            break;
        }
        if d > dist[state as usize] {
            continue;
        }
        for next in net.successors(SegmentId(state)) {
            let Some(step) = cost(next) else { continue };
            debug_assert!(step >= 0.0, "negative segment cost");
            let nd = d + step;
            if nd < dist[next.index()] {
                dist[next.index()] = nd;
                prev[next.index()] = state;
                heap.push(HeapEntry { cost: nd, state: next.0 });
            }
        }
    }

    if dist[goal.index()].is_infinite() {
        return None;
    }
    let mut segments = vec![goal];
    let mut cur = goal.0;
    while cur != start.0 {
        cur = prev[cur as usize];
        debug_assert_ne!(cur, u32::MAX, "broken predecessor chain");
        segments.push(SegmentId(cur));
    }
    segments.reverse();
    Some(PathResult { segments, cost: dist[goal.index()] })
}

/// Dijkstra in node space from `from` to `to`. Returns the segment sequence
/// traversed. `cost(seg)` prices traversing each segment; `None` bans it.
pub fn node_shortest_path(
    net: &RoadNetwork,
    from: NodeId,
    to: NodeId,
    cost: impl Fn(SegmentId) -> Option<f64>,
) -> Option<PathResult> {
    if from == to {
        return Some(PathResult { segments: Vec::new(), cost: 0.0 });
    }
    let n = net.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev_seg: Vec<u32> = vec![u32::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[from.index()] = 0.0;
    heap.push(HeapEntry { cost: 0.0, state: from.0 });

    while let Some(HeapEntry { cost: d, state }) = heap.pop() {
        if state == to.0 {
            break;
        }
        if d > dist[state as usize] {
            continue;
        }
        for &seg in net.out_segments(NodeId(state)) {
            let Some(step) = cost(seg) else { continue };
            debug_assert!(step >= 0.0, "negative segment cost");
            let next = net.segment(seg).to;
            let nd = d + step;
            if nd < dist[next.index()] {
                dist[next.index()] = nd;
                prev_seg[next.index()] = seg.0;
                heap.push(HeapEntry { cost: nd, state: next.0 });
            }
        }
    }

    if dist[to.index()].is_infinite() {
        return None;
    }
    let mut segments = Vec::new();
    let mut cur = to;
    while cur != from {
        let seg = SegmentId(prev_seg[cur.index()]);
        segments.push(seg);
        cur = net.segment(seg).from;
    }
    segments.reverse();
    Some(PathResult { segments, cost: dist[to.index()] })
}

/// All-source single-target distances in node space are not needed; what the
/// map matcher wants is a *bounded* one-to-one distance. This runs node
/// Dijkstra but stops as soon as the target is settled or the best distance
/// exceeds `limit`, returning the network distance if reachable within it.
pub fn bounded_node_distance(
    net: &RoadNetwork,
    from: NodeId,
    to: NodeId,
    limit: f64,
) -> Option<f64> {
    if from == to {
        return Some(0.0);
    }
    let mut dist = vec![f64::INFINITY; net.num_nodes()];
    let mut heap = BinaryHeap::new();
    dist[from.index()] = 0.0;
    heap.push(HeapEntry { cost: 0.0, state: from.0 });
    while let Some(HeapEntry { cost: d, state }) = heap.pop() {
        if d > limit {
            return None;
        }
        if state == to.0 {
            return Some(d);
        }
        if d > dist[state as usize] {
            continue;
        }
        for &seg in net.out_segments(NodeId(state)) {
            let next = net.segment(seg).to;
            let nd = d + net.segment(seg).length;
            if nd < dist[next.index()] {
                dist[next.index()] = nd;
                heap.push(HeapEntry { cost: nd, state: next.0 });
            }
        }
    }
    None
}

/// Cost function: segment length in metres.
pub fn length_cost(net: &RoadNetwork) -> impl Fn(SegmentId) -> Option<f64> + '_ {
    move |s| Some(net.segment(s).length)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::graph::RoadClass;

    /// A 3x3 grid with bidirectional unit-length edges.
    fn grid3() -> (RoadNetwork, Vec<NodeId>) {
        let mut net = RoadNetwork::new();
        let mut nodes = Vec::new();
        for y in 0..3 {
            for x in 0..3 {
                nodes.push(net.add_node(Point::new(x as f64, y as f64)));
            }
        }
        let idx = |x: usize, y: usize| nodes[y * 3 + x];
        for y in 0..3 {
            for x in 0..3 {
                if x + 1 < 3 {
                    net.add_segment(idx(x, y), idx(x + 1, y), 1.0, RoadClass::Local);
                    net.add_segment(idx(x + 1, y), idx(x, y), 1.0, RoadClass::Local);
                }
                if y + 1 < 3 {
                    net.add_segment(idx(x, y), idx(x, y + 1), 1.0, RoadClass::Local);
                    net.add_segment(idx(x, y + 1), idx(x, y), 1.0, RoadClass::Local);
                }
            }
        }
        (net, nodes)
    }

    #[test]
    fn node_path_is_manhattan_on_grid() {
        let (net, nodes) = grid3();
        let r = node_shortest_path(&net, nodes[0], nodes[8], length_cost(&net)).unwrap();
        assert!((r.cost - 4.0).abs() < 1e-12);
        assert_eq!(r.segments.len(), 4);
        assert!(net.is_connected_path(&r.segments));
        assert_eq!(net.segment(r.segments[0]).from, nodes[0]);
        assert_eq!(net.segment(*r.segments.last().unwrap()).to, nodes[8]);
    }

    #[test]
    fn node_path_same_node_is_empty() {
        let (net, nodes) = grid3();
        let r = node_shortest_path(&net, nodes[4], nodes[4], length_cost(&net)).unwrap();
        assert!(r.segments.is_empty());
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn segment_path_connects_and_respects_bans() {
        let (net, nodes) = grid3();
        let start = net.segment_between(nodes[0], nodes[1]).unwrap();
        let goal = net.segment_between(nodes[7], nodes[8]).unwrap();
        let r = segment_shortest_path(&net, start, goal, length_cost(&net)).unwrap();
        assert!(net.is_connected_path(&r.segments));
        assert_eq!(r.segments.first(), Some(&start));
        assert_eq!(r.segments.last(), Some(&goal));

        // Ban a segment on the found path; the new route must avoid it and
        // cannot be cheaper.
        let banned = r.segments[1];
        let r2 = segment_shortest_path(&net, start, goal, |s| {
            if s == banned {
                None
            } else {
                Some(net.segment(s).length)
            }
        })
        .unwrap();
        assert!(!r2.segments.contains(&banned));
        assert!(r2.cost >= r.cost - 1e-12);
    }

    #[test]
    fn banned_goal_fails() {
        let (net, nodes) = grid3();
        let start = net.segment_between(nodes[0], nodes[1]).unwrap();
        let goal = net.segment_between(nodes[7], nodes[8]).unwrap();
        let r = segment_shortest_path(&net, start, goal, |s| {
            if s == goal {
                None
            } else {
                Some(net.segment(s).length)
            }
        });
        assert!(r.is_none());
    }

    #[test]
    fn bounded_distance_respects_limit() {
        let (net, nodes) = grid3();
        assert_eq!(bounded_node_distance(&net, nodes[0], nodes[8], 10.0), Some(4.0));
        assert_eq!(bounded_node_distance(&net, nodes[0], nodes[8], 3.0), None);
        assert_eq!(bounded_node_distance(&net, nodes[5], nodes[5], 0.0), Some(0.0));
    }

    #[test]
    fn costs_can_reweight_routes() {
        let (net, nodes) = grid3();
        // Make horizontal moves on the bottom row expensive; the search
        // should route through the middle row instead.
        let expensive: Vec<_> =
            (0..2).map(|x| net.segment_between(nodes[x], nodes[x + 1]).unwrap()).collect();
        let r = node_shortest_path(&net, nodes[0], nodes[2], |s| {
            if expensive.contains(&s) {
                Some(100.0)
            } else {
                Some(net.segment(s).length)
            }
        })
        .unwrap();
        assert!((r.cost - 4.0).abs() < 1e-12, "detour over the middle row: {}", r.cost);
        assert_eq!(r.segments.len(), 4);
    }
}
