//! Yen's k-shortest loopless paths in segment space.
//!
//! The Switch anomaly generator needs *alternative routes* for an SD pair so
//! it can splice a trajectory onto a dissimilar one, and the route-choice
//! model uses alternatives to mimic real route diversity. Yen's algorithm
//! provides the k cheapest loopless segment paths by repeatedly re-running
//! Dijkstra with spur-edge bans.

use crate::dijkstra::{segment_shortest_path, PathResult};
use crate::graph::{RoadNetwork, SegmentId};

/// Computes up to `k` cheapest loopless segment paths from `start` to
/// `goal` (both inclusive), ordered by non-decreasing cost.
pub fn k_shortest_paths(
    net: &RoadNetwork,
    start: SegmentId,
    goal: SegmentId,
    k: usize,
    cost: impl Fn(SegmentId) -> Option<f64>,
) -> Vec<PathResult> {
    let mut found: Vec<PathResult> = Vec::with_capacity(k);
    if k == 0 {
        return found;
    }
    let Some(best) = segment_shortest_path(net, start, goal, &cost) else {
        return found;
    };
    found.push(best);

    // Candidate paths not yet promoted to `found`.
    let mut candidates: Vec<PathResult> = Vec::new();

    while found.len() < k {
        let prev = found.last().expect("at least one path").segments.clone();
        for spur_idx in 0..prev.len().saturating_sub(1) {
            let spur_node = prev[spur_idx];
            let root = &prev[..=spur_idx];

            // Ban the edges that previous paths take out of this root, so the
            // spur search is forced onto a new continuation.
            let mut banned_next: Vec<SegmentId> = Vec::new();
            for p in found.iter().map(|p| &p.segments).chain(candidates.iter().map(|c| &c.segments))
            {
                if p.len() > spur_idx + 1 && p[..=spur_idx] == *root {
                    banned_next.push(p[spur_idx + 1]);
                }
            }
            // Ban root segments (except the spur node itself) to keep paths
            // loopless.
            let banned_root: Vec<SegmentId> = root[..spur_idx].to_vec();

            let spur = segment_shortest_path(net, spur_node, goal, |s| {
                if banned_next.contains(&s) || banned_root.contains(&s) {
                    None
                } else {
                    cost(s)
                }
            });
            let Some(spur) = spur else { continue };

            let mut segments = root[..spur_idx].to_vec();
            segments.extend_from_slice(&spur.segments);
            // Reject paths with repeated segments (looplessness guard).
            let mut seen = std::collections::HashSet::with_capacity(segments.len());
            if !segments.iter().all(|s| seen.insert(*s)) {
                continue;
            }
            let total_cost: f64 =
                segments[1..].iter().map(|&s| cost(s).expect("path uses banned segment")).sum();
            let candidate = PathResult { segments, cost: total_cost };
            if !candidates.iter().any(|c| c.segments == candidate.segments)
                && !found.iter().any(|f| f.segments == candidate.segments)
            {
                candidates.push(candidate);
            }
        }

        // Promote the cheapest candidate.
        let Some(best_idx) = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.cost.total_cmp(&b.cost))
            .map(|(i, _)| i)
        else {
            break;
        };
        found.push(candidates.swap_remove(best_idx));
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::length_cost;
    use crate::geometry::Point;
    use crate::graph::{NodeId, RoadClass};

    fn grid(n: usize) -> (RoadNetwork, Vec<NodeId>) {
        let mut net = RoadNetwork::new();
        let mut nodes = Vec::new();
        for y in 0..n {
            for x in 0..n {
                nodes.push(net.add_node(Point::new(x as f64, y as f64)));
            }
        }
        let idx = |x: usize, y: usize| nodes[y * n + x];
        for y in 0..n {
            for x in 0..n {
                if x + 1 < n {
                    net.add_segment(idx(x, y), idx(x + 1, y), 1.0, RoadClass::Local);
                    net.add_segment(idx(x + 1, y), idx(x, y), 1.0, RoadClass::Local);
                }
                if y + 1 < n {
                    net.add_segment(idx(x, y), idx(x, y + 1), 1.0, RoadClass::Local);
                    net.add_segment(idx(x, y + 1), idx(x, y), 1.0, RoadClass::Local);
                }
            }
        }
        (net, nodes)
    }

    #[test]
    fn paths_are_sorted_distinct_and_connected() {
        let (net, nodes) = grid(4);
        let start = net.segment_between(nodes[0], nodes[1]).unwrap();
        let goal = net.segment_between(nodes[14], nodes[15]).unwrap();
        let paths = k_shortest_paths(&net, start, goal, 5, length_cost(&net));
        assert_eq!(paths.len(), 5);
        for w in paths.windows(2) {
            assert!(w[0].cost <= w[1].cost + 1e-9, "costs must be non-decreasing");
            assert_ne!(w[0].segments, w[1].segments, "paths must be distinct");
        }
        for p in &paths {
            assert!(net.is_connected_path(&p.segments));
            assert_eq!(p.segments.first(), Some(&start));
            assert_eq!(p.segments.last(), Some(&goal));
            let mut seen = std::collections::HashSet::new();
            assert!(p.segments.iter().all(|s| seen.insert(*s)), "loopless");
        }
    }

    #[test]
    fn first_path_matches_dijkstra() {
        let (net, nodes) = grid(4);
        let start = net.segment_between(nodes[0], nodes[1]).unwrap();
        let goal = net.segment_between(nodes[11], nodes[15]).unwrap();
        let paths = k_shortest_paths(&net, start, goal, 3, length_cost(&net));
        let direct = segment_shortest_path(&net, start, goal, length_cost(&net)).unwrap();
        assert_eq!(paths[0].segments, direct.segments);
        assert!((paths[0].cost - direct.cost).abs() < 1e-12);
    }

    #[test]
    fn k_zero_and_unreachable() {
        let (net, nodes) = grid(3);
        let start = net.segment_between(nodes[0], nodes[1]).unwrap();
        let goal = net.segment_between(nodes[7], nodes[8]).unwrap();
        assert!(k_shortest_paths(&net, start, goal, 0, length_cost(&net)).is_empty());
        // Banning the goal makes it unreachable.
        let paths = k_shortest_paths(&net, start, goal, 3, |s| {
            if s == goal {
                None
            } else {
                Some(net.segment(s).length)
            }
        });
        assert!(paths.is_empty());
    }

    #[test]
    fn fewer_paths_than_k_on_sparse_graph() {
        // A single corridor admits exactly one loopless path.
        let mut net = RoadNetwork::new();
        let a = net.add_node(Point::new(0.0, 0.0));
        let b = net.add_node(Point::new(1.0, 0.0));
        let c = net.add_node(Point::new(2.0, 0.0));
        let ab = net.add_segment(a, b, 1.0, RoadClass::Local);
        net.add_segment(b, a, 1.0, RoadClass::Local);
        let bc = net.add_segment(b, c, 1.0, RoadClass::Local);
        net.add_segment(c, b, 1.0, RoadClass::Local);
        let paths = k_shortest_paths(&net, ab, bc, 4, length_cost(&net));
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].segments, vec![ab, bc]);
    }
}
