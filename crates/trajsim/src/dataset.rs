//! Trajectory and dataset types.

use tad_roadnet::SegmentId;

/// Ground-truth label of a generated trajectory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Label {
    /// A route produced by the route-choice model.
    Normal,
    /// A Detour anomaly (paper §VI-A2, strategy 1).
    Detour,
    /// A Switch anomaly (paper §VI-A2, strategy 2).
    Switch,
}

impl Label {
    /// True for either anomaly class.
    pub fn is_anomalous(self) -> bool {
        !matches!(self, Label::Normal)
    }

    /// Stable byte encoding for the codec.
    pub fn as_u8(self) -> u8 {
        match self {
            Label::Normal => 0,
            Label::Detour => 1,
            Label::Switch => 2,
        }
    }

    /// Inverse of [`Label::as_u8`].
    pub fn from_u8(v: u8) -> Option<Label> {
        match v {
            0 => Some(Label::Normal),
            1 => Some(Label::Detour),
            2 => Some(Label::Switch),
            _ => None,
        }
    }
}

/// A source-destination pair: the first and last road segments of a trip
/// (the condition `C = <s, d>` of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SdPair {
    /// First road segment.
    pub source: SegmentId,
    /// Last road segment.
    pub dest: SegmentId,
}

/// A map-matched trajectory: an ordered walk of road segments plus the
/// departure-time slot (Definition 2 of the paper, enriched with time for
/// the DeepTEA baseline and the time-factorised extension).
#[derive(Clone, Debug, PartialEq)]
pub struct Trajectory {
    /// The segment walk, `t_1 .. t_n`.
    pub segments: Vec<SegmentId>,
    /// Departure-time slot in `0..num_time_slots`.
    pub time_slot: u8,
    /// Ground-truth label.
    pub label: Label,
}

impl Trajectory {
    /// Creates a normal trajectory.
    pub fn normal(segments: Vec<SegmentId>, time_slot: u8) -> Self {
        Trajectory { segments, time_slot, label: Label::Normal }
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when the walk holds no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The SD pair `<t_1, t_n>` of this trajectory.
    ///
    /// # Panics
    /// Panics on empty trajectories.
    pub fn sd_pair(&self) -> SdPair {
        SdPair {
            source: *self.segments.first().expect("empty trajectory"),
            dest: *self.segments.last().expect("empty trajectory"),
        }
    }

    /// Jaccard similarity of the segment *sets* of two trajectories,
    /// the measure the paper's Switch generator thresholds on
    /// (`|t' ∩ t| / |t' ∪ t|`).
    pub fn jaccard(&self, other: &Trajectory) -> f64 {
        let a: std::collections::HashSet<_> = self.segments.iter().collect();
        let b: std::collections::HashSet<_> = other.segments.iter().collect();
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        let inter = a.intersection(&b).count();
        let union = a.len() + b.len() - inter;
        inter as f64 / union as f64
    }

    /// The prefix visible after observing `ratio` of the trip (at least one
    /// segment), used by the online evaluation (paper §VI-E).
    pub fn observed_prefix(&self, ratio: f64) -> &[SegmentId] {
        let n = self.segments.len();
        let k = ((n as f64 * ratio).round() as usize).clamp(1, n);
        &self.segments[..k]
    }
}

/// The datasets the paper evaluates on, for one city.
///
/// * `train` — half of the trajectories of the candidate (popular) SD
///   pairs.
/// * `test_id` — the other half (in-distribution normals).
/// * `test_ood` — normals with SD pairs never seen in training.
/// * `detour` / `switch` — anomaly datasets generated from in-distribution
///   trajectories; combined with either normal set they form the four test
///   combinations of Tables I and II.
#[derive(Clone, Debug, Default)]
pub struct CityDatasets {
    pub train: Vec<Trajectory>,
    pub test_id: Vec<Trajectory>,
    pub test_ood: Vec<Trajectory>,
    pub detour: Vec<Trajectory>,
    pub switch: Vec<Trajectory>,
}

impl CityDatasets {
    /// Summarises split sizes, used in reports and logs.
    pub fn summary(&self) -> String {
        format!(
            "train={} id={} ood={} detour={} switch={}",
            self.train.len(),
            self.test_id.len(),
            self.test_ood.len(),
            self.detour.len(),
            self.switch.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(ids: &[u32]) -> Trajectory {
        Trajectory::normal(ids.iter().map(|&i| SegmentId(i)).collect(), 0)
    }

    #[test]
    fn sd_pair_is_first_and_last() {
        let t = traj(&[3, 5, 9]);
        assert_eq!(t.sd_pair(), SdPair { source: SegmentId(3), dest: SegmentId(9) });
    }

    #[test]
    fn jaccard_extremes() {
        let a = traj(&[1, 2, 3]);
        let b = traj(&[1, 2, 3]);
        let c = traj(&[7, 8, 9]);
        assert!((a.jaccard(&b) - 1.0).abs() < 1e-12);
        assert_eq!(a.jaccard(&c), 0.0);
    }

    #[test]
    fn jaccard_partial_overlap() {
        let a = traj(&[1, 2, 3, 4]);
        let b = traj(&[3, 4, 5, 6]);
        // intersection 2, union 6.
        assert!((a.jaccard(&b) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn observed_prefix_bounds() {
        let t = traj(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(t.observed_prefix(0.0).len(), 1);
        assert_eq!(t.observed_prefix(0.5).len(), 5);
        assert_eq!(t.observed_prefix(1.0).len(), 10);
        assert_eq!(t.observed_prefix(2.0).len(), 10);
    }

    #[test]
    fn label_roundtrip_and_anomaly_flag() {
        for label in [Label::Normal, Label::Detour, Label::Switch] {
            assert_eq!(Label::from_u8(label.as_u8()), Some(label));
        }
        assert_eq!(Label::from_u8(9), None);
        assert!(!Label::Normal.is_anomalous());
        assert!(Label::Detour.is_anomalous());
        assert!(Label::Switch.is_anomalous());
    }
}
