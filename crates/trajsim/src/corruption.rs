//! Fault-model corruption generators: seeded, replayable transforms that
//! turn any clean dataset into the hostile-telemetry regime an online
//! detector actually faces.
//!
//! Five independent fault channels, each gated by its own probability:
//!
//! * **Duplicate** — a segment is re-sent immediately (at-least-once
//!   transport).
//! * **Reorder** — two adjacent segments swap arrival order (racing
//!   uplinks, retry queues).
//! * **Drop** — a segment never arrives (dead zone, packet loss).
//! * **Jitter** — a segment is replaced by a *sibling*: a different
//!   successor of its predecessor (GPS noise snapping the fix onto a
//!   parallel road). Requires the road network.
//! * **Teleport** — a segment is replaced by a uniformly random one
//!   (map-matching glitch: an off-network jump).
//!
//! Value faults (jitter, teleport) are applied first, then loss (drop),
//! then transport faults (duplicate, reorder) — the order a real pipeline
//! composes them in. Every transform draws from one caller-provided RNG,
//! so a [`CorruptionConfig`] plus a seed replays the exact same corrupted
//! stream anywhere ([`corrupt_dataset`] seeds its own `StdRng` from
//! `cfg.seed` for one-call replayability).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tad_roadnet::{RoadNetwork, SegmentId};

use crate::dataset::Trajectory;

/// Per-channel corruption probabilities plus the replay seed. The default
/// is the identity transform (all probabilities zero).
#[derive(Clone, Debug, PartialEq)]
pub struct CorruptionConfig {
    /// Probability that a segment is immediately re-sent.
    pub duplicate_prob: f64,
    /// Probability that a segment swaps arrival order with its successor
    /// in the stream.
    pub reorder_prob: f64,
    /// Probability that a segment is lost entirely.
    pub drop_prob: f64,
    /// Probability that a segment is replaced by a different successor of
    /// its predecessor (GPS snap noise).
    pub jitter_prob: f64,
    /// Probability that a segment is replaced by a uniformly random one
    /// (off-network teleport).
    pub teleport_prob: f64,
    /// Seed for [`corrupt_dataset`]'s private RNG.
    pub seed: u64,
}

impl Default for CorruptionConfig {
    fn default() -> Self {
        CorruptionConfig {
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            drop_prob: 0.0,
            jitter_prob: 0.0,
            teleport_prob: 0.0,
            seed: 0,
        }
    }
}

impl CorruptionConfig {
    /// Pure duplication at probability `p`.
    pub fn duplicates(p: f64, seed: u64) -> Self {
        CorruptionConfig { duplicate_prob: p, seed, ..CorruptionConfig::default() }
    }

    /// Pure adjacent reordering at probability `p`.
    pub fn reorders(p: f64, seed: u64) -> Self {
        CorruptionConfig { reorder_prob: p, seed, ..CorruptionConfig::default() }
    }

    /// Pure segment loss at probability `p`.
    pub fn drops(p: f64, seed: u64) -> Self {
        CorruptionConfig { drop_prob: p, seed, ..CorruptionConfig::default() }
    }

    /// Pure GPS jitter at probability `p`.
    pub fn jitter(p: f64, seed: u64) -> Self {
        CorruptionConfig { jitter_prob: p, seed, ..CorruptionConfig::default() }
    }

    /// Pure off-network teleports at probability `p`.
    pub fn teleports(p: f64, seed: u64) -> Self {
        CorruptionConfig { teleport_prob: p, seed, ..CorruptionConfig::default() }
    }

    /// True when every channel is disabled (the identity transform).
    pub fn is_identity(&self) -> bool {
        self.duplicate_prob <= 0.0
            && self.reorder_prob <= 0.0
            && self.drop_prob <= 0.0
            && self.jitter_prob <= 0.0
            && self.teleport_prob <= 0.0
    }
}

/// Applies the configured fault channels to one trajectory, drawing all
/// randomness from `rng`. The label and time slot are preserved — the
/// corruption models the *telemetry channel*, not the driving behaviour.
/// Trips are never corrupted down to an empty walk: at least one segment
/// always survives the drop channel.
pub fn corrupt_trajectory<R: Rng + ?Sized>(
    net: &RoadNetwork,
    traj: &Trajectory,
    cfg: &CorruptionConfig,
    rng: &mut R,
) -> Trajectory {
    let vocab = net.num_segments() as u32;
    let mut segments: Vec<SegmentId> = traj.segments.clone();

    // 1. Value faults. Jitter first (needs the true predecessor wiring),
    //    then teleports on top.
    if cfg.jitter_prob > 0.0 {
        for i in 1..segments.len() {
            if rng.gen_bool(cfg.jitter_prob.clamp(0.0, 1.0)) {
                let prev = segments[i - 1];
                let siblings: Vec<SegmentId> =
                    net.successors(prev).filter(|&s| s != segments[i]).collect();
                if let Some(&pick) = siblings.get(rng.gen_range(0..siblings.len().max(1))) {
                    segments[i] = pick;
                }
            }
        }
    }
    if cfg.teleport_prob > 0.0 && vocab > 0 {
        for seg in segments.iter_mut() {
            if rng.gen_bool(cfg.teleport_prob.clamp(0.0, 1.0)) {
                *seg = SegmentId(rng.gen_range(0..vocab));
            }
        }
    }

    // 2. Loss. At least one segment survives so the trip stays a trip.
    if cfg.drop_prob > 0.0 {
        let kept: Vec<SegmentId> = segments
            .iter()
            .copied()
            .filter(|_| !rng.gen_bool(cfg.drop_prob.clamp(0.0, 1.0)))
            .collect();
        if !kept.is_empty() {
            segments = kept;
        } else if let Some(&first) = segments.first() {
            segments = vec![first];
        }
    }

    // 3. Transport faults. Duplication emits a segment twice; reordering
    //    swaps a segment with its stream successor (each position takes
    //    part in at most one swap).
    if cfg.duplicate_prob > 0.0 {
        let mut stream = Vec::with_capacity(segments.len() * 2);
        for &seg in &segments {
            stream.push(seg);
            if rng.gen_bool(cfg.duplicate_prob.clamp(0.0, 1.0)) {
                stream.push(seg);
            }
        }
        segments = stream;
    }
    if cfg.reorder_prob > 0.0 {
        let mut i = 0;
        while i + 1 < segments.len() {
            if rng.gen_bool(cfg.reorder_prob.clamp(0.0, 1.0)) {
                segments.swap(i, i + 1);
                i += 2;
            } else {
                i += 1;
            }
        }
    }

    Trajectory { segments, time_slot: traj.time_slot, label: traj.label }
}

/// Applies [`corrupt_trajectory`] to every trip of a dataset, in order,
/// from a private `StdRng` seeded with `cfg.seed` — the same config over
/// the same slice replays the exact same corrupted dataset.
pub fn corrupt_dataset(
    net: &RoadNetwork,
    data: &[Trajectory],
    cfg: &CorruptionConfig,
) -> Vec<Trajectory> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    data.iter().map(|t| corrupt_trajectory(net, t, cfg, &mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_city, CityConfig};

    fn city() -> crate::generator::City {
        generate_city(&CityConfig::test_scale(4242))
    }

    #[test]
    fn identity_config_is_a_no_op() {
        let city = city();
        let cfg = CorruptionConfig::default();
        assert!(cfg.is_identity());
        let out = corrupt_dataset(&city.net, &city.data.test_id, &cfg);
        assert_eq!(out, city.data.test_id);
    }

    #[test]
    fn corruption_is_replayable() {
        let city = city();
        let cfg = CorruptionConfig {
            duplicate_prob: 0.2,
            reorder_prob: 0.2,
            drop_prob: 0.1,
            jitter_prob: 0.1,
            teleport_prob: 0.05,
            seed: 7,
        };
        let a = corrupt_dataset(&city.net, &city.data.test_id, &cfg);
        let b = corrupt_dataset(&city.net, &city.data.test_id, &cfg);
        assert_eq!(a, b, "same seed must replay the same corrupted stream");
        let c =
            corrupt_dataset(&city.net, &city.data.test_id, &CorruptionConfig { seed: 8, ..cfg });
        assert_ne!(a, c, "a different seed must change the stream");
    }

    #[test]
    fn duplicates_only_insert_exact_resends() {
        let city = city();
        let cfg = CorruptionConfig::duplicates(0.5, 3);
        let out = corrupt_dataset(&city.net, &city.data.test_id, &cfg);
        let mut grew = false;
        for (clean, dirty) in city.data.test_id.iter().zip(&out) {
            assert!(dirty.len() >= clean.len());
            grew |= dirty.len() > clean.len();
            // Removing immediate duplicates recovers the clean walk.
            let mut dedup: Vec<_> = Vec::new();
            for &seg in &dirty.segments {
                if dedup.last() != Some(&seg) {
                    dedup.push(seg);
                }
            }
            // The clean walk itself never has immediate self-loops, so the
            // collapse is exact.
            let clean_segs: Vec<_> = clean.segments.clone();
            assert_eq!(dedup, clean_segs);
            assert_eq!(dirty.label, clean.label);
            assert_eq!(dirty.time_slot, clean.time_slot);
        }
        assert!(grew, "p=0.5 must duplicate something across the suite");
    }

    #[test]
    fn reorders_preserve_the_multiset() {
        let city = city();
        let cfg = CorruptionConfig::reorders(0.5, 3);
        let out = corrupt_dataset(&city.net, &city.data.test_id, &cfg);
        let mut changed = false;
        for (clean, dirty) in city.data.test_id.iter().zip(&out) {
            assert_eq!(dirty.len(), clean.len());
            let mut a = clean.segments.clone();
            let mut b = dirty.segments.clone();
            changed |= a != b;
            a.sort_unstable_by_key(|s| s.0);
            b.sort_unstable_by_key(|s| s.0);
            assert_eq!(a, b, "reordering must not add or lose segments");
        }
        assert!(changed, "p=0.5 must swap something across the suite");
    }

    #[test]
    fn drops_never_empty_a_trip() {
        let city = city();
        let cfg = CorruptionConfig::drops(0.95, 3);
        let out = corrupt_dataset(&city.net, &city.data.test_id, &cfg);
        for (clean, dirty) in city.data.test_id.iter().zip(&out) {
            assert!(!dirty.is_empty());
            assert!(dirty.len() <= clean.len());
        }
    }

    #[test]
    fn teleports_and_jitter_stay_in_vocab() {
        let city = city();
        let vocab = city.net.num_segments() as u32;
        let cfg = CorruptionConfig {
            jitter_prob: 0.3,
            teleport_prob: 0.3,
            seed: 11,
            ..CorruptionConfig::default()
        };
        let out = corrupt_dataset(&city.net, &city.data.test_id, &cfg);
        let mut changed = false;
        for (clean, dirty) in city.data.test_id.iter().zip(&out) {
            assert_eq!(dirty.len(), clean.len());
            changed |= dirty.segments != clean.segments;
            for seg in &dirty.segments {
                assert!(seg.0 < vocab);
            }
        }
        assert!(changed, "value faults at p=0.3 must alter the suite");
    }
}
