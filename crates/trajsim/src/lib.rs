//! # tad-trajsim
//!
//! Confounded trajectory simulator for the CausalTAD reproduction
//! (ICDE 2024). The paper's datasets are proprietary DiDi taxi trajectories;
//! this crate replaces them with a generator whose data-generating process
//! **is the paper's structural causal model** (Fig. 2a):
//!
//! * [`preference`] — the hidden confounder `E`: a per-segment popularity
//!   field (road class + POI hotspots + noise) with per-time-slot
//!   congestion.
//! * [`sd`] — `E → C`: in-distribution SD pairs sampled proportional to
//!   popularity; OOD pairs sampled uniformly.
//! * [`routing`] — `C → T` and `E → T`: a random-utility route-choice model
//!   minimising preference-weighted perceived cost.
//! * [`anomaly`] — the paper's Detour and Switch anomaly generators
//!   (§VI-A2), implemented on the road network.
//! * [`generator`] — one-call generation of a [`generator::City`] with all
//!   five splits (train / ID / OOD / detour / switch).
//! * [`codec`] — compact binary persistence of datasets.
//! * [`corruption`] — seeded, replayable fault-model transforms
//!   (duplicate / reorder / drop / jitter / teleport) that turn any clean
//!   dataset into hostile telemetry for the serving-layer sanitization
//!   policies.
//!
//! Because `E` is explicit here, experiments can verify not only *that*
//! CausalTAD beats the baselines out of distribution, but that it does so
//! *for the reason the paper claims* (compensation of popularity bias).

pub mod anomaly;
pub mod codec;
pub mod corruption;
mod dataset;
pub mod generator;
pub mod preference;
pub mod routing;
pub mod sd;
pub mod stats;

pub use corruption::{corrupt_dataset, corrupt_trajectory, CorruptionConfig};
pub use dataset::{CityDatasets, Label, SdPair, Trajectory};
pub use generator::{generate_city, City, CityConfig};
