//! Route choice: how drivers turn an SD pair into a trajectory (`C → T`
//! under the influence of `E → T`).
//!
//! Drivers follow a random-utility model: each segment's perceived cost is
//! the preference-weighted travel cost of [`RoadPreference::route_cost`]
//! perturbed by multiplicative log-normal noise, and the driver takes the
//! cheapest perceived route. Re-sampling the noise yields the natural route
//! diversity real taxi data shows for one SD pair, while preference keeps
//! popular corridors over-represented — exactly the bias CausalTAD must
//! correct.

use rand::Rng;
use tad_roadnet::dijkstra::segment_shortest_path;
use tad_roadnet::{RoadNetwork, SegmentId};

use crate::preference::RoadPreference;

/// Parameters of the route-choice model.
#[derive(Clone, Debug)]
pub struct RouteChoiceConfig {
    /// Strength of the preference term in perceived cost (`E → T`);
    /// 0 makes drivers pure shortest-path followers.
    pub gamma: f64,
    /// Standard deviation of per-segment log-normal utility noise; larger
    /// values produce more route diversity per SD pair.
    pub utility_noise: f64,
}

impl Default for RouteChoiceConfig {
    fn default() -> Self {
        RouteChoiceConfig { gamma: 0.7, utility_noise: 0.45 }
    }
}

/// Samples one route from `source` to `dest` (both road segments, inclusive)
/// departing in `slot`. Returns `None` only if the pair is unreachable.
pub fn choose_route<R: Rng + ?Sized>(
    net: &RoadNetwork,
    pref: &RoadPreference,
    source: SegmentId,
    dest: SegmentId,
    slot: usize,
    cfg: &RouteChoiceConfig,
    rng: &mut R,
) -> Option<Vec<SegmentId>> {
    // One noise draw per segment per trip: the driver's idiosyncratic view
    // of the network on this day.
    let noise: Vec<f64> =
        (0..net.num_segments()).map(|_| (cfg.utility_noise * gauss(rng)).exp()).collect();
    let result = segment_shortest_path(net, source, dest, |s| {
        Some(pref.route_cost(net, s, slot, cfg.gamma) * noise[s.index()])
    })?;
    Some(result.segments)
}

fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::{PreferenceConfig, RoadPreference};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tad_roadnet::grid::{generate_grid_city, GridCityConfig};
    use tad_roadnet::NodeId;

    fn setup() -> (RoadNetwork, RoadPreference) {
        let mut rng = StdRng::seed_from_u64(20);
        let net = generate_grid_city(&GridCityConfig::tiny(), &mut rng);
        let pref = RoadPreference::generate(&net, &PreferenceConfig::default(), &mut rng);
        (net, pref)
    }

    fn far_pair(net: &RoadNetwork) -> (SegmentId, SegmentId) {
        let s = net.out_segments(NodeId(0))[0];
        let last = NodeId((net.num_nodes() - 1) as u32);
        let d = net.in_segments(last)[0];
        (s, d)
    }

    #[test]
    fn routes_are_connected_and_anchored() {
        let (net, pref) = setup();
        let (s, d) = far_pair(&net);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let route = choose_route(&net, &pref, s, d, 0, &RouteChoiceConfig::default(), &mut rng)
                .expect("reachable");
            assert!(net.is_connected_path(&route));
            assert_eq!(route.first(), Some(&s));
            assert_eq!(route.last(), Some(&d));
        }
    }

    #[test]
    fn noise_creates_route_diversity() {
        let (net, pref) = setup();
        let (s, d) = far_pair(&net);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = RouteChoiceConfig { utility_noise: 0.5, ..Default::default() };
        let routes: std::collections::HashSet<Vec<u32>> = (0..20)
            .map(|_| {
                choose_route(&net, &pref, s, d, 0, &cfg, &mut rng)
                    .unwrap()
                    .iter()
                    .map(|seg| seg.0)
                    .collect()
            })
            .collect();
        assert!(routes.len() > 1, "expected diverse routes, got {}", routes.len());
    }

    #[test]
    fn zero_noise_is_deterministic() {
        let (net, pref) = setup();
        let (s, d) = far_pair(&net);
        let cfg = RouteChoiceConfig { utility_noise: 0.0, ..Default::default() };
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(4);
        let a = choose_route(&net, &pref, s, d, 0, &cfg, &mut rng_a).unwrap();
        let b = choose_route(&net, &pref, s, d, 0, &cfg, &mut rng_b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn preference_pulls_routes_onto_popular_roads() {
        let (net, pref) = setup();
        let (s, d) = far_pair(&net);
        let mut rng = StdRng::seed_from_u64(5);
        let mean_popularity = |gamma: f64, rng: &mut StdRng| -> f64 {
            let cfg = RouteChoiceConfig { gamma, utility_noise: 0.1 };
            let mut total = 0.0;
            let mut count = 0usize;
            for _ in 0..15 {
                let route = choose_route(&net, &pref, s, d, 0, &cfg, rng).unwrap();
                total += route.iter().map(|&seg| pref.weight(seg)).sum::<f64>();
                count += route.len();
            }
            total / count as f64
        };
        let without = mean_popularity(0.0, &mut rng);
        let with = mean_popularity(1.0, &mut rng);
        assert!(
            with > without,
            "preference-driven routes should be more popular: {with:.3} vs {without:.3}"
        );
    }
}
