//! The hidden confounder `E`: a road-preference field.
//!
//! The paper models trajectory generation with a causal graph where an
//! unobserved road preference `E` — "the mixture effects of many factors
//! such as the weather, road level, speed limit" plus POIs ("a mall at
//! p5") — causes both the SD-pair distribution (`E → C`) and route choice
//! (`E → T`). This module makes `E` explicit and samplable:
//!
//! * every segment gets a **popularity weight** driven by its road class,
//!   proximity to POI hotspots, and log-normal noise;
//! * every `(time slot, segment)` pair gets a **congestion multiplier**,
//!   giving DeepTEA's time-dependence something real to model (and serving
//!   the paper's §V-E.3 future-work extension).
//!
//! Downstream, `tad-trajsim::sd` samples SD pairs proportional to these
//! weights (`E → C`) and `tad-trajsim::routing` prices routes with them
//! (`E → T`). The models under test never see this struct — it is the
//! ground-truth confounder they must debias away.

use rand::Rng;
use tad_roadnet::geometry::Point;
use tad_roadnet::{RoadClass, RoadNetwork, SegmentId};

/// Configuration of the preference field.
#[derive(Clone, Debug)]
pub struct PreferenceConfig {
    /// Popularity multiplier per road class `[Major, Arterial, Local]`.
    pub class_weight: [f64; 3],
    /// Number of POI hotspots (malls, stations, office clusters).
    pub num_pois: usize,
    /// Popularity boost at the centre of a POI (decays with distance).
    pub poi_boost: f64,
    /// Radius of POI influence in metres.
    pub poi_radius: f64,
    /// Standard deviation of log-normal popularity noise.
    pub noise_std: f64,
    /// Number of departure-time slots in a day.
    pub num_time_slots: usize,
    /// Peak congestion multiplier amplitude (0 disables congestion).
    pub congestion_amp: f64,
}

impl Default for PreferenceConfig {
    fn default() -> Self {
        PreferenceConfig {
            class_weight: [3.0, 1.6, 0.6],
            num_pois: 5,
            poi_boost: 4.0,
            poi_radius: 400.0,
            noise_std: 0.25,
            num_time_slots: 4,
            congestion_amp: 0.8,
        }
    }
}

/// The instantiated confounder: per-segment popularity and per-slot
/// congestion.
#[derive(Clone, Debug)]
pub struct RoadPreference {
    weights: Vec<f64>,
    /// `congestion[slot][segment]`, multiplier `>= 1`.
    congestion: Vec<Vec<f64>>,
    pois: Vec<Point>,
    num_time_slots: usize,
}

impl RoadPreference {
    /// Samples a preference field for `net`.
    pub fn generate<R: Rng + ?Sized>(
        net: &RoadNetwork,
        cfg: &PreferenceConfig,
        rng: &mut R,
    ) -> Self {
        assert!(cfg.num_time_slots >= 1, "need at least one time slot");
        // POI hotspots at random intersections.
        let pois: Vec<Point> = (0..cfg.num_pois)
            .map(|_| {
                let n = rng.gen_range(0..net.num_nodes());
                net.node(tad_roadnet::NodeId(n as u32)).pos
            })
            .collect();

        let mut weights = Vec::with_capacity(net.num_segments());
        for s in net.segment_ids() {
            let seg = net.segment(s);
            let class_w = cfg.class_weight[seg.class.as_u8() as usize];
            let mid = net.segment_midpoint(s);
            let poi_w: f64 = pois
                .iter()
                .map(|p| {
                    let d = mid.dist(p);
                    1.0 + (cfg.poi_boost - 1.0)
                        * (-d * d / (2.0 * cfg.poi_radius * cfg.poi_radius)).exp()
                })
                .fold(1.0, f64::max);
            let noise = (cfg.noise_std * gauss(rng)).exp();
            weights.push(class_w * poi_w * noise);
        }

        // Congestion: each slot has a random set of congested corridors;
        // local streets congest more at peak slots, mimicking rush hours.
        let mut congestion = Vec::with_capacity(cfg.num_time_slots);
        for slot in 0..cfg.num_time_slots {
            let peak = peak_factor(slot, cfg.num_time_slots);
            let per_seg: Vec<f64> = net
                .segment_ids()
                .map(|s| {
                    let class_sensitivity = match net.segment(s).class {
                        RoadClass::Major => 1.0,
                        RoadClass::Arterial => 0.7,
                        RoadClass::Local => 0.4,
                    };
                    let noise: f64 = rng.gen_range(0.0..1.0);
                    1.0 + cfg.congestion_amp * peak * class_sensitivity * noise
                })
                .collect();
            congestion.push(per_seg);
        }

        RoadPreference { weights, congestion, pois, num_time_slots: cfg.num_time_slots }
    }

    /// Popularity weight of a segment (`> 0`).
    #[inline]
    pub fn weight(&self, seg: SegmentId) -> f64 {
        self.weights[seg.index()]
    }

    /// Congestion multiplier for a segment in a time slot (`>= 1`).
    #[inline]
    pub fn congestion(&self, slot: usize, seg: SegmentId) -> f64 {
        self.congestion[slot % self.num_time_slots][seg.index()]
    }

    /// Number of time slots.
    pub fn num_time_slots(&self) -> usize {
        self.num_time_slots
    }

    /// POI hotspot positions (for visualisation and tests).
    pub fn pois(&self) -> &[Point] {
        &self.pois
    }

    /// The generalised travel cost drivers perceive for a segment: length
    /// scaled up by congestion and down by preference. `gamma` controls how
    /// strongly preference bends routes (`E → T` strength).
    pub fn route_cost(&self, net: &RoadNetwork, seg: SegmentId, slot: usize, gamma: f64) -> f64 {
        let base = net.segment(seg).length;
        base * self.congestion(slot, seg) / self.weight(seg).powf(gamma)
    }

    /// Normalised popularity in `[0, 1]` relative to the most popular
    /// segment; convenient as a feature and in reports.
    pub fn relative_popularity(&self, seg: SegmentId) -> f64 {
        let max = self.weights.iter().copied().fold(f64::MIN, f64::max);
        self.weights[seg.index()] / max
    }
}

/// Rush-hour profile over slots: slots 1 and `n-1` (morning/evening) peak.
fn peak_factor(slot: usize, num_slots: usize) -> f64 {
    if num_slots == 1 {
        return 1.0;
    }
    let phase = slot as f64 / num_slots as f64 * 2.0 * std::f64::consts::PI;
    0.5 + 0.5 * (2.0 * phase).sin().abs()
}

fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tad_roadnet::grid::{generate_grid_city, GridCityConfig};

    fn setup() -> (RoadNetwork, RoadPreference) {
        let mut rng = StdRng::seed_from_u64(10);
        let net = generate_grid_city(&GridCityConfig::tiny(), &mut rng);
        let pref = RoadPreference::generate(&net, &PreferenceConfig::default(), &mut rng);
        (net, pref)
    }

    #[test]
    fn weights_positive_and_finite() {
        let (net, pref) = setup();
        for s in net.segment_ids() {
            let w = pref.weight(s);
            assert!(w.is_finite() && w > 0.0, "weight {w}");
        }
    }

    #[test]
    fn major_roads_more_popular_on_average() {
        let (net, pref) = setup();
        let mean_for = |class: RoadClass| {
            let (sum, n) = net
                .segment_ids()
                .filter(|&s| net.segment(s).class == class)
                .fold((0.0, 0usize), |(sum, n), s| (sum + pref.weight(s), n + 1));
            sum / n.max(1) as f64
        };
        assert!(mean_for(RoadClass::Major) > mean_for(RoadClass::Local));
    }

    #[test]
    fn congestion_at_least_one() {
        let (net, pref) = setup();
        for slot in 0..pref.num_time_slots() {
            for s in net.segment_ids() {
                assert!(pref.congestion(slot, s) >= 1.0);
            }
        }
    }

    #[test]
    fn route_cost_monotone_in_gamma_for_popular_segments() {
        let (net, pref) = setup();
        // Pick the most popular segment: cost must fall as gamma rises.
        let best =
            net.segment_ids().max_by(|&a, &b| pref.weight(a).total_cmp(&pref.weight(b))).unwrap();
        assert!(pref.weight(best) > 1.0, "most popular weight should exceed 1");
        let c0 = pref.route_cost(&net, best, 0, 0.0);
        let c1 = pref.route_cost(&net, best, 0, 1.0);
        assert!(c1 < c0);
    }

    #[test]
    fn relative_popularity_normalised() {
        let (net, pref) = setup();
        let max = net.segment_ids().map(|s| pref.relative_popularity(s)).fold(f64::MIN, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        for s in net.segment_ids() {
            let p = pref.relative_popularity(s);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        let net = generate_grid_city(&GridCityConfig::tiny(), &mut StdRng::seed_from_u64(1));
        let a = RoadPreference::generate(&net, &PreferenceConfig::default(), &mut rng_a);
        let b = RoadPreference::generate(&net, &PreferenceConfig::default(), &mut rng_b);
        for s in net.segment_ids() {
            assert_eq!(a.weight(s), b.weight(s));
        }
    }
}
