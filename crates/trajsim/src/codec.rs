//! Binary persistence for trajectory datasets.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "TADT", version u16
//! 5 x split:  u32 count, count x trajectory
//! trajectory: u8 label, u8 time_slot, u32 len, len x u32 segment id
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tad_roadnet::SegmentId;

use crate::dataset::{CityDatasets, Label, Trajectory};

const MAGIC: &[u8; 4] = b"TADT";
const VERSION: u16 = 1;

/// Errors produced when decoding serialized datasets.
#[derive(Debug, PartialEq, Eq)]
pub enum DataCodecError {
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Input ended before the named field could be read.
    Truncated(&'static str),
    /// Unknown label byte.
    BadLabel(u8),
}

impl std::fmt::Display for DataCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataCodecError::BadMagic => write!(f, "bad magic bytes"),
            DataCodecError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DataCodecError::Truncated(what) => write!(f, "truncated input at {what}"),
            DataCodecError::BadLabel(l) => write!(f, "unknown label {l}"),
        }
    }
}

impl std::error::Error for DataCodecError {}

/// Serialises all five splits of a city's datasets.
pub fn datasets_to_bytes(data: &CityDatasets) -> Bytes {
    let mut buf = BytesMut::with_capacity(1024);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    for split in [&data.train, &data.test_id, &data.test_ood, &data.detour, &data.switch] {
        put_split(&mut buf, split);
    }
    buf.freeze()
}

/// Deserialises datasets written by [`datasets_to_bytes`].
pub fn datasets_from_bytes(mut bytes: Bytes) -> Result<CityDatasets, DataCodecError> {
    if bytes.remaining() < 6 {
        return Err(DataCodecError::Truncated("header"));
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DataCodecError::BadMagic);
    }
    let version = bytes.get_u16_le();
    if version != VERSION {
        return Err(DataCodecError::BadVersion(version));
    }
    let train = get_split(&mut bytes)?;
    let test_id = get_split(&mut bytes)?;
    let test_ood = get_split(&mut bytes)?;
    let detour = get_split(&mut bytes)?;
    let switch = get_split(&mut bytes)?;
    Ok(CityDatasets { train, test_id, test_ood, detour, switch })
}

fn put_split(buf: &mut BytesMut, split: &[Trajectory]) {
    buf.put_u32_le(split.len() as u32);
    for t in split {
        buf.put_u8(t.label.as_u8());
        buf.put_u8(t.time_slot);
        buf.put_u32_le(t.segments.len() as u32);
        for s in &t.segments {
            buf.put_u32_le(s.0);
        }
    }
}

fn get_split(bytes: &mut Bytes) -> Result<Vec<Trajectory>, DataCodecError> {
    if bytes.remaining() < 4 {
        return Err(DataCodecError::Truncated("split count"));
    }
    let count = bytes.get_u32_le() as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if bytes.remaining() < 6 {
            return Err(DataCodecError::Truncated("trajectory header"));
        }
        let label = bytes.get_u8();
        let label = Label::from_u8(label).ok_or(DataCodecError::BadLabel(label))?;
        let time_slot = bytes.get_u8();
        let len = bytes.get_u32_le() as usize;
        if bytes.remaining() < len * 4 {
            return Err(DataCodecError::Truncated("segments"));
        }
        let segments = (0..len).map(|_| SegmentId(bytes.get_u32_le())).collect();
        out.push(Trajectory { segments, time_slot, label });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_city, CityConfig};

    #[test]
    fn roundtrip_preserves_all_splits() {
        let city = generate_city(&CityConfig::test_scale(12));
        let restored = datasets_from_bytes(datasets_to_bytes(&city.data)).unwrap();
        assert_eq!(restored.train, city.data.train);
        assert_eq!(restored.test_id, city.data.test_id);
        assert_eq!(restored.test_ood, city.data.test_ood);
        assert_eq!(restored.detour, city.data.detour);
        assert_eq!(restored.switch, city.data.switch);
    }

    #[test]
    fn truncation_detected() {
        let city = generate_city(&CityConfig::test_scale(13));
        let data = datasets_to_bytes(&city.data);
        let cut = data.slice(0..data.len() / 2);
        assert!(matches!(datasets_from_bytes(cut), Err(DataCodecError::Truncated(_))));
    }

    #[test]
    fn bad_magic_detected() {
        let mut raw = datasets_to_bytes(&CityDatasets::default()).to_vec();
        raw[2] = b'!';
        assert!(matches!(datasets_from_bytes(Bytes::from(raw)), Err(DataCodecError::BadMagic)));
    }

    #[test]
    fn empty_datasets_roundtrip() {
        let empty = CityDatasets::default();
        let restored = datasets_from_bytes(datasets_to_bytes(&empty)).unwrap();
        assert!(restored.train.is_empty() && restored.switch.is_empty());
    }
}
