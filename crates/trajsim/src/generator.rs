//! End-to-end city + dataset generation.
//!
//! One [`CityConfig`] fully determines a synthetic city and its datasets
//! (seeded), mirroring the paper's setup: sample popular candidate SD pairs,
//! record many trajectories per pair, split them half train / half ID test,
//! record trajectories of fresh uniformly-sampled SD pairs as the OOD test
//! set, and generate Detour/Switch anomaly sets from in-distribution
//! trajectories.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use tad_roadnet::grid::{generate_grid_city, GridCityConfig};
use tad_roadnet::RoadNetwork;

use crate::anomaly::{make_detour, make_switch, AnomalyConfig};
use crate::dataset::{CityDatasets, SdPair, Trajectory};
use crate::preference::{PreferenceConfig, RoadPreference};
use crate::routing::{choose_route, RouteChoiceConfig};
use crate::sd::{sample_candidate_pairs, sample_ood_pairs, SdConfig};

/// Full configuration of a synthetic city and its datasets.
#[derive(Clone, Debug)]
pub struct CityConfig {
    /// Display name ("xian-s", "chengdu-s", ...).
    pub name: String,
    /// Road-network shape.
    pub grid: GridCityConfig,
    /// Hidden-confounder field.
    pub pref: PreferenceConfig,
    /// Route-choice model.
    pub route: RouteChoiceConfig,
    /// SD sampling.
    pub sd: SdConfig,
    /// Anomaly generation.
    pub anomaly: AnomalyConfig,
    /// Number of popular candidate SD pairs (the paper uses 100).
    pub num_candidate_pairs: usize,
    /// Trajectories recorded per candidate pair (half train, half ID test).
    pub trajs_per_pair: usize,
    /// Number of unseen (OOD) SD pairs.
    pub num_ood_pairs: usize,
    /// Trajectories recorded per OOD pair.
    pub trajs_per_ood_pair: usize,
    /// Anomalies generated per strategy (Detour and Switch each).
    pub num_anomalies: usize,
    /// Master seed; every derived stream is deterministic given it.
    pub seed: u64,
}

impl CityConfig {
    /// A laptop-scale city used by unit and integration tests.
    pub fn test_scale(seed: u64) -> Self {
        CityConfig {
            name: format!("test-city-{seed}"),
            grid: GridCityConfig { width: 8, height: 8, ..GridCityConfig::tiny() },
            pref: PreferenceConfig { num_pois: 3, ..Default::default() },
            route: RouteChoiceConfig::default(),
            sd: SdConfig { min_segments: 6, ..Default::default() },
            anomaly: AnomalyConfig::default(),
            num_candidate_pairs: 12,
            trajs_per_pair: 8,
            num_ood_pairs: 12,
            trajs_per_ood_pair: 2,
            num_anomalies: 24,
            seed,
        }
    }
}

/// A generated city: network, ground-truth confounder, SD pools, datasets.
#[derive(Clone, Debug)]
pub struct City {
    /// Display name.
    pub name: String,
    /// The road network (its segment count is the model vocabulary).
    pub net: RoadNetwork,
    /// Ground-truth road preference (never shown to the models).
    pub pref: RoadPreference,
    /// In-distribution SD pairs.
    pub candidate_pairs: Vec<SdPair>,
    /// Out-of-distribution SD pairs.
    pub ood_pairs: Vec<SdPair>,
    /// Train / test splits and anomaly sets.
    pub data: CityDatasets,
}

/// Generates a city and all of its datasets from a config. Deterministic in
/// `cfg.seed`.
pub fn generate_city(cfg: &CityConfig) -> City {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let net = generate_grid_city(&cfg.grid, &mut rng);
    let pref = RoadPreference::generate(&net, &cfg.pref, &mut rng);

    let candidate_pairs =
        sample_candidate_pairs(&net, &pref, cfg.num_candidate_pairs, &cfg.sd, &mut rng);
    assert!(
        !candidate_pairs.is_empty(),
        "no candidate SD pairs found; relax SdConfig::min_segments or grow the grid"
    );
    let ood_pairs = sample_ood_pairs(&net, cfg.num_ood_pairs, &cfg.sd, &candidate_pairs, &mut rng);

    let num_slots = pref.num_time_slots();
    let record = |pair: &SdPair, rng: &mut StdRng| -> Option<Trajectory> {
        let slot = rng.gen_range(0..num_slots);
        let route = choose_route(&net, &pref, pair.source, pair.dest, slot, &cfg.route, rng)?;
        if route.len() < cfg.sd.min_segments / 2 {
            return None;
        }
        Some(Trajectory::normal(route, slot as u8))
    };

    let mut train = Vec::new();
    let mut test_id = Vec::new();
    for pair in &candidate_pairs {
        for i in 0..cfg.trajs_per_pair {
            if let Some(t) = record(pair, &mut rng) {
                if i % 2 == 0 {
                    train.push(t);
                } else {
                    test_id.push(t);
                }
            }
        }
    }

    let mut test_ood = Vec::new();
    for pair in &ood_pairs {
        for _ in 0..cfg.trajs_per_ood_pair {
            if let Some(t) = record(pair, &mut rng) {
                test_ood.push(t);
            }
        }
    }

    // Pool all recorded in-distribution trajectories by SD pair for Switch.
    let mut by_sd: HashMap<SdPair, Vec<&Trajectory>> = HashMap::new();
    for t in train.iter().chain(test_id.iter()) {
        by_sd.entry(t.sd_pair()).or_default().push(t);
    }

    let mut detour = Vec::new();
    let mut switch = Vec::new();
    if !test_id.is_empty() {
        let mut attempts = 0usize;
        let budget = cfg.num_anomalies * 20;
        while detour.len() < cfg.num_anomalies && attempts < budget {
            attempts += 1;
            let base = &test_id[rng.gen_range(0..test_id.len())];
            if let Some(a) = make_detour(&net, base, &cfg.anomaly, &mut rng) {
                detour.push(a);
            }
        }
        attempts = 0;
        while switch.len() < cfg.num_anomalies && attempts < budget {
            attempts += 1;
            let base = &test_id[rng.gen_range(0..test_id.len())];
            let pool = by_sd.get(&base.sd_pair()).map(Vec::as_slice).unwrap_or(&[]);
            if let Some(a) = make_switch(&net, base, pool, &cfg.anomaly, &mut rng) {
                switch.push(a);
            }
        }
    }

    City {
        name: cfg.name.clone(),
        net,
        pref,
        candidate_pairs,
        ood_pairs,
        data: CityDatasets { train, test_id, test_ood, detour, switch },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Label;

    #[test]
    fn generated_city_has_all_splits() {
        let city = generate_city(&CityConfig::test_scale(7));
        let d = &city.data;
        assert!(!d.train.is_empty(), "train empty: {}", d.summary());
        assert!(!d.test_id.is_empty());
        assert!(!d.test_ood.is_empty());
        assert!(!d.detour.is_empty());
        assert!(!d.switch.is_empty());
    }

    #[test]
    fn all_trajectories_are_valid_walks() {
        let city = generate_city(&CityConfig::test_scale(8));
        let d = &city.data;
        for t in
            d.train.iter().chain(&d.test_id).chain(&d.test_ood).chain(&d.detour).chain(&d.switch)
        {
            assert!(city.net.is_connected_path(&t.segments), "broken walk");
            assert!(!t.segments.is_empty());
            assert!((t.time_slot as usize) < city.pref.num_time_slots());
        }
    }

    #[test]
    fn labels_match_splits() {
        let city = generate_city(&CityConfig::test_scale(9));
        assert!(city.data.train.iter().all(|t| t.label == Label::Normal));
        assert!(city.data.test_ood.iter().all(|t| t.label == Label::Normal));
        assert!(city.data.detour.iter().all(|t| t.label == Label::Detour));
        assert!(city.data.switch.iter().all(|t| t.label == Label::Switch));
    }

    #[test]
    fn train_and_id_share_sd_pairs_ood_does_not() {
        let city = generate_city(&CityConfig::test_scale(10));
        let train_pairs: std::collections::HashSet<_> =
            city.data.train.iter().map(|t| t.sd_pair()).collect();
        // Every ID-test SD pair was seen in training.
        for t in &city.data.test_id {
            assert!(train_pairs.contains(&t.sd_pair()), "ID pair unseen in train");
        }
        // No OOD SD pair was seen in training.
        for t in &city.data.test_ood {
            assert!(!train_pairs.contains(&t.sd_pair()), "OOD pair leaked into train");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_city(&CityConfig::test_scale(11));
        let b = generate_city(&CityConfig::test_scale(11));
        assert_eq!(a.data.train, b.data.train);
        assert_eq!(a.data.detour, b.data.detour);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_city(&CityConfig::test_scale(1));
        let b = generate_city(&CityConfig::test_scale(2));
        assert_ne!(a.data.train, b.data.train);
    }
}
