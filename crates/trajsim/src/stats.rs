//! Dataset statistics: the quantities that determine whether a generated
//! city is in the "paper regime" (dense coverage of the popular region,
//! homogeneous lengths, genuine OOD shift). Used by the `diagnose` tool and
//! reported in EXPERIMENTS.md.

use std::collections::HashMap;

use tad_roadnet::RoadNetwork;

use crate::dataset::Trajectory;

/// Per-split summary statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct SplitStats {
    /// Number of trajectories.
    pub count: usize,
    /// Mean segments per trajectory.
    pub mean_len: f64,
    /// Minimum trajectory length.
    pub min_len: usize,
    /// Maximum trajectory length.
    pub max_len: usize,
    /// Number of distinct SD pairs.
    pub distinct_sd_pairs: usize,
    /// Number of distinct segments visited.
    pub distinct_segments: usize,
}

/// Computes summary statistics for one split.
pub fn split_stats(split: &[Trajectory]) -> SplitStats {
    let mut sd = std::collections::HashSet::new();
    let mut segs = std::collections::HashSet::new();
    let mut total = 0usize;
    let mut min_len = usize::MAX;
    let mut max_len = 0usize;
    for t in split {
        total += t.len();
        min_len = min_len.min(t.len());
        max_len = max_len.max(t.len());
        if !t.is_empty() {
            sd.insert(t.sd_pair());
        }
        segs.extend(t.segments.iter().copied());
    }
    SplitStats {
        count: split.len(),
        mean_len: if split.is_empty() { 0.0 } else { total as f64 / split.len() as f64 },
        min_len: if split.is_empty() { 0 } else { min_len },
        max_len,
        distinct_sd_pairs: sd.len(),
        distinct_segments: segs.len(),
    }
}

/// Per-segment visit counts over a split (the empirical popularity the
/// RP-VAE must learn).
pub fn segment_frequencies(split: &[Trajectory]) -> HashMap<u32, usize> {
    let mut freq = HashMap::new();
    for t in split {
        for s in &t.segments {
            *freq.entry(s.0).or_insert(0usize) += 1;
        }
    }
    freq
}

/// Coverage of a split over the network: fraction of segments visited at
/// least once.
pub fn coverage(net: &RoadNetwork, split: &[Trajectory]) -> f64 {
    if net.num_segments() == 0 {
        return 0.0;
    }
    let freq = segment_frequencies(split);
    freq.len() as f64 / net.num_segments() as f64
}

/// Fraction of the segments of `eval_split` that never occur in
/// `reference` — the "unseen share" that drives OOD behaviour.
pub fn unseen_share(reference: &[Trajectory], eval_split: &[Trajectory]) -> f64 {
    let seen = segment_frequencies(reference);
    let mut total = 0usize;
    let mut unseen = 0usize;
    for t in eval_split {
        for s in &t.segments {
            total += 1;
            if !seen.contains_key(&s.0) {
                unseen += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        unseen as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_city, CityConfig};
    use tad_roadnet::SegmentId;

    fn traj(ids: &[u32]) -> Trajectory {
        Trajectory::normal(ids.iter().map(|&i| SegmentId(i)).collect(), 0)
    }

    #[test]
    fn split_stats_basics() {
        let split = vec![traj(&[0, 1, 2]), traj(&[0, 1, 2, 3, 4])];
        let s = split_stats(&split);
        assert_eq!(s.count, 2);
        assert_eq!(s.min_len, 3);
        assert_eq!(s.max_len, 5);
        assert!((s.mean_len - 4.0).abs() < 1e-12);
        assert_eq!(s.distinct_segments, 5);
        assert_eq!(s.distinct_sd_pairs, 2); // (0,2) and (0,4)
    }

    #[test]
    fn empty_split_stats() {
        let s = split_stats(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_len, 0.0);
        assert_eq!(s.min_len, 0);
    }

    #[test]
    fn frequencies_count_repeats() {
        let split = vec![traj(&[7, 7, 8])];
        let f = segment_frequencies(&split);
        assert_eq!(f[&7], 2);
        assert_eq!(f[&8], 1);
    }

    #[test]
    fn unseen_share_bounds_and_values() {
        let reference = vec![traj(&[0, 1, 2])];
        assert_eq!(unseen_share(&reference, &[traj(&[0, 1])]), 0.0);
        assert_eq!(unseen_share(&reference, &[traj(&[8, 9])]), 1.0);
        assert!((unseen_share(&reference, &[traj(&[0, 9])]) - 0.5).abs() < 1e-12);
        assert_eq!(unseen_share(&reference, &[]), 0.0);
    }

    #[test]
    fn generated_city_ood_split_has_more_unseen() {
        let city = generate_city(&CityConfig::test_scale(820));
        let id_unseen = unseen_share(&city.data.train, &city.data.test_id);
        let ood_unseen = unseen_share(&city.data.train, &city.data.test_ood);
        assert!(
            ood_unseen > id_unseen,
            "OOD must traverse more unseen segments: {ood_unseen:.3} vs {id_unseen:.3}"
        );
        let cov = coverage(&city.net, &city.data.train);
        assert!(cov > 0.2 && cov <= 1.0, "coverage {cov}");
    }
}
