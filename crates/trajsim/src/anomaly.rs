//! Anomaly generation on the road network (paper §VI-A2).
//!
//! The paper's two strategies, adapted verbatim to segment walks:
//!
//! * **Detour** — "choose three indexes `i < k < j`, temporarily delete
//!   `t_k` from the road network, and apply Dijkstra to obtain the shortest
//!   path from `t_i` to `t_j`; replace the sub-trajectory with this path."
//! * **Switch** — "find the trajectories of the same SD pair, sample a
//!   trajectory `t'` with a low similarity score
//!   (`|t' ∩ t| / |t' ∪ t|`), then switch from `t` to `t'`."

use rand::Rng;
use tad_roadnet::dijkstra::segment_shortest_path;
use tad_roadnet::kpaths::k_shortest_paths;
use tad_roadnet::{RoadNetwork, SegmentId};

use crate::dataset::{Label, Trajectory};

/// Parameters of the anomaly generators.
#[derive(Clone, Debug)]
pub struct AnomalyConfig {
    /// Minimum length ratio of the rerouted section over the replaced one
    /// ("appropriate detour distance").
    pub detour_min_ratio: f64,
    /// Maximum accepted ratio (extremely long reroutes are discarded as
    /// unrealistic).
    pub detour_max_ratio: f64,
    /// Random `(i, k, j)` draws before giving up on a trajectory.
    pub max_attempts: usize,
    /// Maximum Jaccard similarity for an acceptable switch target `t'`.
    pub switch_similarity_max: f64,
    /// Alternatives requested from Yen's algorithm when no recorded
    /// dissimilar trajectory exists for the SD pair.
    pub switch_fallback_k: usize,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            detour_min_ratio: 1.15,
            detour_max_ratio: 2.0,
            max_attempts: 60,
            switch_similarity_max: 0.55,
            switch_fallback_k: 6,
        }
    }
}

/// Creates a Detour anomaly from `traj`, or `None` if no acceptable detour
/// exists within the attempt budget.
pub fn make_detour<R: Rng + ?Sized>(
    net: &RoadNetwork,
    traj: &Trajectory,
    cfg: &AnomalyConfig,
    rng: &mut R,
) -> Option<Trajectory> {
    let n = traj.segments.len();
    if n < 5 {
        return None;
    }
    for _ in 0..cfg.max_attempts {
        // 0-based indexes with i < k < j; the rerouted section is capped at
        // half the trajectory so the total length stays realistic
        // ("appropriate detour distance").
        let i = rng.gen_range(0..n - 2);
        let j_hi = (i + 2 + n / 2).min(n);
        let j = rng.gen_range(i + 2..j_hi.max(i + 3));
        let k = rng.gen_range(i + 1..j);
        let banned = traj.segments[k];
        let from = traj.segments[i];
        let to = traj.segments[j];
        let Some(reroute) = segment_shortest_path(net, from, to, |s| {
            if s == banned {
                None
            } else {
                Some(net.segment(s).length)
            }
        }) else {
            continue;
        };
        let original = &traj.segments[i..=j];
        if reroute.segments == original {
            continue;
        }
        let orig_len = net.path_length(original);
        let ratio = reroute.cost / orig_len;
        if ratio < cfg.detour_min_ratio || ratio > cfg.detour_max_ratio {
            continue;
        }
        let mut segments = traj.segments[..i].to_vec();
        segments.extend_from_slice(&reroute.segments);
        segments.extend_from_slice(&traj.segments[j + 1..]);
        if !net.is_connected_path(&segments) {
            continue;
        }
        return Some(Trajectory { segments, time_slot: traj.time_slot, label: Label::Detour });
    }
    None
}

/// Creates a Switch anomaly from `traj`.
///
/// `pool` holds recorded trajectories with the *same SD pair*; a dissimilar
/// one is sampled as the target route `t'`. When no recorded trajectory is
/// dissimilar enough, Yen's k-shortest paths provide a synthetic
/// alternative route (so Switch anomalies exist even for sparse SD pairs).
pub fn make_switch<R: Rng + ?Sized>(
    net: &RoadNetwork,
    traj: &Trajectory,
    pool: &[&Trajectory],
    cfg: &AnomalyConfig,
    rng: &mut R,
) -> Option<Trajectory> {
    let n = traj.segments.len();
    if n < 5 {
        return None;
    }

    // Candidate alternative routes: recorded dissimilar trajectories first.
    let mut alternatives: Vec<Vec<SegmentId>> = pool
        .iter()
        .filter(|t| t.segments != traj.segments && traj.jaccard(t) <= cfg.switch_similarity_max)
        .map(|t| t.segments.clone())
        .collect();
    if alternatives.is_empty() {
        let sd = traj.sd_pair();
        let traj_set: std::collections::HashSet<_> = traj.segments.iter().copied().collect();
        alternatives = k_shortest_paths(net, sd.source, sd.dest, cfg.switch_fallback_k, |s| {
            Some(net.segment(s).length)
        })
        .into_iter()
        .map(|p| p.segments)
        .filter(|p| {
            let inter = p.iter().filter(|s| traj_set.contains(s)).count();
            let union = p.len() + traj_set.len() - inter;
            p != &traj.segments && (inter as f64 / union as f64) <= cfg.switch_similarity_max
        })
        .collect();
    }
    if alternatives.is_empty() {
        return None;
    }

    for _ in 0..cfg.max_attempts {
        let alt = &alternatives[rng.gen_range(0..alternatives.len())];
        // Switch point: partway through the observed route.
        let i = rng.gen_range(n / 4..(n / 2).max(n / 4 + 1));
        let from = traj.segments[i];
        // Rejoin t' at a position that keeps forward progress.
        let j_min = (alt.len() / 3).min(alt.len() - 1);
        let j = rng.gen_range(j_min..alt.len());
        let to = alt[j];
        if to == from {
            continue;
        }
        let Some(bridge) = segment_shortest_path(net, from, to, |s| Some(net.segment(s).length))
        else {
            continue;
        };
        let mut segments = traj.segments[..i].to_vec();
        segments.extend_from_slice(&bridge.segments);
        segments.extend_from_slice(&alt[j + 1..]);
        // Reject degenerate results: too similar to the original or broken.
        if !net.is_connected_path(&segments) || segments.len() < 4 {
            continue;
        }
        let candidate = Trajectory { segments, time_slot: traj.time_slot, label: Label::Switch };
        if candidate.segments == traj.segments {
            continue;
        }
        if candidate.sd_pair() != traj.sd_pair() {
            continue;
        }
        return Some(candidate);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::{PreferenceConfig, RoadPreference};
    use crate::routing::{choose_route, RouteChoiceConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tad_roadnet::grid::{generate_grid_city, GridCityConfig};
    use tad_roadnet::NodeId;

    fn setup() -> (RoadNetwork, RoadPreference, StdRng) {
        let mut rng = StdRng::seed_from_u64(40);
        let net = generate_grid_city(
            &GridCityConfig {
                width: 8,
                height: 8,
                missing_edge_prob: 0.0,
                ..GridCityConfig::tiny()
            },
            &mut rng,
        );
        let pref = RoadPreference::generate(&net, &PreferenceConfig::default(), &mut rng);
        (net, pref, rng)
    }

    fn long_trajectory(net: &RoadNetwork, pref: &RoadPreference, rng: &mut StdRng) -> Trajectory {
        let s = net.out_segments(NodeId(0))[0];
        let d = net.in_segments(NodeId((net.num_nodes() - 1) as u32))[0];
        let route = choose_route(net, pref, s, d, 0, &RouteChoiceConfig::default(), rng).unwrap();
        Trajectory::normal(route, 0)
    }

    #[test]
    fn detour_is_connected_same_sd_and_longer() {
        let (net, pref, mut rng) = setup();
        let t = long_trajectory(&net, &pref, &mut rng);
        let detour = make_detour(&net, &t, &AnomalyConfig::default(), &mut rng).expect("detour");
        assert_eq!(detour.label, Label::Detour);
        assert!(net.is_connected_path(&detour.segments));
        assert_eq!(detour.sd_pair(), t.sd_pair());
        assert_ne!(detour.segments, t.segments);
    }

    #[test]
    fn detour_rejects_short_trajectories() {
        let (net, _, mut rng) = setup();
        let t = Trajectory::normal(vec![SegmentId(0), SegmentId(1)], 0);
        assert!(make_detour(&net, &t, &AnomalyConfig::default(), &mut rng).is_none());
    }

    #[test]
    fn switch_uses_dissimilar_pool_route() {
        let (net, pref, mut rng) = setup();
        let t = long_trajectory(&net, &pref, &mut rng);
        // Build a pool with several diverse routes of the same SD pair.
        let sd = t.sd_pair();
        let pool_owned: Vec<Trajectory> = (0..10)
            .filter_map(|_| {
                choose_route(
                    &net,
                    &pref,
                    sd.source,
                    sd.dest,
                    0,
                    &RouteChoiceConfig { utility_noise: 0.6, ..Default::default() },
                    &mut rng,
                )
                .map(|r| Trajectory::normal(r, 0))
            })
            .collect();
        let pool: Vec<&Trajectory> = pool_owned.iter().collect();
        let switched = make_switch(&net, &t, &pool, &AnomalyConfig::default(), &mut rng);
        if let Some(sw) = switched {
            assert_eq!(sw.label, Label::Switch);
            assert!(net.is_connected_path(&sw.segments));
            assert_eq!(sw.sd_pair(), t.sd_pair());
            assert_ne!(sw.segments, t.segments);
        }
        // (None is acceptable when all sampled routes were too similar, but
        // the fallback below must then succeed.)
    }

    #[test]
    fn switch_falls_back_to_k_paths_with_empty_pool() {
        let (net, pref, mut rng) = setup();
        let t = long_trajectory(&net, &pref, &mut rng);
        let cfg = AnomalyConfig { switch_similarity_max: 0.9, ..Default::default() };
        let switched = make_switch(&net, &t, &[], &cfg, &mut rng).expect("fallback switch");
        assert!(net.is_connected_path(&switched.segments));
        assert_eq!(switched.sd_pair(), t.sd_pair());
    }

    #[test]
    fn anomalies_preserve_time_slot() {
        let (net, pref, mut rng) = setup();
        let mut t = long_trajectory(&net, &pref, &mut rng);
        t.time_slot = 3;
        let detour = make_detour(&net, &t, &AnomalyConfig::default(), &mut rng).unwrap();
        assert_eq!(detour.time_slot, 3);
    }
}
