//! SD-pair sampling: the `E → C` edge of the causal graph.
//!
//! *Candidate* (in-distribution) pairs are drawn with endpoints proportional
//! to segment popularity — "passengers tend to get in cars on
//! parking-friendly paths and their destinations are usually some popular
//! road segments" — so the training distribution of `C` is confounded by
//! `E`. *OOD* pairs are drawn uniformly over segments, producing the unseen,
//! popularity-agnostic SD pairs of the paper's out-of-distribution split.

use rand::Rng;
use tad_roadnet::dijkstra::segment_shortest_path;
use tad_roadnet::{RoadNetwork, SegmentId};

use crate::dataset::SdPair;
use crate::preference::RoadPreference;

/// Configuration for SD-pair sampling.
#[derive(Clone, Debug)]
pub struct SdConfig {
    /// Exponent on popularity when sampling candidate endpoints
    /// (`E → C` strength; 0 removes the confounding of `C`).
    pub popularity_bias: f64,
    /// Minimum trip length in segments (the paper filters trips `< 30`).
    pub min_segments: usize,
    /// Maximum trip length in segments (0 disables). Keeping ID and OOD
    /// length distributions comparable matters: the debiasing scaling
    /// factor sums over segments, so wildly different lengths would
    /// confound the evaluation.
    pub max_segments: usize,
    /// Give up after this many rejected draws per requested pair.
    pub max_attempts: usize,
}

impl Default for SdConfig {
    fn default() -> Self {
        SdConfig { popularity_bias: 1.8, min_segments: 10, max_segments: 26, max_attempts: 200 }
    }
}

/// Samples `count` distinct candidate SD pairs with popularity-biased
/// endpoints (`E → C`).
pub fn sample_candidate_pairs<R: Rng + ?Sized>(
    net: &RoadNetwork,
    pref: &RoadPreference,
    count: usize,
    cfg: &SdConfig,
    rng: &mut R,
) -> Vec<SdPair> {
    let weights: Vec<f64> =
        net.segment_ids().map(|s| pref.weight(s).powf(cfg.popularity_bias)).collect();
    sample_pairs(net, count, cfg, rng, |rng| weighted_draw(&weights, rng))
}

/// Samples `count` distinct OOD SD pairs with uniform endpoints
/// (the distribution shift of the paper's OOD evaluation).
pub fn sample_ood_pairs<R: Rng + ?Sized>(
    net: &RoadNetwork,
    count: usize,
    cfg: &SdConfig,
    exclude: &[SdPair],
    rng: &mut R,
) -> Vec<SdPair> {
    let n = net.num_segments();
    let mut pairs = sample_pairs(net, count + exclude.len(), cfg, rng, |rng| rng.gen_range(0..n));
    pairs.retain(|p| !exclude.contains(p));
    pairs.truncate(count);
    pairs
}

fn sample_pairs<R: Rng + ?Sized>(
    net: &RoadNetwork,
    count: usize,
    cfg: &SdConfig,
    rng: &mut R,
    mut draw: impl FnMut(&mut R) -> usize,
) -> Vec<SdPair> {
    let mut pairs = Vec::with_capacity(count);
    let mut attempts = 0usize;
    let budget = cfg.max_attempts * count.max(1);
    while pairs.len() < count && attempts < budget {
        attempts += 1;
        let s = SegmentId(draw(rng) as u32);
        let d = SegmentId(draw(rng) as u32);
        if s == d {
            continue;
        }
        let pair = SdPair { source: s, dest: d };
        if pairs.contains(&pair) {
            continue;
        }
        // Require a route of at least `min_segments` hops; shortest-path
        // length lower-bounds every sampled route's hop count only loosely,
        // so check the actual shortest hop count.
        match segment_shortest_path(net, s, d, |seg| Some(net.segment(seg).length)) {
            Some(path)
                if path.segments.len() >= cfg.min_segments
                    && (cfg.max_segments == 0 || path.segments.len() <= cfg.max_segments) =>
            {
                pairs.push(pair)
            }
            _ => {}
        }
    }
    pairs
}

/// Draws an index proportional to `weights`.
fn weighted_draw<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::{PreferenceConfig, RoadPreference};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tad_roadnet::grid::{generate_grid_city, GridCityConfig};

    fn setup() -> (RoadNetwork, RoadPreference) {
        let mut rng = StdRng::seed_from_u64(30);
        let net = generate_grid_city(&GridCityConfig::tiny(), &mut rng);
        let pref = RoadPreference::generate(&net, &PreferenceConfig::default(), &mut rng);
        (net, pref)
    }

    #[test]
    fn candidate_pairs_distinct_and_long_enough() {
        let (net, pref) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = SdConfig { min_segments: 6, ..Default::default() };
        let pairs = sample_candidate_pairs(&net, &pref, 20, &cfg, &mut rng);
        assert_eq!(pairs.len(), 20);
        let unique: std::collections::HashSet<_> = pairs.iter().collect();
        assert_eq!(unique.len(), pairs.len());
        for p in &pairs {
            let path =
                segment_shortest_path(&net, p.source, p.dest, |s| Some(net.segment(s).length))
                    .unwrap();
            assert!(path.segments.len() >= 6);
        }
    }

    #[test]
    fn ood_pairs_exclude_candidates() {
        let (net, pref) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = SdConfig { min_segments: 6, ..Default::default() };
        let candidates = sample_candidate_pairs(&net, &pref, 10, &cfg, &mut rng);
        let ood = sample_ood_pairs(&net, 15, &cfg, &candidates, &mut rng);
        assert!(!ood.is_empty());
        for p in &ood {
            assert!(!candidates.contains(p), "OOD pair duplicates a candidate");
        }
    }

    #[test]
    fn popularity_bias_shifts_endpoint_distribution() {
        let (net, pref) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let mean_weight = |pairs: &[SdPair]| -> f64 {
            pairs.iter().flat_map(|p| [pref.weight(p.source), pref.weight(p.dest)]).sum::<f64>()
                / (2 * pairs.len()) as f64
        };
        let cfg = SdConfig { min_segments: 5, ..Default::default() };
        let biased = sample_candidate_pairs(&net, &pref, 40, &cfg, &mut rng);
        let uniform = sample_ood_pairs(&net, 40, &cfg, &[], &mut rng);
        assert!(
            mean_weight(&biased) > mean_weight(&uniform),
            "candidate endpoints should be more popular on average"
        );
    }

    #[test]
    fn weighted_draw_respects_weights() {
        let weights = [0.0, 0.0, 5.0, 0.0];
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            assert_eq!(weighted_draw(&weights, &mut rng), 2);
        }
    }

    #[test]
    fn impossible_min_length_yields_empty() {
        let (net, pref) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = SdConfig { min_segments: 10_000, max_attempts: 5, ..Default::default() };
        let pairs = sample_candidate_pairs(&net, &pref, 3, &cfg, &mut rng);
        assert!(pairs.is_empty());
    }
}
