//! Minimal offline stand-in for the `rand` crate (0.8-compatible surface).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the subset of the `rand` API the workspace uses:
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256** seeded through SplitMix64 — not `rand`'s ChaCha12, so
//! streams differ from upstream `rand`, but every use in this workspace only
//! requires a deterministic, statistically sound stream.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding from a `u64`, as used throughout the workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Maps a raw word to `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps a raw word to `[0, 1)` with 24 bits of precision.
#[inline]
fn unit_f32(word: u64) -> f32 {
    (word >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// A range type that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + (self.end - self.start) * unit_f32(rng.next_u64());
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** generator (Blackman & Vigna), seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut next = || {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers driven by an [`Rng`].
    pub trait SliceRandom {
        type Item;

        /// Fisher-Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-2.0f64..0.5);
            assert!((-2.0..0.5).contains(&f));
            let g: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
            assert!(g > 0.0 && g < 1.0);
        }
    }

    #[test]
    fn signed_ranges_span_zero() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_neg = false;
        let mut seen_pos = false;
        for _ in 0..1000 {
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x), "{x}");
            seen_neg |= x < 0;
            seen_pos |= x >= 0;
            let y = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&y), "{y}");
        }
        assert!(seen_neg && seen_pos);
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((4_000..6_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
