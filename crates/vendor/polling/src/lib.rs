//! Offline vendored stand-in for the subset of `polling` this workspace
//! uses: a readiness-based OS event queue over raw file descriptors.
//!
//! The build environment has no crates.io access, so this crate wraps the
//! kernel interfaces directly with hand-rolled `extern "C"` declarations —
//! epoll(7) on Linux, poll(2) on other Unixes — with no dependency on
//! `libc`. Two deliberate divergences from the real `polling` crate, both
//! matching how this workspace drives it:
//!
//! * Registrations are **level-triggered and persistent**, not oneshot:
//!   once a descriptor is added with an interest set, it keeps reporting
//!   readiness every [`Poller::wait`] until [`Poller::modify`] or
//!   [`Poller::delete`] changes that. Callers therefore only touch the
//!   registration when their interest actually changes (e.g. a connection
//!   gains or drains a write backlog).
//! * Error/hangup conditions are folded into readiness: a closed or
//!   errored descriptor reports as readable (and writable, if write
//!   interest was registered), so the owner discovers the condition from
//!   the failing `read`/`write` it performs next. There is no separate
//!   error event.
//!
//! [`Poller::notify`] is a cross-thread waker: it makes a concurrent (or
//! the next) `wait` return early. Wakes are deduplicated with an atomic
//! flag so arbitrarily many `notify` calls between two `wait`s cost at
//! most one syscall.

#![deny(missing_docs)]

use std::io;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// The readiness interest attached to a registration, and the readiness
/// actually observed for one descriptor in one [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier echoed back on every readiness report.
    /// `usize::MAX` is reserved for the poller's internal waker.
    pub key: usize,
    /// Interest in (or observation of) read readiness.
    pub readable: bool,
    /// Interest in (or observation of) write readiness.
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Event {
        Event { key, readable: true, writable: false }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Event {
        Event { key, readable: false, writable: true }
    }

    /// Interest in both read and write readiness.
    pub fn all(key: usize) -> Event {
        Event { key, readable: true, writable: true }
    }

    /// A registration with no active interest (kept registered, reports
    /// nothing until modified).
    pub fn none(key: usize) -> Event {
        Event { key, readable: false, writable: false }
    }
}

/// Reserved key reporting the poller's internal waker; never surfaced to
/// callers and rejected by [`Poller::add`].
pub const NOTIFY_KEY: usize = usize::MAX;

/// A buffer of readiness events filled by [`Poller::wait`].
#[derive(Default)]
pub struct Events {
    inner: Vec<Event>,
}

impl Events {
    /// An empty, reusable event buffer.
    pub fn new() -> Events {
        Events::default()
    }

    /// Iterates the events observed by the most recent `wait`.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.inner.iter().copied()
    }

    /// Number of events observed by the most recent `wait`.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the most recent `wait` observed no events.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    fn clear(&mut self) {
        self.inner.clear();
    }

    fn push(&mut self, ev: Event) {
        self.inner.push(ev);
    }
}

/// A readiness-based OS event queue. `Send + Sync`: registration changes
/// and `notify` may race freely with a `wait` on another thread (epoll and
/// poll both permit this; the fallback backend serialises its bookkeeping
/// internally).
pub struct Poller {
    sys: sys::Backend,
    /// Dedup flag for `notify`: set when a wake is pending, consumed at
    /// the start of each `wait` (which then refuses to block, because the
    /// pending wake's waker write may already have been drained).
    notified: AtomicBool,
}

impl Poller {
    /// Creates a new poller with its internal waker already registered.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { sys: sys::Backend::new()?, notified: AtomicBool::new(false) })
    }

    /// Registers a descriptor under `interest.key`. The registration is
    /// level-triggered and persists until [`Poller::delete`].
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        if interest.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key reserved for the poller's waker",
            ));
        }
        self.sys.add(source.as_raw_fd(), interest)
    }

    /// Replaces the interest set of an already-registered descriptor.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        if interest.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key reserved for the poller's waker",
            ));
        }
        self.sys.modify(source.as_raw_fd(), interest)
    }

    /// Removes a descriptor's registration. Must be called before the
    /// descriptor is closed.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.sys.delete(source.as_raw_fd())
    }

    /// Blocks until at least one registered descriptor is ready, a
    /// [`Poller::notify`] lands, or `timeout` elapses (`None` blocks
    /// indefinitely). Returns the number of readiness events written into
    /// `events` (0 on timeout or bare notify). `EINTR` is retried
    /// internally.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        // Consume the dedup flag *before* the kernel wait: any notify
        // from this point on sees `false` and performs a real waker
        // write, so it either interrupts this wait or stays queued in the
        // waker for the next one. (Clearing after the wait would let a
        // notify landing between the backend's waker drain and the store
        // be absorbed by the swap yet wiped by the store — a lost wake.)
        //
        // If the flag was set, a notify landed since the last consume —
        // but its waker write may already have been drained by the
        // previous wait's return. The two cases are indistinguishable
        // here, so don't block: poll readiness and return. A stale flag
        // costs one spurious early return; a deduped-but-undelivered
        // notify would cost a lost wake. Invariant: flag set ⇒ the next
        // wait does not block, so no notify is ever lost.
        let pending = self.notified.swap(false, Ordering::SeqCst);
        let timeout = if pending { Some(Duration::ZERO) } else { timeout };
        self.sys.wait(events, timeout)?;
        Ok(events.len())
    }

    /// Wakes a concurrent (or the next) [`Poller::wait`]. Idempotent
    /// between waits: redundant notifies are absorbed by an atomic flag.
    pub fn notify(&self) -> io::Result<()> {
        if self.notified.swap(true, Ordering::SeqCst) {
            return Ok(());
        }
        self.sys.notify()
    }
}

/// Millisecond timeout for the kernel call: `None` → block forever (-1),
/// sub-millisecond non-zero timeouts round up so a short wait never spins.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            if ms == 0 && d.as_nanos() > 0 {
                1
            } else {
                ms.min(i32::MAX as u128) as i32
            }
        }
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! epoll(7) backend. The waker is an eventfd(2) registered under
    //! [`super::NOTIFY_KEY`]; `wait` drains it and filters it out.

    use super::{timeout_ms, Event, Events, NOTIFY_KEY};
    use std::collections::HashMap;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    // x86-64 packs epoll_event to match the kernel ABI; other
    // architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;
    const EINTR: i32 = 4;

    /// Capacity of the on-stack event buffer handed to `epoll_wait`. One
    /// wait reports at most this many descriptors; level-triggering means
    /// anything beyond it simply surfaces on the next wait.
    const WAIT_BATCH: usize = 256;

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask_of(interest: Event) -> u32 {
        let mut mask = EPOLLRDHUP;
        if interest.readable {
            mask |= EPOLLIN;
        }
        if interest.writable {
            mask |= EPOLLOUT;
        }
        mask
    }

    pub(super) struct Backend {
        epfd: RawFd,
        waker: RawFd,
        /// Registered interest per descriptor. epoll reports
        /// `EPOLLERR`/`EPOLLHUP` regardless of the registered mask, so
        /// the faulted `writable` bit must be gated on whether write
        /// interest was actually registered — matching the poll(2)
        /// fallback and the module contract ("writable, if write
        /// interest was registered").
        interest: Mutex<HashMap<RawFd, Event>>,
    }

    impl Backend {
        pub(super) fn new() -> io::Result<Backend> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let waker = match cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }) {
                Ok(fd) => fd,
                Err(e) => {
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            let backend = Backend { epfd, waker, interest: Mutex::new(HashMap::new()) };
            let mut ev = EpollEvent { events: EPOLLIN, data: NOTIFY_KEY as u64 };
            // On error, Drop closes both fds.
            cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, waker, &mut ev) })?;
            Ok(backend)
        }

        pub(super) fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut ev = EpollEvent { events: mask_of(interest), data: interest.key as u64 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) })?;
            self.interest.lock().expect("epoll registrations").insert(fd, interest);
            Ok(())
        }

        pub(super) fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut ev = EpollEvent { events: mask_of(interest), data: interest.key as u64 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut ev) })?;
            self.interest.lock().expect("epoll registrations").insert(fd, interest);
            Ok(())
        }

        pub(super) fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.interest.lock().expect("epoll registrations").remove(&fd);
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, std::ptr::null_mut()) }).map(drop)
        }

        pub(super) fn wait(
            &self,
            events: &mut Events,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; WAIT_BATCH];
            let n = loop {
                let ret = unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), WAIT_BATCH as i32, timeout_ms(timeout))
                };
                if ret >= 0 {
                    break ret as usize;
                }
                let err = io::Error::last_os_error();
                if err.raw_os_error() != Some(EINTR) {
                    return Err(err);
                }
            };
            for ev in &buf[..n] {
                let (mask, data) = (ev.events, ev.data);
                if data == NOTIFY_KEY as u64 {
                    let mut scratch = [0u8; 8];
                    unsafe { read(self.waker, scratch.as_mut_ptr(), 8) };
                    continue;
                }
                let faulted = mask & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                // Faults are rare: only then is the lock taken to look up
                // whether this key registered write interest.
                let faulted_writable = faulted
                    && mask & EPOLLOUT == 0
                    && self
                        .interest
                        .lock()
                        .expect("epoll registrations")
                        .values()
                        .any(|i| i.key as u64 == data && i.writable);
                events.push(Event {
                    key: data as usize,
                    readable: mask & EPOLLIN != 0 || faulted,
                    writable: mask & EPOLLOUT != 0 || faulted_writable,
                });
            }
            Ok(())
        }

        pub(super) fn notify(&self) -> io::Result<()> {
            let one = 1u64.to_ne_bytes();
            // A full eventfd counter still wakes the waiter; ignore EAGAIN.
            unsafe { write(self.waker, one.as_ptr(), 8) };
            Ok(())
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            unsafe {
                close(self.waker);
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! poll(2) fallback for non-Linux Unixes: registrations live in a
    //! mutex-guarded map and each `wait` rebuilds the pollfd array. The
    //! waker is the read half of a nonblocking socket pair.

    use super::{timeout_ms, Event, Events};
    use std::collections::HashMap;
    use std::io::{self, Read, Write};
    use std::os::unix::io::{AsRawFd, RawFd};
    use std::os::unix::net::UnixStream;
    use std::sync::Mutex;
    use std::time::Duration;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const EINTR: i32 = 4;

    pub(super) struct Backend {
        registered: Mutex<HashMap<RawFd, Event>>,
        wake_rx: Mutex<UnixStream>,
        wake_tx: Mutex<UnixStream>,
        wake_fd: RawFd,
    }

    impl Backend {
        pub(super) fn new() -> io::Result<Backend> {
            let (tx, rx) = UnixStream::pair()?;
            tx.set_nonblocking(true)?;
            rx.set_nonblocking(true)?;
            let wake_fd = rx.as_raw_fd();
            Ok(Backend {
                registered: Mutex::new(HashMap::new()),
                wake_rx: Mutex::new(rx),
                wake_tx: Mutex::new(tx),
                wake_fd,
            })
        }

        pub(super) fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut map = self.registered.lock().expect("poll registrations");
            if map.insert(fd, interest).is_some() {
                return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"));
            }
            Ok(())
        }

        pub(super) fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut map = self.registered.lock().expect("poll registrations");
            match map.get_mut(&fd) {
                Some(slot) => {
                    *slot = interest;
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub(super) fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut map = self.registered.lock().expect("poll registrations");
            match map.remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub(super) fn wait(
            &self,
            events: &mut Events,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut fds = vec![PollFd { fd: self.wake_fd, events: POLLIN, revents: 0 }];
            let mut keys = vec![Event::none(0)];
            {
                let map = self.registered.lock().expect("poll registrations");
                for (&fd, &interest) in map.iter() {
                    let mut mask = 0i16;
                    if interest.readable {
                        mask |= POLLIN;
                    }
                    if interest.writable {
                        mask |= POLLOUT;
                    }
                    fds.push(PollFd { fd, events: mask, revents: 0 });
                    keys.push(interest);
                }
            }
            loop {
                let ret = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms(timeout)) };
                if ret >= 0 {
                    break;
                }
                let err = io::Error::last_os_error();
                if err.raw_os_error() != Some(EINTR) {
                    return Err(err);
                }
            }
            if fds[0].revents & POLLIN != 0 {
                let mut scratch = [0u8; 64];
                let mut rx = self.wake_rx.lock().expect("waker");
                while matches!(rx.read(&mut scratch), Ok(n) if n > 0) {}
            }
            for (pfd, interest) in fds.iter().zip(keys.iter()).skip(1) {
                let faulted = pfd.revents & (POLLERR | POLLHUP) != 0;
                let readable = pfd.revents & POLLIN != 0 || faulted;
                let writable = (pfd.revents & POLLOUT != 0 && interest.writable)
                    || (faulted && interest.writable);
                if readable || writable {
                    events.push(Event { key: interest.key, readable, writable });
                }
            }
            Ok(())
        }

        pub(super) fn notify(&self) -> io::Result<()> {
            let _ = self.wake_tx.lock().expect("waker").write(&[1u8]);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn data_makes_socket_readable() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.add(&b, Event::readable(7)).unwrap();
        a.write_all(b"hi").unwrap();
        let mut events = Events::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        let ev: Vec<Event> = events.iter().collect();
        assert!(ev.iter().any(|e| e.key == 7 && e.readable), "expected readable key 7, got {ev:?}");
        poller.delete(&b).unwrap();
    }

    #[test]
    fn level_triggered_until_drained() {
        let poller = Poller::new().unwrap();
        let (mut a, mut b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.add(&b, Event::readable(1)).unwrap();
        a.write_all(b"xyz").unwrap();
        let mut events = Events::new();
        // Reported repeatedly while data remains.
        for _ in 0..3 {
            poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert!(events.iter().any(|e| e.key == 1 && e.readable));
        }
        let mut buf = [0u8; 16];
        assert_eq!(b.read(&mut buf).unwrap(), 3);
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap(), 0);
        poller.delete(&b).unwrap();
    }

    #[test]
    fn notify_wakes_wait_from_another_thread() {
        let poller = Arc::new(Poller::new().unwrap());
        let waker = Arc::clone(&poller);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.notify().unwrap();
        });
        let mut events = Events::new();
        let start = Instant::now();
        let n = poller.wait(&mut events, Some(Duration::from_secs(30))).unwrap();
        assert_eq!(n, 0, "a bare notify carries no descriptor events");
        assert!(start.elapsed() < Duration::from_secs(10));
        t.join().unwrap();
    }

    #[test]
    fn notify_dedups_but_never_loses_a_wake() {
        let poller = Poller::new().unwrap();
        for _ in 0..100 {
            poller.notify().unwrap();
        }
        let mut events = Events::new();
        // One wait absorbs the whole burst...
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        // ...and the next one times out instead of spinning on a stale wake.
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap(), 0);
        // A notify after the drain still wakes.
        poller.notify().unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
    }

    #[test]
    fn modify_and_delete_change_what_is_reported() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.add(&b, Event::none(3)).unwrap();
        a.write_all(b"ping").unwrap();
        let mut events = Events::new();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap(), 0);
        poller.modify(&b, Event::readable(3)).unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.key == 3 && e.readable));
        poller.delete(&b).unwrap();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap(), 0);
    }

    #[test]
    fn write_interest_reports_writable() {
        let poller = Poller::new().unwrap();
        let (_a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.add(&b, Event::all(9)).unwrap();
        let mut events = Events::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.key == 9 && e.writable));
        poller.delete(&b).unwrap();
    }

    #[test]
    fn fault_without_write_interest_is_not_writable() {
        let poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.add(&b, Event::readable(4)).unwrap();
        // Peer hangup: the fault folds into readability only, because no
        // write interest was registered.
        drop(a);
        let mut events = Events::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        let ev: Vec<Event> = events.iter().filter(|e| e.key == 4).collect();
        assert!(!ev.is_empty(), "hangup must surface as readiness");
        assert!(ev.iter().all(|e| e.readable && !e.writable), "got {ev:?}");
        poller.delete(&b).unwrap();
    }

    #[test]
    fn fault_with_write_interest_reports_writable() {
        let poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.add(&b, Event::all(5)).unwrap();
        drop(a);
        let mut events = Events::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(
            events.iter().any(|e| e.key == 5 && e.readable && e.writable),
            "a faulted fd with write interest reports both bits"
        );
        poller.delete(&b).unwrap();
    }

    #[test]
    fn reserved_key_is_rejected() {
        let poller = Poller::new().unwrap();
        let (_a, b) = UnixStream::pair().unwrap();
        assert!(poller.add(&b, Event::readable(NOTIFY_KEY)).is_err());
    }
}
