//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro with an optional `#![proptest_config(...)]` header, `arg in
//! strategy` bindings over integer/float ranges and
//! `prop::collection::vec`, and the `prop_assert!`/`prop_assert_eq!`
//! fallible assertions. Cases are generated from a deterministic per-test
//! seed; there is no shrinking — a failing case reports its index and
//! message and panics.

use std::ops::Range;

/// Error carried out of a failing property body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic generator handed to strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E3779B97F4A7C15 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over a test name, mixed with the case index for per-case seeds.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Produces one value per case.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        let v = self.start + (self.end - self.start) * rng.unit_f64() as f32;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// `prop::collection::vec` and friends.
pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        /// A vector of `len` elements (uniform in the range) drawn from
        /// `elem`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = Strategy::generate(&self.len, rng);
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::TestRng::new($crate::case_seed(stringify!($name), case));
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {case} of {} failed: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::case_seed;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges honour their bounds.
        #[test]
        fn int_ranges_in_bounds(x in 3u32..17, y in -5i64..5, n in 1usize..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((1..9).contains(&n));
        }

        /// Float ranges honour their bounds and vec lengths are respected.
        #[test]
        fn float_and_vec_strategies(f in -2.0f64..2.0, v in prop::collection::vec(0.0f32..1.0, 2..6)) {
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert_eq!(v.len(), v.len());
        }
    }

    #[test]
    fn failing_body_reports_case() {
        let outcome: Result<(), TestCaseError> = (|| {
            prop_assert!(1 + 1 == 3, "math broke");
            Ok(())
        })();
        assert!(outcome.is_err());
    }

    #[test]
    fn deterministic_seeds() {
        assert_eq!(case_seed("a", 3), case_seed("a", 3));
        assert_ne!(case_seed("a", 3), case_seed("b", 3));
    }
}
