//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the macro/entry-point surface the workspace benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `iter`/`iter_batched`, `BenchmarkId`, `BatchSize`) with
//! a simple wall-clock measurement loop: a short warm-up, then timed
//! batches, reporting the median per-iteration time on stdout.
//!
//! Two environment variables tune it without recompiling:
//! * `CRITERION_QUICK=1` — one measurement pass (used by CI smoke runs).
//! * `CRITERION_MEASURE_MS` — per-benchmark measurement budget (default 300).

use std::time::{Duration, Instant};

/// Re-export for parity with `criterion::black_box` call sites.
pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The stub times routine calls
/// individually, so the variants only express intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything accepted as a benchmark id.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

fn measure_budget() -> Duration {
    let ms = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Collects per-iteration timings for one benchmark.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by `iter`/`iter_batched`.
    median_ns: f64,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher { median_ns: f64::NAN, iters: 0 }
    }

    /// Times `routine` in growing batches until the measurement budget is
    /// spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: how many iterations fit in ~1ms?
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let budget = if quick_mode() { Duration::ZERO } else { measure_budget() };
        let mut samples = Vec::new();
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t0.elapsed().as_secs_f64() * 1e9 / batch as f64);
            self.iters += batch;
            if start.elapsed() >= budget || samples.len() >= 64 {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let budget = if quick_mode() { Duration::ZERO } else { measure_budget() };
        let mut samples = Vec::new();
        let start = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            samples.push(t0.elapsed().as_secs_f64() * 1e9);
            self.iters += 1;
            if start.elapsed() >= budget || samples.len() >= 256 {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
    }
}

fn report(name: &str, bencher: &Bencher) {
    let ns = bencher.median_ns;
    let (value, unit) = if ns < 1e3 {
        (ns, "ns")
    } else if ns < 1e6 {
        (ns / 1e3, "µs")
    } else {
        (ns / 1e6, "ms")
    };
    println!("{name:<48} time: {value:>10.3} {unit}/iter  ({} iters)", bencher.iters);
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let name = id.into_id();
        let mut b = Bencher::new();
        f(&mut b);
        report(&name, &b);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into() }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sample-size hint; the stub sizes runs by wall-clock budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher::new();
        f(&mut b);
        report(&name, &b);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&name, &b);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench executables with test-harness flags;
            // skip the actual measurement loop there.
            if std::env::args().any(|a| a == "--test" || a.starts_with("--format")) {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_finite_median() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(3usize), &3usize, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }
}
