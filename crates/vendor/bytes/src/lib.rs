//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements the subset of `Bytes`/`BytesMut`/`Buf`/`BufMut` the workspace
//! codecs use: little-endian integer/float accessors, `copy_to_slice`,
//! `copy_to_bytes`, `slice`, and `freeze`. `Bytes` here owns its storage
//! (no refcounted zero-copy views); the codecs only care about semantics.

use std::ops::Range;

/// An owned, cheaply sliceable byte buffer with a read cursor.
///
/// All inspection methods (`len`, `slice`, `to_vec`, `as_ref`) operate on the
/// *remaining* bytes, matching the upstream `Bytes` view semantics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Remaining length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the sub-range `range` of the remaining bytes into a new
    /// `Bytes`.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        let view = self.as_slice();
        Bytes { data: view[range].to_vec(), pos: 0 }
    }

    /// Remaining bytes as a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes { data: data.to_vec(), pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A growable write buffer.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The remaining bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `n` bytes.
    ///
    /// # Panics
    /// Panics when fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "Buf: not enough bytes");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(self.remaining() >= n, "Buf: not enough bytes");
        let out = Bytes { data: self.chunk()[..n].to_vec(), pos: 0 };
        self.advance(n);
        out
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "Bytes::advance past end");
        self.pos += n;
    }
}

/// Append-only writer of little-endian scalars.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_f32_le(1.5);
        buf.put_f64_le(-2.25);
        buf.put_slice(b"abc");
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 300);
        assert_eq!(b.get_u32_le(), 70_000);
        assert_eq!(b.get_u64_le(), 1 << 40);
        assert_eq!(b.get_f32_le(), 1.5);
        assert_eq!(b.get_f64_le(), -2.25);
        let mut tail = [0u8; 3];
        b.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"abc");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_and_copy_to_bytes_track_cursor() {
        let mut b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        b.advance(2);
        assert_eq!(b.len(), 4);
        assert_eq!(b.slice(1..3).to_vec(), vec![3, 4]);
        let mid = b.copy_to_bytes(2);
        assert_eq!(mid.to_vec(), vec![2, 3]);
        assert_eq!(b.to_vec(), vec![4, 5]);
    }

    #[test]
    #[should_panic(expected = "not enough bytes")]
    fn reading_past_end_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u32_le();
    }
}
