//! [`Detector`] adapters for CausalTAD and its ablations, so the harness
//! can mix them with the baselines in one table.

use causaltad::{CausalTad, CausalTadConfig};
use tad_baselines::Detector;
use tad_roadnet::RoadNetwork;
use tad_trajsim::Trajectory;

/// Which scoring path of the trained CausalTAD model to expose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CausalTadVariant {
    /// Full Eq. 10 score (likelihood + λ-weighted scaling factor).
    Full,
    /// TG-VAE likelihood only (λ = 0) — ablation row "TG-VAE".
    TgOnly,
    /// RP-VAE segment likelihoods only — ablation row "RP-VAE".
    RpOnly,
}

/// Adapter implementing [`Detector`] on top of [`CausalTad`].
pub struct CausalTadDetector {
    cfg: CausalTadConfig,
    variant: CausalTadVariant,
    model: Option<CausalTad>,
}

impl CausalTadDetector {
    /// Full CausalTAD.
    pub fn new(cfg: CausalTadConfig) -> Self {
        CausalTadDetector { cfg, variant: CausalTadVariant::Full, model: None }
    }

    /// A specific scoring variant (for the ablation study).
    pub fn variant(cfg: CausalTadConfig, variant: CausalTadVariant) -> Self {
        CausalTadDetector { cfg, variant, model: None }
    }

    /// Access to the trained model (e.g. for per-segment traces).
    pub fn model(&self) -> Option<&CausalTad> {
        self.model.as_ref()
    }

    /// Replaces λ on the trained model without retraining (Fig. 8).
    pub fn set_lambda(&mut self, lambda: f64) {
        if let Some(m) = self.model.as_mut() {
            m.set_lambda(lambda);
        }
        self.cfg.lambda = lambda;
    }

    fn model_ref(&self) -> &CausalTad {
        self.model.as_ref().expect("CausalTAD: call fit() before scoring")
    }
}

impl Detector for CausalTadDetector {
    fn name(&self) -> &'static str {
        match self.variant {
            CausalTadVariant::Full => "CausalTAD",
            CausalTadVariant::TgOnly => "TG-VAE",
            CausalTadVariant::RpOnly => "RP-VAE",
        }
    }

    fn fit(&mut self, net: &RoadNetwork, train: &[Trajectory]) {
        let mut model = CausalTad::new(net, self.cfg.clone());
        model.fit(train);
        self.model = Some(model);
    }

    fn score_prefix(&self, traj: &Trajectory, prefix_len: usize) -> f64 {
        let model = self.model_ref();
        match self.variant {
            CausalTadVariant::Full => model.score_prefix(traj, prefix_len),
            CausalTadVariant::TgOnly => {
                let sd = traj.sd_pair();
                let mut scorer = model.online(sd.source.0, sd.dest.0, traj.time_slot);
                let n = prefix_len.clamp(1, traj.len());
                for &seg in &traj.segments[..n] {
                    scorer.push(seg.0);
                }
                scorer.likelihood_nll()
            }
            CausalTadVariant::RpOnly => {
                let table = model.scaling().expect("fitted model has a scaling table");
                let n = prefix_len.clamp(1, traj.len());
                traj.segments[..n].iter().map(|s| -table.elbo(s.0, traj.time_slot)).sum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tad_trajsim::{generate_city, CityConfig};

    #[test]
    fn all_variants_fit_and_score() {
        let city = generate_city(&CityConfig::test_scale(500));
        let mut cfg = CausalTadConfig::test_scale();
        cfg.epochs = 2;
        for variant in [CausalTadVariant::Full, CausalTadVariant::TgOnly, CausalTadVariant::RpOnly]
        {
            let mut det = CausalTadDetector::variant(cfg.clone(), variant);
            det.fit(&city.net, &city.data.train);
            let s = det.score(&city.data.test_id[0]);
            assert!(s.is_finite(), "{:?}: {s}", variant);
        }
    }

    #[test]
    fn variant_names() {
        let cfg = CausalTadConfig::test_scale();
        assert_eq!(CausalTadDetector::new(cfg.clone()).name(), "CausalTAD");
        assert_eq!(
            CausalTadDetector::variant(cfg.clone(), CausalTadVariant::TgOnly).name(),
            "TG-VAE"
        );
        assert_eq!(CausalTadDetector::variant(cfg, CausalTadVariant::RpOnly).name(), "RP-VAE");
    }

    #[test]
    fn lambda_override_changes_scores() {
        let city = generate_city(&CityConfig::test_scale(501));
        let mut cfg = CausalTadConfig::test_scale();
        cfg.epochs = 2;
        let mut det = CausalTadDetector::new(cfg);
        det.fit(&city.net, &city.data.train);
        let t = &city.data.test_id[0];
        det.set_lambda(0.0);
        let s0 = det.score(t);
        det.set_lambda(1.0);
        let s1 = det.score(t);
        assert_ne!(s0, s1);
    }
}
