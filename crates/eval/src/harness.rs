//! Experiment harness: turns detectors + dataset combinations into the
//! metric rows the paper's tables report.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tad_baselines::Detector;
use tad_trajsim::Trajectory;

use crate::metrics::{pr_auc, roc_auc};

/// ROC/PR-AUC of one detector on one dataset combination.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComboResult {
    pub roc_auc: f64,
    pub pr_auc: f64,
}

/// Scores `normals` (label false) against `anomalies` (label true) with a
/// fitted detector and computes both AUCs.
pub fn evaluate(
    det: &dyn Detector,
    normals: &[Trajectory],
    anomalies: &[Trajectory],
) -> ComboResult {
    evaluate_with(|t| det.score(t), normals, anomalies)
}

/// Like [`evaluate`], but each trajectory is truncated to the observed
/// ratio before scoring (the online evaluation of §VI-E).
pub fn evaluate_at_ratio(
    det: &dyn Detector,
    normals: &[Trajectory],
    anomalies: &[Trajectory],
    observed_ratio: f64,
) -> ComboResult {
    evaluate_with(
        |t| {
            let n = ((t.len() as f64) * observed_ratio).round() as usize;
            det.score_prefix(t, n.max(1))
        },
        normals,
        anomalies,
    )
}

/// The stability evaluation of §VI-D: normals are a mixture of the ID and
/// OOD test sets with shift ratio `alpha` (0 = all ID, 1 = all OOD),
/// matched in size to `min(id.len(), ood.len())` and deterministically
/// subsampled.
pub fn mix_normals(
    id: &[Trajectory],
    ood: &[Trajectory],
    alpha: f64,
    seed: u64,
) -> Vec<Trajectory> {
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
    let total = id.len().min(ood.len()).max(1);
    let n_ood = ((total as f64) * alpha).round() as usize;
    let n_id = total - n_ood;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pick = |src: &[Trajectory], n: usize| -> Vec<Trajectory> {
        let mut idx: Vec<usize> = (0..src.len()).collect();
        idx.shuffle(&mut rng);
        idx.into_iter().take(n).map(|i| src[i].clone()).collect()
    };
    let mut out = pick(id, n_id);
    out.extend(pick(ood, n_ood));
    out
}

fn evaluate_with(
    score: impl Fn(&Trajectory) -> f64,
    normals: &[Trajectory],
    anomalies: &[Trajectory],
) -> ComboResult {
    let mut scores = Vec::with_capacity(normals.len() + anomalies.len());
    let mut labels = Vec::with_capacity(scores.capacity());
    for t in normals {
        scores.push(score(t));
        labels.push(false);
    }
    for t in anomalies {
        scores.push(score(t));
        labels.push(true);
    }
    ComboResult { roc_auc: roc_auc(&scores, &labels), pr_auc: pr_auc(&scores, &labels) }
}

/// Runs `jobs` on up to `workers` threads, preserving output order.
/// Used by the table binaries to train several detectors concurrently.
pub fn parallel_map<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let n = jobs.len();
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers.max(1).min(n.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i].lock().unwrap().take().expect("job taken twice");
                *slots[i].lock().unwrap() = Some(job());
            });
        }
    });

    slots.into_iter().map(|s| s.into_inner().unwrap().expect("job did not run")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tad_roadnet::{RoadNetwork, SegmentId};

    /// A fake detector scoring by trajectory length.
    struct LengthDetector;
    impl Detector for LengthDetector {
        fn name(&self) -> &'static str {
            "len"
        }
        fn fit(&mut self, _net: &RoadNetwork, _train: &[Trajectory]) {}
        fn score_prefix(&self, traj: &Trajectory, prefix_len: usize) -> f64 {
            prefix_len.min(traj.len()) as f64
        }
    }

    fn traj(len: usize) -> Trajectory {
        Trajectory::normal((0..len as u32).map(SegmentId).collect(), 0)
    }

    #[test]
    fn evaluate_perfect_separation() {
        let normals: Vec<_> = (3..8).map(traj).collect();
        let anomalies: Vec<_> = (10..15).map(traj).collect();
        let r = evaluate(&LengthDetector, &normals, &anomalies);
        assert_eq!(r.roc_auc, 1.0);
        assert_eq!(r.pr_auc, 1.0);
    }

    #[test]
    fn evaluate_at_ratio_truncates() {
        let normals = vec![traj(10)];
        let anomalies = vec![traj(20)];
        let full = evaluate_at_ratio(&LengthDetector, &normals, &anomalies, 1.0);
        let half = evaluate_at_ratio(&LengthDetector, &normals, &anomalies, 0.5);
        assert_eq!(full.roc_auc, 1.0);
        // At ratio 0.5 the anomaly still observes more segments.
        assert_eq!(half.roc_auc, 1.0);
    }

    #[test]
    fn mix_normals_ratio() {
        let id: Vec<_> = (0..20).map(|_| traj(5)).collect();
        let ood: Vec<_> = (0..20).map(|_| traj(9)).collect();
        for &(alpha, expect_ood) in &[(0.0, 0usize), (0.5, 10), (1.0, 20)] {
            let mixed = mix_normals(&id, &ood, alpha, 7);
            assert_eq!(mixed.len(), 20);
            let ood_count = mixed.iter().filter(|t| t.len() == 9).count();
            assert_eq!(ood_count, expect_ood, "alpha {alpha}");
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn mix_normals_rejects_bad_alpha() {
        let _ = mix_normals(&[], &[], 1.5, 0);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let jobs: Vec<_> = (0..17).map(|i| move || i * i).collect();
        let out = parallel_map(jobs, 4);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_worker() {
        let jobs: Vec<_> = (0..3).map(|i| move || i + 1).collect();
        assert_eq!(parallel_map(jobs, 1), vec![1, 2, 3]);
    }
}
