//! Threshold-free detection metrics: ROC-AUC and PR-AUC, the two metrics of
//! the paper (§VI-A3).

/// Area under the ROC curve via the Mann-Whitney U statistic: the
/// probability that a random anomaly outscores a random normal, with ties
/// counting half. Returns 0.5 when either class is empty.
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let mut ranked: Vec<(f64, bool)> = scores.iter().copied().zip(labels.iter().copied()).collect();
    ranked.sort_by(|a, b| a.0.total_cmp(&b.0));

    let pos = labels.iter().filter(|&&l| l).count();
    let neg = labels.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }

    // Sum of ranks of positives, with average ranks over tied groups.
    let mut rank_sum = 0.0f64;
    let mut i = 0usize;
    while i < ranked.len() {
        let mut j = i;
        while j + 1 < ranked.len() && ranked[j + 1].0 == ranked[i].0 {
            j += 1;
        }
        // Ranks are 1-based; the tied group [i, j] shares the average rank.
        let avg_rank = (i + j + 2) as f64 / 2.0;
        for item in &ranked[i..=j] {
            if item.1 {
                rank_sum += avg_rank;
            }
        }
        i = j + 1;
    }
    (rank_sum - (pos * (pos + 1)) as f64 / 2.0) / (pos as f64 * neg as f64)
}

/// Area under the precision-recall curve computed as average precision
/// (the standard step-wise interpolation). Anomalies are the positive
/// class. Returns the positive rate when either class is empty.
pub fn pr_auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let pos = labels.iter().filter(|&&l| l).count();
    if pos == 0 {
        return 0.0;
    }
    if pos == labels.len() {
        return 1.0;
    }
    let mut ranked: Vec<(f64, bool)> = scores.iter().copied().zip(labels.iter().copied()).collect();
    // Descending by score; ties broken so that positives come *after*
    // negatives at the same score (pessimistic, avoids optimistic bias).
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

    let mut tp = 0usize;
    let mut ap = 0.0f64;
    for (k, &(_, is_pos)) in ranked.iter().enumerate() {
        if is_pos {
            tp += 1;
            ap += tp as f64 / (k + 1) as f64;
        }
    }
    ap / pos as f64
}

/// A bootstrap confidence interval for a metric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate on the full sample.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

/// Percentile-bootstrap confidence interval for ROC-AUC: resamples the
/// scored population with replacement `resamples` times and takes the
/// `alpha/2` and `1 - alpha/2` percentiles. Deterministic given `seed`.
pub fn roc_auc_ci(
    scores: &[f64],
    labels: &[bool],
    resamples: usize,
    alpha: f64,
    seed: u64,
) -> ConfidenceInterval {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    assert!(resamples >= 10, "need at least 10 resamples");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let estimate = roc_auc(scores, labels);
    let n = scores.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = Vec::with_capacity(resamples);
    let mut s = Vec::with_capacity(n);
    let mut l = Vec::with_capacity(n);
    for _ in 0..resamples {
        s.clear();
        l.clear();
        for _ in 0..n {
            let i = rng.gen_range(0..n);
            s.push(scores[i]);
            l.push(labels[i]);
        }
        stats.push(roc_auc(&s, &l));
    }
    stats.sort_by(f64::total_cmp);
    let lo_idx = ((alpha / 2.0) * resamples as f64) as usize;
    let hi_idx = (((1.0 - alpha / 2.0) * resamples as f64) as usize).min(resamples - 1);
    ConfidenceInterval { estimate, lo: stats[lo_idx], hi: stats[hi_idx] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_gives_one() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        assert_eq!(roc_auc(&scores, &labels), 1.0);
        assert_eq!(pr_auc(&scores, &labels), 1.0);
    }

    #[test]
    fn inverted_ranking_gives_zero_roc() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [false, false, true, true];
        assert_eq!(roc_auc(&scores, &labels), 0.0);
        assert!(pr_auc(&scores, &labels) < 0.6);
    }

    #[test]
    fn symmetric_interleaving_is_exactly_half() {
        // Positives at ranks {2,3,6,7}: rank sum 18, AUC = (18-10)/16 = 0.5.
        let scores = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let labels = [false, true, true, false, false, true, true, false];
        assert_eq!(roc_auc(&scores, &labels), 0.5);
    }

    #[test]
    fn alternating_interleaving_known_value() {
        // Positives at ranks {1,3,5,7}: rank sum 16, AUC = (16-10)/16.
        let scores = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let labels = [true, false, true, false, true, false, true, false];
        assert_eq!(roc_auc(&scores, &labels), 0.375);
    }

    #[test]
    fn ties_count_half() {
        let scores = [1.0, 1.0];
        let labels = [true, false];
        assert_eq!(roc_auc(&scores, &labels), 0.5);
    }

    #[test]
    fn roc_invariant_under_monotone_transform() {
        let scores = [0.1, 0.5, 0.3, 0.9, 0.7];
        let labels = [false, true, false, true, true];
        let transformed: Vec<f64> = scores.iter().map(|s| f64::exp(s * 10.0)).collect();
        assert!((roc_auc(&scores, &labels) - roc_auc(&transformed, &labels)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_label_sets() {
        assert_eq!(roc_auc(&[1.0, 2.0], &[true, true]), 0.5);
        assert_eq!(roc_auc(&[1.0, 2.0], &[false, false]), 0.5);
        assert_eq!(pr_auc(&[1.0, 2.0], &[false, false]), 0.0);
        assert_eq!(pr_auc(&[1.0, 2.0], &[true, true]), 1.0);
    }

    #[test]
    fn pr_auc_known_value() {
        // Ranking (desc): [T, F, T]; AP = (1/1 + 2/3) / 2 = 5/6.
        let scores = [0.9, 0.8, 0.7];
        let labels = [true, false, true];
        assert!((pr_auc(&scores, &labels) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = roc_auc(&[1.0], &[true, false]);
    }

    #[test]
    fn bootstrap_ci_contains_estimate_and_orders() {
        // Noisy but separable scores.
        let scores: Vec<f64> =
            (0..60).map(|i| i as f64 + if i % 2 == 0 { 15.0 } else { 0.0 }).collect();
        let labels: Vec<bool> = (0..60).map(|i| i % 2 == 0).collect();
        let ci = roc_auc_ci(&scores, &labels, 200, 0.05, 7);
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi, "{ci:?}");
        assert!(ci.hi - ci.lo < 0.5, "interval should be informative: {ci:?}");
    }

    #[test]
    fn bootstrap_ci_deterministic_per_seed() {
        let scores = [1.0, 3.0, 2.0, 5.0, 4.0, 6.0];
        let labels = [false, true, false, true, false, true];
        let a = roc_auc_ci(&scores, &labels, 100, 0.1, 3);
        let b = roc_auc_ci(&scores, &labels, 100, 0.1, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn bootstrap_ci_perfect_separation_tight() {
        let scores = [0.0, 0.1, 0.2, 10.0, 11.0, 12.0];
        let labels = [false, false, false, true, true, true];
        let ci = roc_auc_ci(&scores, &labels, 100, 0.05, 1);
        assert_eq!(ci.estimate, 1.0);
        assert_eq!(ci.hi, 1.0);
    }
}
