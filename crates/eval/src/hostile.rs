//! Hostile-stream evaluation: detection quality under corruption ×
//! sanitization-policy cells.
//!
//! The offline [`harness`](crate::harness) scores trajectories with
//! `Detector::score` — it never sees the telemetry channel. This module
//! closes that gap: trajectories are first passed through a
//! [`tad_trajsim::corrupt_dataset`] fault model and then scored through a
//! [`tad_serve::FleetEngine`] configured with a [`StreamPolicy`], exactly
//! the path a production deployment takes. Pairing corruption channels
//! with sanitization policies yields an AUC grid that answers the
//! operational question the paper's tables cannot: *how much detection
//! quality does each fault channel cost, and how much does each
//! sanitization policy buy back?*
//!
//! The equivalence guarantees proven by the serve/net/router batteries
//! carry over verbatim: with the all-off policy the engine path is
//! bit-identical to an unpoliced engine, so the `clean × off` cell of any
//! grid reproduces the offline evaluation's ranking.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use causaltad::CausalTad;
use tad_roadnet::RoadNetwork;
use tad_serve::{Event, FleetConfig, FleetEngine, StreamPolicy};
use tad_trajsim::{corrupt_dataset, CorruptionConfig, Trajectory};

use crate::harness::ComboResult;
use crate::metrics::{pr_auc, roc_auc};

/// Scores every trajectory through a [`FleetEngine`] configured with
/// `policy`, returning the final (Eq. 10) anomaly score of each trip in
/// input order.
///
/// Trips are interleaved round-robin into one event stream — the same
/// fleet-shaped arrival order the serving batteries use — so the policy
/// layer sees realistic concurrency while per-trip event order (the only
/// order the engine guarantees anything about) is preserved.
///
/// Panics if the engine fails to complete a trip: every trip here is
/// submitted with a terminating `TripEnd`, so a missing final score is an
/// engine bug, not an evaluation outcome.
pub fn fleet_scores(
    model: &Arc<CausalTad>,
    policy: &StreamPolicy,
    trips: &[Trajectory],
) -> Vec<f64> {
    let finals: Arc<Mutex<HashMap<u64, f64>>> = Arc::new(Mutex::new(HashMap::new()));
    let sink = Arc::clone(&finals);
    let cfg = FleetConfig { policy: policy.clone(), ..FleetConfig::default() };
    let engine = FleetEngine::builder(Arc::clone(model))
        .config(cfg)
        .on_complete(move |o| {
            sink.lock().unwrap().insert(o.id, o.score);
        })
        .build()
        .expect("fleet_scores: model must be trained");

    for (id, t) in trips.iter().enumerate() {
        let sd = t.sd_pair();
        engine
            .submit(Event::TripStart {
                id: id as u64,
                source: sd.source.0,
                dest: sd.dest.0,
                time_slot: t.time_slot,
            })
            .expect("submit start");
    }
    let longest = trips.iter().map(|t| t.len()).max().unwrap_or(0);
    for step in 0..longest {
        for (id, t) in trips.iter().enumerate() {
            if let Some(seg) = t.segments.get(step) {
                engine.submit(Event::Segment { id: id as u64, seg: seg.0 }).expect("submit seg");
            }
            if step + 1 == t.len() {
                engine.submit(Event::TripEnd { id: id as u64 }).expect("submit end");
            }
        }
    }
    engine.shutdown();

    let finals = Arc::try_unwrap(finals).expect("engine gone").into_inner().unwrap();
    trips
        .iter()
        .enumerate()
        .map(|(id, _)| {
            *finals.get(&(id as u64)).unwrap_or_else(|| panic!("trip {id} never completed"))
        })
        .collect()
}

/// Evaluates one corruption × policy cell: corrupts `normals` and
/// `anomalies` with the fault model, scores both through a
/// policy-configured fleet engine, and computes both AUCs (normals are
/// label `false`, anomalies label `true`).
///
/// Corruption is replayable: the same `corruption` config over the same
/// slices reproduces the exact same corrupted streams, so cells can be
/// compared across policies without fault-sampling noise.
pub fn hostile_cell(
    model: &Arc<CausalTad>,
    net: &RoadNetwork,
    policy: &StreamPolicy,
    corruption: &CorruptionConfig,
    normals: &[Trajectory],
    anomalies: &[Trajectory],
) -> ComboResult {
    let dirty_normals = corrupt_dataset(net, normals, corruption);
    let dirty_anomalies = corrupt_dataset(net, anomalies, corruption);
    let mut scores = fleet_scores(model, policy, &dirty_normals);
    scores.extend(fleet_scores(model, policy, &dirty_anomalies));
    let mut labels = vec![false; dirty_normals.len()];
    labels.extend(std::iter::repeat_n(true, dirty_anomalies.len()));
    ComboResult { roc_auc: roc_auc(&scores, &labels), pr_auc: pr_auc(&scores, &labels) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causaltad::CausalTadConfig;
    use tad_trajsim::{generate_city, City, CityConfig};

    fn trained() -> (City, Arc<CausalTad>) {
        let city = generate_city(&CityConfig::test_scale(909));
        let mut cfg = CausalTadConfig::test_scale();
        cfg.epochs = 1;
        let mut model = CausalTad::new(&city.net, cfg);
        model.fit(&city.data.train);
        (city, Arc::new(model))
    }

    #[test]
    fn dedup_policy_recovers_clean_scores_bit_exactly() {
        let (city, model) = trained();
        let trips: Vec<Trajectory> = city.data.test_id.iter().take(8).cloned().collect();
        let clean = fleet_scores(&model, &StreamPolicy::default(), &trips);

        // Every segment duplicated; the dedup window collapses the
        // resends, so the policed dirty stream must reproduce the clean
        // unpoliced scores to the bit.
        let dirty = corrupt_dataset(&city.net, &trips, &CorruptionConfig::duplicates(1.0, 5));
        let policy = StreamPolicy { dedup_window: 2, ..StreamPolicy::default() };
        let policed = fleet_scores(&model, &policy, &dirty);

        assert_eq!(clean.len(), policed.len());
        for (i, (a, b)) in clean.iter().zip(&policed).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "trip {i}: {a} vs {b}");
        }
    }

    #[test]
    fn hostile_cell_produces_valid_aucs() {
        let (city, model) = trained();
        let normals: Vec<Trajectory> = city.data.test_id.iter().take(10).cloned().collect();
        let anomalies: Vec<Trajectory> = city.data.detour.iter().take(10).cloned().collect();
        let corruption = CorruptionConfig {
            duplicate_prob: 0.2,
            reorder_prob: 0.2,
            drop_prob: 0.1,
            seed: 3,
            ..CorruptionConfig::default()
        };
        let policy = StreamPolicy { dedup_window: 2, reorder_window: 3, ..StreamPolicy::default() };
        let r = hostile_cell(&model, &city.net, &policy, &corruption, &normals, &anomalies);
        assert!((0.0..=1.0).contains(&r.roc_auc), "roc {}", r.roc_auc);
        assert!((0.0..=1.0).contains(&r.pr_auc), "pr {}", r.pr_auc);
    }
}
