//! Standard synthetic cities for the experiment suite.
//!
//! Two city configurations stand in for the paper's two datasets:
//! **xian-s** and **chengdu-s** (the paper's Chengdu set has roughly twice
//! the trajectories of Xi'an, which is mirrored here). Each comes in two
//! scales:
//!
//! * `Quick` — minutes on a laptop CPU; the default for every experiment
//!   binary and the integration tests.
//! * `Paper` — larger road networks and trajectory counts, closer to the
//!   paper's 10k/20k-trajectory setup; expect long CPU runtimes.

use tad_roadnet::grid::GridCityConfig;
use tad_trajsim::anomaly::AnomalyConfig;
use tad_trajsim::preference::PreferenceConfig;
use tad_trajsim::routing::RouteChoiceConfig;
use tad_trajsim::sd::SdConfig;
use tad_trajsim::CityConfig;

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// CPU-minutes scale (default).
    Quick,
    /// Closer to the paper's dataset sizes (CPU-hours).
    Paper,
}

impl Scale {
    /// Parses `--scale quick|paper` style arguments.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "quick" => Some(Scale::Quick),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// The "Xi'an-like" synthetic city.
pub fn xian_s(scale: Scale) -> CityConfig {
    base_city("xian-s", scale, 11)
}

/// The "Chengdu-like" synthetic city: different seed/layout and roughly
/// twice the trajectories, as in the paper.
pub fn chengdu_s(scale: Scale) -> CityConfig {
    let mut cfg = base_city("chengdu-s", scale, 97);
    cfg.trajs_per_pair *= 2;
    cfg.num_ood_pairs = (cfg.num_ood_pairs as f64 * 1.5) as usize;
    cfg.grid.major_every = 5;
    cfg.pref.num_pois += 2;
    cfg
}

/// Both standard cities.
pub fn standard_cities(scale: Scale) -> Vec<CityConfig> {
    vec![xian_s(scale), chengdu_s(scale)]
}

fn base_city(name: &str, scale: Scale, seed: u64) -> CityConfig {
    // Many SD pairs with moderate depth per pair matter more than raw
    // trajectory count: endpoint-embedding coverage is what lets the SD
    // encoder generalise, which the paper's 100-pair setup provides.
    let (grid_side, pairs, per_pair, ood_pairs, anomalies) = match scale {
        Scale::Quick => (12, 60, 20, 50, 250),
        Scale::Paper => (16, 100, 60, 150, 1200),
    };
    CityConfig {
        name: name.to_string(),
        grid: GridCityConfig {
            width: grid_side,
            height: grid_side,
            block_len: 200.0,
            major_every: 4,
            arterial_every: 2,
            jitter: 0.08,
            missing_edge_prob: 0.06,
        },
        pref: PreferenceConfig::default(),
        route: RouteChoiceConfig::default(),
        sd: SdConfig { min_segments: 14, max_segments: 32, ..Default::default() },
        anomaly: AnomalyConfig::default(),
        num_candidate_pairs: pairs,
        trajs_per_pair: per_pair,
        num_ood_pairs: ood_pairs,
        trajs_per_ood_pair: 3,
        num_anomalies: anomalies,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn chengdu_has_more_data_than_xian() {
        let x = xian_s(Scale::Quick);
        let c = chengdu_s(Scale::Quick);
        assert!(c.trajs_per_pair > x.trajs_per_pair);
        assert_ne!(x.seed, c.seed);
    }

    #[test]
    fn paper_scale_is_bigger() {
        let q = xian_s(Scale::Quick);
        let p = xian_s(Scale::Paper);
        assert!(p.num_candidate_pairs > q.num_candidate_pairs);
        assert!(p.grid.width > q.grid.width);
    }

    #[test]
    fn quick_cities_generate() {
        // Smoke test: generation succeeds and yields non-empty splits.
        let city = tad_trajsim::generate_city(&xian_s(Scale::Quick));
        assert!(city.data.train.len() > 100, "{}", city.data.summary());
        assert!(!city.data.test_ood.is_empty());
        assert!(!city.data.detour.is_empty());
        assert!(!city.data.switch.is_empty());
    }
}
