//! Plain-text result rendering: Markdown and CSV tables.
//!
//! `serde_json` is not on the allowed dependency list, so the experiment
//! binaries print Markdown (for humans / EXPERIMENTS.md) and CSV (for
//! plotting) through this small builder.

/// A simple table: named columns, string cells.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the cell count differs from the column count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Formats a metric with 4 decimal places (the paper's precision).
    pub fn metric(x: f64) -> String {
        format!("{x:.4}")
    }

    /// Renders GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.columns.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders CSV (RFC-4180-ish; cells containing commas or quotes are
    /// quoted).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.columns.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Computes the "Improvement" row the paper's tables carry: the relative
/// gain of `ours` over the best `baselines` value, as a percentage string.
pub fn improvement_pct(ours: f64, baselines: &[f64]) -> String {
    let best = baselines.iter().copied().fold(f64::NAN, f64::max);
    if !best.is_finite() || best <= 0.0 {
        return "n/a".to_string();
    }
    format!("{:+.1}%", (ours - best) / best * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_layout() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("", &["x"]);
        t.push_row(vec!["hello, \"world\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, \"\"world\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn improvement_formatting() {
        assert_eq!(improvement_pct(0.9, &[0.8, 0.75]), "+12.5%");
        assert_eq!(improvement_pct(0.72, &[0.8]), "-10.0%");
        assert_eq!(improvement_pct(0.9, &[]), "n/a");
    }

    #[test]
    fn metric_precision() {
        assert_eq!(Table::metric(0.93714), "0.9371");
    }
}
