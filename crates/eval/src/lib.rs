//! # tad-eval
//!
//! Metrics, experiment harness, and standard workloads for the CausalTAD
//! reproduction:
//!
//! * [`metrics`] — ROC-AUC (Mann-Whitney) and PR-AUC (average precision),
//!   the paper's two metrics.
//! * [`cities`] — the two standard synthetic cities ("xian-s",
//!   "chengdu-s") in `Quick` and `Paper` scales.
//! * [`harness`] — dataset-combination evaluation, observed-ratio
//!   (online) evaluation, ID/OOD mixtures for the stability study, and a
//!   small ordered `parallel_map` for training several detectors at once.
//! * [`wrappers`] — [`wrappers::CausalTadDetector`] adapts [`causaltad`]
//!   (full model and its two ablations) to the shared
//!   [`tad_baselines::Detector`] trait.
//! * [`hostile`] — corruption × sanitization-policy AUC cells: corrupted
//!   streams scored through a policy-configured [`tad_serve::FleetEngine`],
//!   the evaluation behind the hostile-stream hardening work.
//! * [`report`] — Markdown/CSV table rendering for the experiment
//!   binaries.

pub mod cities;
pub mod harness;
pub mod hostile;
pub mod metrics;
pub mod report;
pub mod wrappers;
