//! # tad-router
//!
//! The cross-process sharding tier of the CausalTAD serving stack: a
//! standalone router that speaks the same `TADN` wire protocol as a
//! single [`tad-net`](tad_net) server on its front door and consistently
//! hash-partitions trips across N backend `tad-net` servers behind it —
//! the layer that takes the fleet-scoring engine past the single-process
//! ceiling.
//!
//! ```text
//!                         ┌─────────────┐     ┌──────────────────────┐
//!  producers ──TADN──────▶│  tad-router │────▶│ tad-net ▸ FleetEngine │  backend 0
//!  (tad_net::Client,      │             │     ├──────────────────────┤
//!   unchanged)            │ backend_for │────▶│ tad-net ▸ FleetEngine │  backend 1
//!                ◀────────│  (id, N)    │     ├──────────────────────┤
//!   Score / TripComplete  │   fan-in    │────▶│ tad-net ▸ FleetEngine │  backend N-1
//!   / Stats / Snapshot    └─────────────┘     └──────────────────────┘
//! ```
//!
//! ## Invariants
//!
//! * **Trip stickiness** — [`backend_for`] is a pure function of the trip
//!   id and the fleet size (jump consistent hashing over a mixed id), so
//!   every event of a trip reaches the same backend in per-trip order for
//!   the life of the trip, across router restarts, with no shared table
//!   to drift. Routed scoring is therefore **bit-identical** to a single
//!   in-process engine fed the same per-trip event streams (proven by the
//!   repository's `tests/router.rs` battery).
//! * **Fan-in ownership** — `Score`, `TripComplete`, and per-trip `Error`
//!   (including `Backpressure`) replies are routed to the front
//!   connection that owns the trip, exactly as a single `tad-net` server
//!   would.
//! * **Fleet-wide barriers** — `Flush` quiesces *all* backends and
//!   answers with aggregated stats ([`tad_serve::FleetSnapshot::merged`])
//!   only after every response caused by earlier events is queued ahead;
//!   `SnapshotRequest` returns the [`tad_serve::FleetImage::merge`] of
//!   every backend's capture.
//! * **Snapshot re-partitioning** — [`split_image`] cuts a merged capture
//!   back into per-backend seeds with the same [`backend_for`] function,
//!   so an N-server fleet restores onto M servers and each backend
//!   resumes exactly the sessions whose future events will be routed to
//!   it ([`tad_serve::FleetEngine::restore`] then re-partitions across
//!   each engine's internal shards).
//! * **Partial failure** — without standbys, a dead backend surfaces
//!   typed `Error{EngineClosed}` frames to the front connections whose
//!   trips it owned and fails in-flight barriers; trips on healthy
//!   backends keep scoring without a stall.
//! * **Self-healing** — with standby backends
//!   ([`RouterServerBuilder::standby`]) the router keeps a bounded
//!   recovery journal per active link (last checkpoint image + every
//!   ingest frame since the cut, maintained by
//!   [`RouterServer::checkpoint`] with cheap `TADD` delta captures).
//!   When an active backend dies, a standby is promoted: journal base
//!   installed, tail replayed behind flush fences, partition map flipped
//!   atomically. A per-trip delivered high-water mark suppresses
//!   duplicate scores, so producers observe a **bit-identical** score
//!   stream — every score exactly once, in order — and in-flight ingest
//!   rides out the failover at the topology gate instead of erroring.
//!   [`RouterServer::handoff`] (move one partition to a standby) and
//!   [`RouterServer::rebalance`] (re-split the fleet onto M backends)
//!   reuse the same drain → install → flip machinery, invisible to
//!   producers. Barriers arriving mid-failover wait for the new map or
//!   fail typed — never hang, never answer from a half-flipped fleet.
//!
//! ## Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use tad_net::{Client, NetServer, Response};
//! use tad_router::RouterServer;
//! # let model: Arc<causaltad::CausalTad> = unimplemented!();
//!
//! // Two independent scoring backends (normally separate processes).
//! let backend_a = NetServer::builder(Arc::clone(&model)).bind("127.0.0.1:0").unwrap();
//! let backend_b = NetServer::builder(Arc::clone(&model)).bind("127.0.0.1:0").unwrap();
//!
//! // The router in front of them; producers cannot tell it apart from a
//! // single tad-net server.
//! let router = RouterServer::builder()
//!     .backend(backend_a.local_addr())
//!     .backend(backend_b.local_addr())
//!     .bind("127.0.0.1:0")
//!     .unwrap();
//!
//! let mut client = Client::connect(router.local_addr()).unwrap();
//! client.trip_start(1, 0, 9, 3).unwrap();
//! client.segment(1, 0).unwrap();
//! client.trip_end(1).unwrap();
//! let stats = client.flush().unwrap(); // fleet-wide barrier
//! assert_eq!(stats.trips_completed, 1);
//! while let Some(Response::Score(s)) = client.try_recv() {
//!     println!("trip {} segment {} score {:.3}", s.id, s.segment, s.score);
//! }
//! router.shutdown();
//! ```

#![deny(missing_docs)]

mod backend;
mod partition;
mod server;

pub use partition::{backend_for, split_image};
pub use server::{
    CheckpointStats, HandoffStats, RouterAdminError, RouterConfig, RouterError, RouterServer,
    RouterServerBuilder, RouterStats,
};
