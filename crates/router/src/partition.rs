//! The trip→backend partitioner: a pure, deterministic function from trip
//! id and fleet size to a backend index, plus the snapshot re-partitioning
//! built on it.
//!
//! Two properties make cross-process sharding correct:
//!
//! * **Stickiness** — [`backend_for`] depends on nothing but its
//!   arguments, so every event of a trip lands on the same backend for
//!   the life of the trip, on every router process, across restarts. No
//!   table is kept and none can drift.
//! * **Restore alignment** — [`split_image`] re-partitions a merged fleet
//!   capture with the *same* function, so after an N→M warm restart each
//!   backend resumes exactly the sessions whose future events the router
//!   will send it.
//!
//! The function is the Lamping–Veach jump consistent hash over a
//! SplitMix64-mixed trip id: balanced within sampling noise for any id
//! distribution (including dense sequential ids), and moving only
//! `~1/(M+1)` of trips when a fleet grows from M to M+1 backends.

use tad_serve::{FleetImage, TripId};

/// The backend index (`0..backends`) that owns `trip` in a fleet of
/// `backends` servers.
///
/// Pure and deterministic: the same `(trip, backends)` pair maps to the
/// same backend in every process and every run — the whole stickiness
/// story of the router tier (see the module docs). The distribution is
/// balanced within sampling noise for arbitrary id distributions, and
/// growing the fleet by one backend reassigns only `~1/(backends+1)` of
/// the trips (jump consistent hashing).
///
/// # Panics
/// When `backends` is zero — a fleet needs at least one backend.
pub fn backend_for(trip: TripId, backends: u32) -> u32 {
    assert!(backends > 0, "a fleet needs at least one backend");
    // SplitMix64 finalizer: decorrelates dense sequential trip ids before
    // the jump hash's multiplicative walk.
    let mut key = trip;
    key = (key ^ (key >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    key = (key ^ (key >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    key ^= key >> 31;
    // Lamping–Veach jump consistent hash.
    let mut bucket: i64 = -1;
    let mut next: i64 = 0;
    while next < i64::from(backends) {
        bucket = next;
        key = key.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        next = ((bucket.wrapping_add(1) as f64) * ((1u64 << 31) as f64)
            / (((key >> 33) + 1) as f64)) as i64;
    }
    bucket as u32
}

/// Splits a merged fleet capture across `backends` sub-images using
/// [`backend_for`] — the N→M warm-restart path: capture every old
/// backend, [`FleetImage::merge`] the parts, `split_image` onto the new
/// fleet size, and resume each new backend from its sub-image. Each
/// backend then holds exactly the sessions whose future events a router
/// over the new fleet will route to it.
///
/// # Panics
/// When `backends` is zero.
pub fn split_image(image: FleetImage, backends: u32) -> Vec<FleetImage> {
    image.partition_by(backends as usize, |id| backend_for(id, backends) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_in_range_and_stable() {
        for trip in (0..5000).chain([u64::MAX, u64::MAX - 1, 1 << 40]) {
            for backends in 1..12 {
                let b = backend_for(trip, backends);
                assert!(b < backends);
                assert_eq!(b, backend_for(trip, backends), "trip={trip} n={backends}");
            }
            assert_eq!(backend_for(trip, 1), 0);
        }
    }

    #[test]
    fn sequential_ids_balance_within_tolerance() {
        const TRIPS: u64 = 8000;
        for backends in [2u32, 3, 5, 8] {
            let mut counts = vec![0u64; backends as usize];
            for trip in 0..TRIPS {
                counts[backend_for(trip, backends) as usize] += 1;
            }
            let mean = TRIPS / u64::from(backends);
            for (b, &c) in counts.iter().enumerate() {
                assert!(
                    c > mean / 2 && c < mean * 2,
                    "backend {b}/{backends} got {c} of {TRIPS} trips (mean {mean})"
                );
            }
        }
    }

    #[test]
    fn growing_the_fleet_moves_few_trips() {
        const TRIPS: u64 = 4000;
        for backends in [2u32, 4, 7] {
            let moved = (0..TRIPS)
                .filter(|&t| backend_for(t, backends) != backend_for(t, backends + 1))
                .count() as f64;
            let expected = TRIPS as f64 / f64::from(backends + 1);
            // Jump hashing moves ~1/(M+1) of keys; allow 2x slack over the
            // expectation so the test pins the consistency property, not
            // the exact sampling noise.
            assert!(
                moved < expected * 2.0,
                "{moved} of {TRIPS} trips moved going {backends}->{} (expected ~{expected})",
                backends + 1
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn zero_backends_is_a_caller_bug() {
        let _ = backend_for(7, 0);
    }
}
