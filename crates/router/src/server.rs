//! The router tier's front door and fan-in core: a TCP server speaking
//! the same `TADN` protocol as a single `tad-net` backend, multiplexing
//! every producer's trips across the backend fleet and routing each reply
//! back to the connection that owns the trip.
//!
//! ## Data flow
//!
//! ```text
//! producers ──TADN──▶ front reader ──backend_for(id, N)──▶ backend writer ──▶ tad-net server
//!    ▲                    │                                                      │
//!    │                    └─ Flush / SnapshotRequest: barrier over all backends  │
//!    │                                                                           ▼
//!    └──── front writer ◀── per-conn queue ◀── fan-in (Core) ◀── backend reader ─┘
//! ```
//!
//! **Stickiness**: the trip→backend assignment is the pure function
//! [`crate::backend_for`], so every event of a trip reaches the same
//! backend engine and per-trip event order is preserved end to end (front
//! reader → per-backend FIFO channel → one TCP connection → the backend's
//! own ordered ingest). That is what makes routed scoring bit-identical
//! to a single in-process engine.
//!
//! **Barriers**: a front `Flush` fans out to every live backend and
//! replies with [`FleetSnapshot::merged`] aggregate stats only after all
//! of them answered — and because each backend's `Stats` follows all of
//! its earlier replies on the same connection, the aggregate reply is
//! queued after every response caused by events the producer sent first:
//! the single-server quiesce contract, fleet-wide. `SnapshotRequest`
//! works the same way and replies with the [`FleetImage::merge`] of every
//! backend's capture, ready for [`crate::split_image`] onto a fleet of a
//! different size.
//!
//! **Failure**: a dead backend fails in-flight barriers and surfaces a
//! typed [`ErrorCode::EngineClosed`] error to every front connection with
//! a live trip on it; trips on healthy backends keep scoring, and new
//! events for the dead backend's trips are answered with the same typed
//! error instead of stalling.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::io::BufWriter;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use bytes::Bytes;
use tad_metrics::{Histogram, MetricsSnapshot, Registry};
use tad_net::{
    read_request, write_response, ErrorCode, RecvError, Request, Response, DEFAULT_MAX_FRAME,
};
use tad_serve::{image_from_bytes, image_to_bytes, FleetImage, FleetSnapshot, TripId};

use crate::backend::{backend_reader, backend_writer, BackendMsg, Pending};
use crate::partition::backend_for;

/// Tunables of the router tier (each backend engine has its own
/// [`tad_serve::FleetConfig`] behind its own `tad-net` server).
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Cap on one frame's payload length, applied to front requests and
    /// backend responses alike. Backend `Snapshot` replies of very large
    /// fleets may need a higher cap on every hop. Defaults to
    /// [`DEFAULT_MAX_FRAME`] (64 MiB).
    pub max_frame_len: usize,
    /// Bound of each front connection's outgoing response queue. A
    /// producer that stops draining loses responses beyond this (counted
    /// in [`RouterStats::responses_dropped`]) instead of growing router
    /// memory — including barrier replies, so a non-reading producer's
    /// `flush()` eventually times out client-side rather than wedging the
    /// router.
    pub response_queue: usize,
    /// Bound of each backend's forwarding channel. A saturated backend
    /// back-pressures the front reader threads that route to it (the
    /// engine-level `Backpressure` contract still comes from the backend
    /// itself).
    pub backend_queue: usize,
    /// Set `TCP_NODELAY` on accepted and backend sockets.
    pub nodelay: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            max_frame_len: DEFAULT_MAX_FRAME,
            response_queue: 65_536,
            backend_queue: 65_536,
            nodelay: true,
        }
    }
}

/// Why the router could not be built or bound.
#[derive(Debug)]
pub enum RouterError {
    /// Binding or configuring the front listening socket failed.
    Io(std::io::Error),
    /// The builder was given no backend addresses.
    NoBackends,
    /// Connecting to one of the backends failed.
    BackendConnect {
        /// Index of the backend in the builder's list.
        index: usize,
        /// The underlying socket failure.
        error: std::io::Error,
    },
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::Io(e) => write!(f, "socket error: {e}"),
            RouterError::NoBackends => write!(f, "a router needs at least one backend address"),
            RouterError::BackendConnect { index, error } => {
                write!(f, "cannot connect to backend {index}: {error}")
            }
        }
    }
}

impl std::error::Error for RouterError {}

impl From<std::io::Error> for RouterError {
    fn from(e: std::io::Error) -> Self {
        RouterError::Io(e)
    }
}

/// Point-in-time counters of the router tier (per-backend engine counters
/// travel in the aggregated `Stats` reply to a front `Flush`).
#[derive(Clone, Copy, Debug)]
pub struct RouterStats {
    /// Front connections accepted since the router started.
    pub fronts_accepted: u64,
    /// Front connections currently open.
    pub fronts_open: u64,
    /// Responses dropped because the owning front connection's queue was
    /// full, the connection was gone, or no connection owned the trip.
    pub responses_dropped: u64,
    /// Backends the router was built over.
    pub backends_total: u64,
    /// Backends whose connection is still healthy.
    pub backends_alive: u64,
}

/// A front connection's handle in the fan-in registry.
struct FrontHandle {
    tx: SyncSender<Response>,
    stream: TcpStream,
}

/// Where a live trip's events go and who gets its replies.
struct TripRoute {
    /// The front connection that owns the trip's responses.
    conn: u64,
    /// The backend the trip is assigned to (`backend_for(id, N)`).
    backend: u32,
    /// Events forwarded after the claim was created — 0 means the claim
    /// is start-only, so a refused/bounced `TripStart` can release it
    /// without stranding the id. Atomic so the per-segment bump needs
    /// only a read lock on the routing table.
    forwarded: AtomicU32,
}

/// The router's handle on one backend connection.
pub(crate) struct BackendLink {
    /// False once the connection failed; checked before forwarding.
    pub(crate) alive: Arc<AtomicBool>,
    /// Feed of the backend's writer thread.
    tx: SyncSender<BackendMsg>,
    /// Barrier ids in flight on this connection.
    pub(crate) pending: Arc<Pending>,
    /// Serializes barrier staging with the channel send, so pending-FIFO
    /// order always equals wire order (see [`handle_barrier`]).
    stage: Mutex<()>,
    /// A handle on the socket for shutdown wake-ups.
    pub(crate) stream: TcpStream,
}

/// What a pending fleet-wide barrier is waiting to answer.
#[derive(Clone, Copy)]
enum BarrierKind {
    Flush,
    Snapshot,
    Metrics,
}

/// Handles into the router's own metrics registry (`router.*`), cached at
/// bind time. These describe the router process itself; a front
/// `MetricsRequest` merges them with every backend's snapshot.
struct RouterMetrics {
    registry: Arc<Registry>,
    /// `router.forward_ns`: time from picking a live backend to its
    /// forwarding channel accepting the frame — dominated by channel wait
    /// when a backend writer saturates, so its tail is the router-side
    /// congestion signal.
    forward_ns: Arc<Histogram>,
    /// `router.fanin_depth`: fleet-wide barriers in flight, observed at
    /// each barrier open (including the one being opened).
    fanin_depth: Arc<Histogram>,
    /// `router.backend.N.forward_ns`: the per-backend split of
    /// `forward_ns`, same clock.
    per_backend: Vec<Arc<Histogram>>,
}

impl RouterMetrics {
    fn register(num_backends: usize) -> Self {
        let registry = Arc::new(Registry::new());
        RouterMetrics {
            forward_ns: registry.histogram("router.forward_ns"),
            fanin_depth: registry.histogram("router.fanin_depth"),
            per_backend: (0..num_backends)
                .map(|idx| registry.histogram(&format!("router.backend.{idx}.forward_ns")))
                .collect(),
            registry,
        }
    }
}

/// One fleet-wide barrier in flight: a front `Flush`/`SnapshotRequest`
/// fanned out to every live backend, collecting one contribution
/// (a reply or a failure) per backend before answering the front
/// connection.
struct Barrier {
    kind: BarrierKind,
    conn: u64,
    /// False until the fan-out loop knows how many backends accepted the
    /// frame; contributions arriving earlier just accumulate.
    sealed: bool,
    expected: usize,
    got: usize,
    stats: Vec<FleetSnapshot>,
    images: Vec<(u32, Bytes)>,
    metrics: Vec<MetricsSnapshot>,
    failed: Option<(ErrorCode, String)>,
}

/// The router's shared state: backend links, front registry, trip routing
/// table, and in-flight barriers.
pub(crate) struct Core {
    pub(crate) backends: Vec<BackendLink>,
    fronts: RwLock<HashMap<u64, FrontHandle>>,
    /// Trip routing table. RwLock, not Mutex: the hot per-segment paths
    /// (forwarding an event, fanning a `Score` back in) only read it, so
    /// front readers and backend readers don't serialize on the map.
    trips: RwLock<HashMap<TripId, TripRoute>>,
    barriers: Mutex<HashMap<u64, Barrier>>,
    next_barrier: AtomicU64,
    fronts_accepted: AtomicU64,
    responses_dropped: AtomicU64,
    metrics: RouterMetrics,
}

impl Core {
    fn new(backends: Vec<BackendLink>) -> Self {
        let metrics = RouterMetrics::register(backends.len());
        Core {
            backends,
            fronts: RwLock::new(HashMap::new()),
            trips: RwLock::new(HashMap::new()),
            barriers: Mutex::new(HashMap::new()),
            next_barrier: AtomicU64::new(0),
            fronts_accepted: AtomicU64::new(0),
            responses_dropped: AtomicU64::new(0),
            metrics,
        }
    }

    fn register_front(&self, conn: u64, handle: FrontHandle) {
        self.fronts_accepted.fetch_add(1, Ordering::Relaxed);
        self.fronts.write().expect("fronts lock").insert(conn, handle);
    }

    fn unregister_front(&self, conn: u64) {
        self.fronts.write().expect("fronts lock").remove(&conn);
        // Free the closing connection's routing claims so a reconnecting
        // producer can re-attach to its trips (the backend sessions live
        // on until they end or their TTL reaps them).
        self.trips.write().expect("trips lock").retain(|_, route| route.conn != conn);
    }

    fn dropped(&self) {
        self.responses_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Best-effort delivery to one front connection's response queue.
    fn deliver_conn(&self, conn: u64, resp: Response) {
        let fronts = self.fronts.read().expect("fronts lock");
        let sent = fronts.get(&conn).is_some_and(|h| h.tx.try_send(resp).is_ok());
        if !sent {
            self.dropped();
        }
    }

    /// Fan-in: one frame arrived from backend `idx`.
    pub(crate) fn on_backend_response(&self, idx: u32, resp: Response) {
        match resp {
            Response::Score(update) => {
                let conn = self.trips.read().expect("trips lock").get(&update.id).map(|r| r.conn);
                match conn {
                    Some(conn) => self.deliver_conn(conn, Response::Score(update)),
                    None => self.dropped(),
                }
            }
            Response::TripComplete(tc) => {
                // The trip is finished: forget the route so the id can be
                // started again later.
                let conn = self.trips.write().expect("trips lock").remove(&tc.id).map(|r| r.conn);
                match conn {
                    Some(conn) => self.deliver_conn(conn, Response::TripComplete(tc)),
                    None => self.dropped(),
                }
            }
            Response::PolicyNotice { id, action, seg } => {
                // Sanitization outcomes are trip-scoped, like scores: fan
                // them in to whichever front connection owns the trip so a
                // producer behind the router sees the same notices it
                // would see talking to the backend directly.
                let conn = self.trips.read().expect("trips lock").get(&id).map(|r| r.conn);
                match conn {
                    Some(conn) => self.deliver_conn(conn, Response::PolicyNotice { id, action, seg }),
                    None => self.dropped(),
                }
            }
            Response::Stats(stats) => {
                let bid =
                    self.backends[idx as usize].pending.flushes.lock().expect("fifo").pop_front();
                if let Some(bid) = bid {
                    self.contribute(bid, |b| b.stats.push(stats));
                }
            }
            Response::Snapshot { image } => {
                let bid =
                    self.backends[idx as usize].pending.snapshots.lock().expect("fifo").pop_front();
                if let Some(bid) = bid {
                    self.contribute(bid, |b| b.images.push((idx, image)));
                }
            }
            Response::Metrics(snapshot) => {
                let bid =
                    self.backends[idx as usize].pending.metrics.lock().expect("fifo").pop_front();
                if let Some(bid) = bid {
                    self.contribute(bid, |b| b.metrics.push(snapshot));
                }
            }
            Response::Error { code, trip: Some(id), detail } => {
                let found = {
                    let trips = self.trips.read().expect("trips lock");
                    trips.get(&id).map(|r| (r.conn, r.forwarded.load(Ordering::Relaxed)))
                };
                match found {
                    Some((conn, forwarded)) => {
                        // A refused or bounced TripStart (nothing forwarded
                        // after the claim) must not strand its id: the
                        // producer will retry it. Error frames are rare, so
                        // the write-lock upgrade (with a re-check) is off
                        // the hot path.
                        if forwarded == 0
                            && matches!(code, ErrorCode::Rejected | ErrorCode::Backpressure)
                        {
                            let mut trips = self.trips.write().expect("trips lock");
                            if trips.get(&id).is_some_and(|r| {
                                r.conn == conn && r.forwarded.load(Ordering::Relaxed) == 0
                            }) {
                                trips.remove(&id);
                            }
                        }
                        self.deliver_conn(conn, Response::Error { code, trip: Some(id), detail });
                    }
                    None => self.dropped(),
                }
            }
            Response::Error { code: ErrorCode::SnapshotFailed, trip: None, detail } => {
                // The backend answered a SnapshotRequest with a failure:
                // consume the oldest pending snapshot barrier so the FIFO
                // stays aligned with the wire.
                let bid =
                    self.backends[idx as usize].pending.snapshots.lock().expect("fifo").pop_front();
                if let Some(bid) = bid {
                    self.contribute(bid, |b| {
                        b.failed.get_or_insert((ErrorCode::SnapshotFailed, detail));
                    });
                }
            }
            Response::Error { code: ErrorCode::EngineClosed, trip: None, detail } => {
                // A failed flush barrier; the backend hangs up right after
                // this frame, so the rest of the cleanup happens in
                // `on_backend_down`.
                let bid =
                    self.backends[idx as usize].pending.flushes.lock().expect("fifo").pop_front();
                if let Some(bid) = bid {
                    self.contribute(bid, |b| {
                        b.failed.get_or_insert((ErrorCode::EngineClosed, detail));
                    });
                }
            }
            Response::Error { .. } => {
                // Trip-less BadFrame/other: nothing to match it to; the
                // link is about to close and the down path cleans up.
                self.dropped();
            }
        }
    }

    /// A backend connection died: fail its in-flight barriers and tell
    /// every affected front connection, then forget its trips. Healthy
    /// backends are untouched. Idempotent — both the reader and the
    /// writer of a link run it on exit, so whichever dies last sweeps any
    /// barrier staged in between (the sweep of an already-swept link is a
    /// no-op: empty FIFOs, no matching trips, contributions to barriers
    /// that no longer exist are ignored).
    pub(crate) fn on_backend_down(&self, idx: u32) {
        let link = &self.backends[idx as usize];
        link.alive.store(false, Ordering::SeqCst);
        // Make sure the other half of the link dies too (the reader wakes
        // from its blocking read; the writer's next write fails).
        let _ = link.stream.shutdown(Shutdown::Both);
        let mut bids: Vec<u64> = link.pending.flushes.lock().expect("fifo").drain(..).collect();
        bids.extend(link.pending.snapshots.lock().expect("fifo").drain(..));
        bids.extend(link.pending.metrics.lock().expect("fifo").drain(..));
        for bid in bids {
            self.contribute(bid, |b| {
                b.failed.get_or_insert((
                    ErrorCode::EngineClosed,
                    format!("backend {idx} connection lost"),
                ));
            });
        }
        let dead: Vec<(TripId, u64)> = {
            let mut trips = self.trips.write().expect("trips lock");
            let dead: Vec<(TripId, u64)> = trips
                .iter()
                .filter(|(_, route)| route.backend == idx)
                .map(|(&id, route)| (id, route.conn))
                .collect();
            for (id, _) in &dead {
                trips.remove(id);
            }
            dead
        };
        for (id, conn) in dead {
            self.deliver_conn(
                conn,
                Response::Error {
                    code: ErrorCode::EngineClosed,
                    trip: Some(id),
                    detail: format!("backend {idx} connection lost"),
                },
            );
        }
    }

    fn barrier_open(&self, kind: BarrierKind, conn: u64) -> u64 {
        let bid = self.next_barrier.fetch_add(1, Ordering::Relaxed);
        let in_flight = {
            let mut barriers = self.barriers.lock().expect("barriers lock");
            barriers.insert(
                bid,
                Barrier {
                    kind,
                    conn,
                    sealed: false,
                    expected: 0,
                    got: 0,
                    stats: Vec::new(),
                    images: Vec::new(),
                    metrics: Vec::new(),
                    failed: None,
                },
            );
            barriers.len() as u64
        };
        self.metrics.fanin_depth.record(in_flight);
        bid
    }

    /// The fan-out loop finished: `expected` backends accepted the
    /// barrier frame. Completes the barrier if every contribution already
    /// arrived in the meantime.
    fn barrier_seal(&self, bid: u64, expected: usize) {
        let done = {
            let mut barriers = self.barriers.lock().expect("barriers lock");
            let Some(b) = barriers.get_mut(&bid) else { return };
            b.sealed = true;
            b.expected = expected;
            if b.got >= expected {
                barriers.remove(&bid)
            } else {
                None
            }
        };
        if let Some(b) = done {
            self.finalize(b);
        }
    }

    fn barrier_abort(&self, bid: u64) {
        self.barriers.lock().expect("barriers lock").remove(&bid);
    }

    /// Records one backend's contribution (a reply or a failure) and
    /// completes the barrier once all expected backends answered.
    fn contribute(&self, bid: u64, apply: impl FnOnce(&mut Barrier)) {
        let done = {
            let mut barriers = self.barriers.lock().expect("barriers lock");
            let Some(b) = barriers.get_mut(&bid) else { return };
            apply(b);
            b.got += 1;
            if b.sealed && b.got >= b.expected {
                barriers.remove(&bid)
            } else {
                None
            }
        };
        if let Some(b) = done {
            self.finalize(b);
        }
    }

    /// Builds and delivers a completed barrier's reply. Runs outside the
    /// barrier lock, on whichever backend reader (or front handler)
    /// supplied the last contribution.
    fn finalize(&self, barrier: Barrier) {
        let resp = if let Some((code, detail)) = barrier.failed {
            Response::Error { code, trip: None, detail }
        } else {
            match barrier.kind {
                BarrierKind::Flush => Response::Stats(FleetSnapshot::merged(&barrier.stats)),
                BarrierKind::Snapshot => {
                    // Canonical backend order, so the merged blob is
                    // deterministic whatever order the replies landed in.
                    let mut parts = barrier.images;
                    parts.sort_by_key(|&(idx, _)| idx);
                    let mut images = Vec::with_capacity(parts.len());
                    let mut bad = None;
                    for (idx, blob) in parts {
                        match image_from_bytes(blob) {
                            Ok(image) => images.push(image),
                            Err(e) => {
                                bad = Some(format!("backend {idx} snapshot undecodable: {e}"));
                                break;
                            }
                        }
                    }
                    match bad {
                        Some(detail) => {
                            Response::Error { code: ErrorCode::SnapshotFailed, trip: None, detail }
                        }
                        None => {
                            Response::Snapshot { image: image_to_bytes(&FleetImage::merge(images)) }
                        }
                    }
                }
                BarrierKind::Metrics => {
                    // Fleet view = every backend's registry plus the
                    // router's own `router.*` metrics, merged entry-wise —
                    // the same discipline as `FleetSnapshot::merged` for
                    // `Stats`. Merge order is irrelevant: entries are
                    // keyed by `(name, kind)` and counts add.
                    let mut parts = barrier.metrics;
                    parts.push(self.metrics.registry.snapshot());
                    Response::Metrics(MetricsSnapshot::merged(&parts))
                }
            }
        };
        self.deliver_conn(barrier.conn, resp);
    }

    fn stats(&self) -> RouterStats {
        RouterStats {
            fronts_accepted: self.fronts_accepted.load(Ordering::Relaxed),
            fronts_open: self.fronts.read().expect("fronts lock").len() as u64,
            responses_dropped: self.responses_dropped.load(Ordering::Relaxed),
            backends_total: self.backends.len() as u64,
            backends_alive: self.backends.iter().filter(|l| l.alive.load(Ordering::SeqCst)).count()
                as u64,
        }
    }
}

/// Whether the front connection should stay open after a request.
enum After {
    Continue,
    Close,
}

fn backend_down_error(id: TripId, backend: u32) -> Response {
    Response::Error {
        code: ErrorCode::EngineClosed,
        trip: Some(id),
        detail: format!("backend {backend} is down"),
    }
}

fn handle_front(core: &Core, conn_id: u64, tx: &SyncSender<Response>, req: Request) -> After {
    match req {
        Request::Flush => handle_barrier(core, conn_id, tx, BarrierKind::Flush, Request::Flush),
        Request::SnapshotRequest => {
            handle_barrier(core, conn_id, tx, BarrierKind::Snapshot, Request::SnapshotRequest)
        }
        Request::MetricsRequest => {
            handle_barrier(core, conn_id, tx, BarrierKind::Metrics, Request::MetricsRequest)
        }
        ingest => {
            let (id, is_start) = match &ingest {
                Request::TripStart { id, .. } => (*id, true),
                Request::Segment { id, .. } => (*id, false),
                Request::TripEnd { id } => (*id, false),
                _ => unreachable!("barrier frames are handled above"),
            };
            forward_ingest(core, conn_id, tx, id, is_start, ingest)
        }
    }
}

fn forward_ingest(
    core: &Core,
    conn_id: u64,
    tx: &SyncSender<Response>,
    id: TripId,
    is_start: bool,
    req: Request,
) -> After {
    let backend = backend_for(id, core.backends.len() as u32);
    let link = &core.backends[backend as usize];
    if !link.alive.load(Ordering::SeqCst) {
        // Typed surface instead of a stall: the trip's backend is gone,
        // but trips hashed to healthy backends keep flowing on this very
        // connection.
        let _ = tx.try_send(backend_down_error(id, backend));
        return After::Continue;
    }
    if is_start {
        let mut trips = core.trips.write().expect("trips lock");
        match trips.entry(id) {
            Entry::Occupied(_) => {
                drop(trips);
                // Another live connection owns this trip; duplicate starts
                // on the same connection are also refused (the backend
                // engine would reject them anyway).
                let _ = tx.try_send(Response::Error {
                    code: ErrorCode::Rejected,
                    trip: Some(id),
                    detail: "trip id is owned by a live session".to_string(),
                });
                return After::Continue;
            }
            Entry::Vacant(v) => {
                v.insert(TripRoute { conn: conn_id, backend, forwarded: AtomicU32::new(0) });
            }
        }
    } else {
        // The hot path: an existing route needs only a read lock plus an
        // atomic bump. The write-lock insert below is the lazy re-attach
        // after a routed warm restart — the restored backend already holds
        // the session, so no TripStart will ever arrive and the first
        // connection to stream for the trip becomes its response route
        // (mirrors the single-server behaviour in tad-net).
        let trips = core.trips.read().expect("trips lock");
        if let Some(route) = trips.get(&id) {
            route.forwarded.fetch_add(1, Ordering::Relaxed);
        } else {
            drop(trips);
            core.trips
                .write()
                .expect("trips lock")
                .entry(id)
                .or_insert_with(|| TripRoute {
                    conn: conn_id,
                    backend,
                    forwarded: AtomicU32::new(0),
                })
                .forwarded
                .fetch_add(1, Ordering::Relaxed);
        }
    }
    let forward_started = Instant::now();
    let forwarded_ok = core.backends[backend as usize].tx.send(BackendMsg::Forward(req)).is_ok();
    if forwarded_ok {
        // Channel-accept latency: near zero when the backend writer keeps
        // up, the queue-wait time when it saturates.
        let ns = forward_started.elapsed().as_nanos() as u64;
        core.metrics.forward_ns.record(ns);
        core.metrics.per_backend[backend as usize].record(ns);
    } else {
        if is_start {
            let mut trips = core.trips.write().expect("trips lock");
            if trips
                .get(&id)
                .is_some_and(|r| r.conn == conn_id && r.forwarded.load(Ordering::Relaxed) == 0)
            {
                trips.remove(&id);
            }
        }
        let _ = tx.try_send(backend_down_error(id, backend));
    }
    After::Continue
}

fn handle_barrier(
    core: &Core,
    conn_id: u64,
    tx: &SyncSender<Response>,
    kind: BarrierKind,
    req: Request,
) -> After {
    let bid = core.barrier_open(kind, conn_id);
    let mut sent = 0usize;
    for link in &core.backends {
        if !link.alive.load(Ordering::SeqCst) {
            continue;
        }
        let fifo = match kind {
            BarrierKind::Flush => &link.pending.flushes,
            BarrierKind::Snapshot => &link.pending.snapshots,
            BarrierKind::Metrics => &link.pending.metrics,
        };
        // Stage-then-send, atomically with respect to other barriers on
        // this link (the `stage` mutex): FIFO order therefore equals
        // channel order equals wire order, and the barrier is in the FIFO
        // from the moment the channel accepts it — so the backend-down
        // sweep (run by whichever of the link's threads exits last) always
        // sees it and can fail it. Forwarded ingest frames interleave
        // freely; only barrier-to-barrier order matters for the FIFO.
        let staged = link.stage.lock().expect("stage lock");
        fifo.lock().expect("fifo").push_back(bid);
        if link.tx.send(BackendMsg::Forward(req.clone())).is_ok() {
            sent += 1;
        } else {
            // The writer is gone; undo the stage. Nobody staged after us
            // (we hold `stage`), so the entry — if the down sweep has not
            // already consumed it and failed the barrier — is the tail.
            let mut fifo = fifo.lock().expect("fifo");
            if fifo.back() == Some(&bid) {
                fifo.pop_back();
            }
        }
        drop(staged);
    }
    if sent == 0 {
        // No live backend accepted the frame: drop the barrier (a down
        // sweep racing the loop may have contributed a failure to it, but
        // never finalized it — it was not sealed) and answer directly.
        core.barrier_abort(bid);
        let _ = tx.try_send(Response::Error {
            code: ErrorCode::EngineClosed,
            trip: None,
            detail: "no live backends".to_string(),
        });
        return After::Close;
    }
    core.barrier_seal(bid, sent);
    After::Continue
}

/// Drains a front connection's response queue to its socket, batching
/// writes between flushes (same shape as `tad-net`'s connection writer).
fn front_writer(rx: Receiver<Response>, stream: TcpStream) {
    let mut w = BufWriter::new(stream);
    'serve: while let Ok(resp) = rx.recv() {
        if write_response(&mut w, &resp).is_err() {
            break;
        }
        loop {
            match rx.try_recv() {
                Ok(resp) => {
                    if write_response(&mut w, &resp).is_err() {
                        break 'serve;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    let _ = std::io::Write::flush(&mut w);
                    return;
                }
            }
        }
        if std::io::Write::flush(&mut w).is_err() {
            break;
        }
    }
    let _ = std::io::Write::flush(&mut w);
}

fn front_reader(
    mut stream: TcpStream,
    core: Arc<Core>,
    max_frame_len: usize,
    conn_id: u64,
    tx: SyncSender<Response>,
) {
    loop {
        match read_request(&mut stream, max_frame_len) {
            Ok(None) => break, // clean disconnect
            Ok(Some(req)) => {
                if let After::Close = handle_front(&core, conn_id, &tx, req) {
                    break;
                }
            }
            Err(RecvError::Io(_)) => break,
            Err(RecvError::Frame(e)) => {
                // Framing is lost; tell the peer why, then hang up.
                let _ = tx.send(Response::Error {
                    code: ErrorCode::BadFrame,
                    trip: None,
                    detail: e.to_string(),
                });
                break;
            }
        }
    }
    core.unregister_front(conn_id);
}

fn accept_loop(
    listener: TcpListener,
    core: Arc<Core>,
    cfg: RouterConfig,
    shutdown: Arc<AtomicBool>,
    threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_conn: u64 = 0;
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        if cfg.nodelay {
            let _ = stream.set_nodelay(true);
        }
        let conn_id = next_conn;
        next_conn += 1;
        let (tx, rx) = sync_channel::<Response>(cfg.response_queue);
        let write_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        let registry_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        core.register_front(conn_id, FrontHandle { tx: tx.clone(), stream: registry_half });
        let writer = std::thread::Builder::new()
            .name(format!("tad-router-conn-{conn_id}-w"))
            .spawn(move || front_writer(rx, write_half))
            .expect("spawn front writer");
        let reader = {
            let core = Arc::clone(&core);
            let max = cfg.max_frame_len;
            std::thread::Builder::new()
                .name(format!("tad-router-conn-{conn_id}"))
                .spawn(move || front_reader(stream, core, max, conn_id, tx))
                .expect("spawn front reader")
        };
        let mut threads = threads.lock().expect("threads lock");
        threads.push(writer);
        threads.push(reader);
    }
}

/// Builder for [`RouterServer`]; start from [`RouterServer::builder`].
pub struct RouterServerBuilder {
    backends: Vec<SocketAddr>,
    cfg: RouterConfig,
}

impl RouterServerBuilder {
    /// Adds one backend `tad-net` server address. Backend index order is
    /// the order of these calls — it determines the trip partitioning, so
    /// a restarted router must list the same backends in the same order.
    pub fn backend(mut self, addr: SocketAddr) -> Self {
        self.backends.push(addr);
        self
    }

    /// Adds several backend addresses at once (see [`Self::backend`]).
    pub fn backends(mut self, addrs: impl IntoIterator<Item = SocketAddr>) -> Self {
        self.backends.extend(addrs);
        self
    }

    /// Overrides the router tunables.
    pub fn config(mut self, cfg: RouterConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Connects to every backend, binds the front listening socket, and
    /// starts the acceptor and per-backend pipeline threads.
    ///
    /// # Errors
    /// [`RouterError::NoBackends`] when no backend address was given,
    /// [`RouterError::BackendConnect`] when a backend cannot be reached,
    /// and [`RouterError::Io`] when the front socket cannot be bound.
    pub fn bind(self, addr: impl ToSocketAddrs) -> Result<RouterServer, RouterError> {
        let RouterServerBuilder { backends, cfg } = self;
        if backends.is_empty() {
            return Err(RouterError::NoBackends);
        }
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;

        let mut links = Vec::with_capacity(backends.len());
        let mut backend_threads = Vec::with_capacity(backends.len() * 2);
        let mut halves = Vec::with_capacity(backends.len());
        for (index, &backend_addr) in backends.iter().enumerate() {
            let connect = |error| RouterError::BackendConnect { index, error };
            let stream = TcpStream::connect(backend_addr).map_err(connect)?;
            if cfg.nodelay {
                let _ = stream.set_nodelay(true);
            }
            let write_half = stream.try_clone().map_err(connect)?;
            let read_half = stream.try_clone().map_err(connect)?;
            let (tx, rx) = sync_channel::<BackendMsg>(cfg.backend_queue);
            halves.push((write_half, read_half, rx));
            links.push(BackendLink {
                alive: Arc::new(AtomicBool::new(true)),
                tx,
                pending: Arc::new(Pending::default()),
                stage: Mutex::new(()),
                stream,
            });
        }

        // Both pipeline threads get the core: each runs the idempotent
        // backend-down sweep on exit, so a link failing on either half
        // always fails staged barriers instead of leaving them pending.
        let core = Arc::new(Core::new(links));
        for (index, (write_half, read_half, rx)) in halves.into_iter().enumerate() {
            let writer_core = Arc::clone(&core);
            backend_threads.push(
                std::thread::Builder::new()
                    .name(format!("tad-router-backend-{index}-w"))
                    .spawn(move || backend_writer(rx, write_half, writer_core, index as u32))
                    .expect("spawn backend writer"),
            );
            let reader_core = Arc::clone(&core);
            let max = cfg.max_frame_len;
            backend_threads.push(
                std::thread::Builder::new()
                    .name(format!("tad-router-backend-{index}"))
                    .spawn(move || backend_reader(index as u32, read_half, reader_core, max))
                    .expect("spawn backend reader"),
            );
        }

        let shutdown = Arc::new(AtomicBool::new(false));
        let front_threads = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let core = Arc::clone(&core);
            let shutdown = Arc::clone(&shutdown);
            let front_threads = Arc::clone(&front_threads);
            std::thread::Builder::new()
                .name("tad-router-acceptor".to_string())
                .spawn(move || accept_loop(listener, core, cfg, shutdown, front_threads))
                .expect("spawn acceptor")
        };

        Ok(RouterServer {
            core,
            local_addr,
            shutdown,
            acceptor: Some(acceptor),
            front_threads,
            backend_threads,
        })
    }
}

/// A running router tier: a `TADN` front door hash-partitioning trips
/// across N `tad-net` backends. Construct with [`RouterServer::builder`];
/// see the module docs for data flow, stickiness, and barrier semantics.
/// Producers connect with the unmodified [`tad_net::Client`] — the router
/// is wire-compatible with a single backend.
pub struct RouterServer {
    core: Arc<Core>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    front_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    backend_threads: Vec<JoinHandle<()>>,
}

impl RouterServer {
    /// Starts building a router. Add backends with
    /// [`RouterServerBuilder::backend`], then [`RouterServerBuilder::bind`]
    /// the front door (port 0 lets the OS pick; read it back with
    /// [`RouterServer::local_addr`]).
    pub fn builder() -> RouterServerBuilder {
        RouterServerBuilder { backends: Vec::new(), cfg: RouterConfig::default() }
    }

    /// The address the front door is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// How many backends the router was built over (the `N` of
    /// [`crate::backend_for`]).
    pub fn num_backends(&self) -> usize {
        self.core.backends.len()
    }

    /// Point-in-time router counters.
    pub fn stats(&self) -> RouterStats {
        self.core.stats()
    }

    /// Snapshot of the router's *own* metrics (`router.forward_ns`,
    /// `router.fanin_depth`, `router.backend.N.forward_ns`). The
    /// fleet-wide view — these merged with every live backend's snapshot —
    /// is what a front connection gets from [`tad_net::Client::metrics`].
    pub fn metrics(&self) -> MetricsSnapshot {
        self.core.metrics.registry.snapshot()
    }

    /// Stops accepting, closes every front connection and backend link,
    /// joins all threads, and returns the final router counters. The
    /// backends themselves keep running — they are independent servers.
    pub fn shutdown(mut self) -> RouterStats {
        let stats = self.stats();
        self.stop();
        stats
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor's blocking accept with a throwaway
        // connection; it re-checks the flag per iteration.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for handle in self.core.fronts.read().expect("fronts lock").values() {
            let _ = handle.stream.shutdown(Shutdown::Both);
        }
        let handles = std::mem::take(&mut *self.front_threads.lock().expect("threads lock"));
        for handle in handles {
            let _ = handle.join();
        }
        for link in &self.core.backends {
            // Orderly writer exit, then wake the (possibly blocked) reader.
            let _ = link.tx.send(BackendMsg::Close);
            let _ = link.stream.shutdown(Shutdown::Both);
        }
        for handle in std::mem::take(&mut self.backend_threads) {
            let _ = handle.join();
        }
    }
}

impl Drop for RouterServer {
    fn drop(&mut self) {
        self.stop();
    }
}
